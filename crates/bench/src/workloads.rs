//! The multi-kernel performance lab: every [`WorkloadKind`] run through
//! the same pipeline DGEMM always had — listing → lint → emulator →
//! roofline → fabric — one row per workload.
//!
//! Three consumers share this module:
//!
//! * the `workloads` binary (`--workload dgemm|spmv|stencil`) renders
//!   [`lab_rows`] for one or all workloads;
//! * the `workload-diff` binary runs [`workload_diff`], the
//!   workload-conformance CI gate (differential equivalence on both new
//!   kernels, zero lint diagnostics on the shipped listings, rank-level
//!   halo-volume conservation) with an `--inject` must-fail self-test;
//! * `perfgate` takes [`spmv_gflops`] and [`stencil_halo_exchange_s`]
//!   as headline metrics against `BENCH_baseline.json`.
//!
//! Everything is deterministic model output: same tree, same bytes.

use crate::TextTable;
use phi_fabric::{HaloSpec, NetModel};
use phi_hpl::{
    simulate_stencil_cluster, DgemmWorkload, SpmvWorkload, StencilClusterConfig,
    StencilClusterReport, StencilWorkload, Workload, WorkloadKind,
};
use phi_knc::spmv::{banded_csr, reference_spmv, run_spmv, run_spmv_traced, Csr};
use phi_knc::stencil::{reference_stencil, run_stencil, StarStencil};
use phi_knc::{KncChip, PipelineConfig, RooflineClass};
use phi_lint::LintConfig;

/// Rows in the lab's reference SpMV matrix — big enough for a real
/// steady state, small enough that the gate stays fast.
const SPMV_REF_ROWS: usize = 1024;
/// Stored nonzeros per row of the reference band.
const SPMV_REF_BAND: usize = 24;
/// Seed for the reference operators (the perfgate fixture seed).
const LAB_SEED: u64 = crate::perfgate::GATE_SEED;

/// The lab's reference sparse matrix: a seeded band, uniform enough
/// that padding overhead is 1 (every cycle is stream traffic).
pub fn reference_csr() -> Csr {
    banded_csr(SPMV_REF_ROWS, SPMV_REF_BAND, LAB_SEED)
}

/// The lab's reference stencil: the radius-1 seven-point operator.
pub fn reference_star() -> StarStencil {
    StarStencil::seven_point(-6.0, 1.0)
}

/// The lab's reference decomposition: a 96³ box over a 2 × 2 × 1 grid —
/// two decomposed axes, so every sweep ships face halos.
pub fn reference_halo_spec() -> HaloSpec {
    HaloSpec::new((96, 96, 96), (2, 2, 1), 1)
}

fn reference_x(cols: usize) -> Vec<f64> {
    (0..cols).map(|i| ((i * 5 + 3) % 17) as f64 - 8.0).collect()
}

fn reference_grid(nx: usize, ny: usize, lz: usize) -> Vec<f64> {
    (0..nx * ny * 8 * lz)
        .map(|i| ((i * 7 + 1) % 13) as f64 - 6.0)
        .collect()
}

fn reference_stencil_cluster() -> StencilClusterReport {
    simulate_stencil_cluster(&StencilClusterConfig {
        workload: StencilWorkload::new(reference_star(), reference_halo_spec()),
        sweeps: 8,
        net: NetModel::default(),
        chip: KncChip::default(),
    })
}

/// Perfgate metric: per-core GFLOPS the emulated core achieves on the
/// reference SpMV at the KNC clock. Deterministic cycle arithmetic — it
/// moves only when the SpMV listing, the blocking or the memory system
/// model changes.
pub fn spmv_gflops() -> f64 {
    let a = reference_csr();
    let x = reference_x(a.cols);
    let rep = run_spmv(&a, &x, PipelineConfig::default());
    rep.flops_per_cycle() * KncChip::default().freq_ghz
}

/// Perfgate metric: halo-exchange seconds exposed on the critical path
/// of the reference 8-sweep stencil cluster DES. Moves only when the
/// halo pattern, the fabric constants or the sweep loop change.
pub fn stencil_halo_exchange_s() -> f64 {
    reference_stencil_cluster().halo_s
}

/// One row of the lab table.
#[derive(Clone, Debug)]
pub struct LabRow {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Declared roofline class on the reference chip.
    pub class: RooflineClass,
    /// Arithmetic intensity (flops per DRAM byte).
    pub flops_per_byte: f64,
    /// Roofline-attainable GFLOPS (native 60-core chip).
    pub attainable_gflops: f64,
    /// Lint diagnostics on the shipped listing under its class.
    pub lint_diags: usize,
    /// Analytic seconds of one communication phase on the default rail.
    pub exchange_s: f64,
}

fn lint_count(w: &dyn Workload, chip: &KncChip) -> usize {
    let (body, epi) = w.listing();
    let cfg = LintConfig {
        class: w.class(chip),
        ..LintConfig::default()
    };
    phi_lint::analyze_with(&cfg, &body, &epi).diags.len()
}

fn lab_workload(kind: WorkloadKind) -> Box<dyn Workload> {
    match kind {
        WorkloadKind::Dgemm => Box::new(DgemmWorkload {
            n: 28_000,
            nb: 960,
            p: 2,
            q: 2,
        }),
        WorkloadKind::Spmv => Box::new(SpmvWorkload::from_csr(&reference_csr(), 4)),
        WorkloadKind::Stencil => Box::new(StencilWorkload::new(
            reference_star(),
            reference_halo_spec(),
        )),
    }
}

/// Builds the lab rows for the given kinds (the binary passes one kind
/// under `--workload`, or all three by default).
pub fn lab_rows(kinds: &[WorkloadKind]) -> Vec<LabRow> {
    let chip = KncChip::default();
    let net = NetModel::default();
    kinds
        .iter()
        .map(|&kind| {
            let w = lab_workload(kind);
            let p = w.roofline(&chip);
            LabRow {
                kind,
                class: p.class,
                flops_per_byte: p.flops_per_byte,
                attainable_gflops: p.attainable_gflops,
                lint_diags: lint_count(w.as_ref(), &chip),
                exchange_s: w.exchange_s(&net),
            }
        })
        .collect()
}

/// Renders the lab table plus the two headline kernel measurements.
pub fn lab_render(rows: &[LabRow]) -> String {
    let mut t = TextTable::new([
        "workload",
        "class",
        "flops/byte",
        "roofline GF",
        "lint",
        "exchange s",
    ]);
    for r in rows {
        t.row([
            r.kind.name().to_string(),
            r.class.name().to_string(),
            format!("{:.3}", r.flops_per_byte),
            format!("{:.1}", r.attainable_gflops),
            r.lint_diags.to_string(),
            format!("{:.6}", r.exchange_s),
        ]);
    }
    let mut out = t.render();
    if rows.iter().any(|r| r.kind == WorkloadKind::Spmv) {
        out.push_str(&format!(
            "spmv emulated per-core gflops: {:.4}\n",
            spmv_gflops()
        ));
    }
    if rows.iter().any(|r| r.kind == WorkloadKind::Stencil) {
        let rep = reference_stencil_cluster();
        out.push_str(&format!(
            "stencil cluster: total {:.6} s, compute {:.6} s, halo {:.6} s ({:.0} bytes)\n",
            rep.total_s, rep.compute_s, rep.halo_s, rep.halo_bytes
        ));
    }
    out
}

/// The workload-conformance gate: returns human-readable failure lines
/// (empty = pass). `inject` perturbs one SpMV result bit and one halo
/// message, both of which the comparisons must flag — CI runs the
/// `workload-diff` binary in that mode and requires a non-zero exit.
pub fn workload_diff(inject: bool) -> Vec<String> {
    let mut fails = Vec::new();

    // 1. SpMV differential equivalence: interpreter vs block-trace fast
    //    path, and both vs the pure-Rust reference, bit for bit.
    let a = reference_csr();
    let x = reference_x(a.cols);
    let slow = run_spmv(&a, &x, PipelineConfig::default());
    let (mut fast, ts, _) = run_spmv_traced(&a, &x, PipelineConfig::default());
    if inject {
        fast.y[0] = f64::from_bits(fast.y[0].to_bits() ^ 1);
    }
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    if bits(&fast.y) != bits(&slow.y) {
        fails.push("spmv: y diverged between interpreter and trace fast path".into());
    }
    if fast.cycles_total != slow.cycles_total || fast.stats != slow.stats {
        fails.push("spmv: cycles/counters diverged between emulator paths".into());
    }
    if bits(&slow.y) != bits(&reference_spmv(&a, &x)) {
        fails.push("spmv: emulated y diverged from the reference".into());
    }
    if ts.replayed_segments == 0 {
        fails.push("spmv: trace fast path never engaged".into());
    }

    // 2. Stencil differential equivalence: emulated sweep vs reference.
    let st = reference_star();
    let dims = (12, 10, 2);
    let grid = reference_grid(dims.0, dims.1, dims.2);
    let rep = run_stencil(&st, dims, &grid, PipelineConfig::default());
    if bits(&rep.out) != bits(&reference_stencil(&st, dims, &grid)) {
        fails.push("stencil: emulated sweep diverged from the reference".into());
    }

    // 3. Shipped listings must lint clean under their declared class.
    let chip = KncChip::default();
    for kind in [WorkloadKind::Spmv, WorkloadKind::Stencil] {
        let n = lint_count(lab_workload(kind).as_ref(), &chip);
        if n != 0 {
            fails.push(format!(
                "{}: listing has {n} lint diagnostic(s)",
                kind.name()
            ));
        }
    }

    // 4. Halo-volume conservation, rank by rank: every byte a rank sends
    //    is received, and the injected extra message must break it.
    let spec = reference_halo_spec();
    let mut sent = vec![0.0f64; spec.rank_count()];
    let mut recv = vec![0.0f64; spec.rank_count()];
    for (from, to, bytes) in spec.messages() {
        sent[from] += bytes;
        recv[to] += bytes;
    }
    if inject {
        sent[0] += 64.0;
    }
    for r in 0..spec.rank_count() {
        if (sent[r] - recv[r]).abs() > 1e-9 {
            fails.push(format!(
                "halo: rank {r} sent {} bytes but received {}",
                sent[r], recv[r]
            ));
            break;
        }
    }

    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_covers_all_workloads_with_clean_listings() {
        let rows = lab_rows(&WorkloadKind::ALL);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(
                r.lint_diags,
                0,
                "{}: listing must lint clean",
                r.kind.name()
            );
            assert!(r.attainable_gflops > 0.0);
        }
        let class = |k: WorkloadKind| rows.iter().find(|r| r.kind == k).unwrap().class;
        assert_eq!(class(WorkloadKind::Dgemm), RooflineClass::ComputeBound);
        assert_eq!(class(WorkloadKind::Spmv), RooflineClass::BandwidthBound);
        assert_eq!(class(WorkloadKind::Stencil), RooflineClass::BandwidthBound);
        let text = lab_render(&rows);
        for k in WorkloadKind::ALL {
            assert!(text.contains(k.name()), "{text}");
        }
    }

    #[test]
    fn gate_metrics_are_positive_and_deterministic() {
        let g = spmv_gflops();
        assert!(g > 0.0 && g.to_bits() == spmv_gflops().to_bits());
        let h = stencil_halo_exchange_s();
        assert!(h > 0.0 && h.to_bits() == stencil_halo_exchange_s().to_bits());
    }

    #[test]
    fn diff_gate_passes_clean_and_catches_injections() {
        assert_eq!(workload_diff(false), Vec::<String>::new());
        let fails = workload_diff(true);
        assert!(
            fails.iter().any(|f| f.contains("spmv: y diverged")),
            "{fails:?}"
        );
        assert!(fails.iter().any(|f| f.starts_with("halo:")), "{fails:?}");
    }
}
