//! Load generator for the `phi-serve` campaign service: thousands of
//! concurrent requests against a bounded worker pool, proving the
//! single-flight dedup, the content-addressed hit path and the
//! determinism contract under real thread contention.
//!
//! The workload draws requests from a fixed spec *space* (paper-cluster
//! campaigns varying `NB`, broadcast, look-ahead, fleet scope and seed)
//! with a seeded index mix, so many clients hammer few keys — the shape
//! a production result cache actually sees. Two phases run against one
//! service: **cold** (every unique spec executes exactly once, all
//! duplicates coalesce or hit memory) and **warm** (the same requests
//! again; zero executions). Each phase folds a digest over every
//! request's `(index, key, fingerprint, gflops)` — wall-clock numbers
//! are reported but deliberately excluded — so the digest is
//! byte-identical at any worker count, client count or hit/miss split.

use crate::fleet::{percentile, striped_map};
use crate::TextTable;
use phi_fabric::BcastScheme;
use phi_faults::CampaignScope;
use phi_hpl::hybrid::Lookahead;
use phi_serve::{CampaignService, CampaignSpec, FaultSpec, ServiceStats};
use std::collections::BTreeSet;
use std::fmt::Write;
use std::path::PathBuf;
use std::time::Instant;

/// FNV-1a offset basis (the workspace's standard fingerprint hash).
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_mix(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Knobs of one load-generation run.
#[derive(Clone, Debug)]
pub struct ServeLoadOptions {
    /// Requests per phase (cold and warm each send this many).
    pub requests: usize,
    /// Unique specs in the workload space.
    pub space: usize,
    /// Service worker-pool threads; `0` picks the service default.
    pub workers: usize,
    /// Client threads issuing requests concurrently.
    pub clients: usize,
    /// Seed for the spec space and the request→spec index mix.
    pub seed0: u64,
    /// Persistent store directory; `None` runs the service in memory.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeLoadOptions {
    fn default() -> Self {
        Self {
            requests: 2_000,
            space: 48,
            workers: 0,
            clients: 8,
            seed0: 0x5E12E,
            store_dir: None,
        }
    }
}

/// The deterministic spec space of a run: paper-cluster fault campaigns
/// (Table III, N = 825K on 10 × 10) with `NB`, broadcast scheme,
/// look-ahead, fleet scope and seed varied per index. Every index gets
/// its own campaign seed, so the space holds exactly `space` distinct
/// keys.
pub fn build_specs(opts: &ServeLoadOptions) -> Vec<CampaignSpec> {
    const NBS: [usize; 2] = [1200, 960];
    const LAS: [Lookahead; 2] = [Lookahead::Pipelined, Lookahead::Basic];
    (0..opts.space)
        .map(|i| {
            let mut s = CampaignSpec::paper_cluster_campaign(opts.seed0.wrapping_add(i as u64));
            s.nb = NBS[i % NBS.len()];
            s.bcast = BcastScheme::ALL[i % BcastScheme::ALL.len()];
            s.lookahead = LAS[(i / 2) % LAS.len()];
            if let FaultSpec::Campaign { ref mut scope, .. } = s.faults {
                *scope = CampaignScope::ALL[(i / 3) % CampaignScope::ALL.len()];
            }
            s
        })
        .collect()
}

/// Which spec request `i` asks for: a seeded multiplicative mix, so
/// consecutive requests scatter across the space and every run of the
/// same options replays the same request stream.
fn pick(seed0: u64, i: usize, space: usize) -> usize {
    let x = (i as u64 ^ seed0)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (((x ^ (x >> 33)).wrapping_mul(0xff51afd7ed558ccd) >> 16) % space.max(1) as u64) as usize
}

/// One phase's report. `digest` folds every request's deterministic
/// payload; the wall-clock fields are measurements, not contract.
#[derive(Clone, Copy, Debug)]
pub struct PhaseReport {
    /// Requests issued.
    pub requests: usize,
    /// FNV-1a over `(index, key, fingerprint, gflops)` per request, in
    /// request order — byte-identical at any worker/client count.
    pub digest: u64,
    /// Wall-clock duration of the phase, seconds.
    pub wall_s: f64,
    /// Requests per wall-clock second.
    pub requests_per_s: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_latency_us: f64,
}

/// A full cold + warm load-generation run.
#[derive(Clone, Debug)]
pub struct ServeLoadResult {
    /// The options the run used.
    pub options: ServeLoadOptions,
    /// Distinct keys in the spec space.
    pub unique: usize,
    /// First pass: misses execute, duplicates dedup.
    pub cold: PhaseReport,
    /// Second pass of the same stream: pure hits.
    pub warm: PhaseReport,
    /// Service counters after the cold phase.
    pub cold_stats: ServiceStats,
    /// Service counters after both phases.
    pub stats: ServiceStats,
    /// Σ simulated completion time over the unique campaigns served,
    /// seconds — the deterministic denominator for simulated-terms
    /// throughput (the perf gate's `serve_requests_per_s`).
    pub sim_time_s: f64,
}

impl ServeLoadResult {
    /// Requests per *simulated* second: total requests served divided
    /// by the simulated time of the unique campaigns behind them.
    /// Deterministic at any thread count, unlike wall-clock throughput.
    pub fn simulated_requests_per_s(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            (self.cold.requests + self.warm.requests) as f64 / self.sim_time_s
        } else {
            0.0
        }
    }

    /// Verifies every invariant the service contract promises. Returns
    /// the first violation, or `Ok` when the run is clean.
    pub fn check(&self) -> Result<(), String> {
        let s = &self.stats;
        if s.requests != self.cold.requests + self.warm.requests {
            return Err(format!(
                "request accounting: {} counted vs {} issued",
                s.requests,
                self.cold.requests + self.warm.requests
            ));
        }
        if s.mem_hits + s.store_hits + s.coalesced + s.executed != s.requests {
            return Err(format!("stats do not partition the requests: {s:?}"));
        }
        if self.cold_stats.executed > self.unique {
            return Err(format!(
                "single-flight violated: {} executions for {} unique specs",
                self.cold_stats.executed, self.unique
            ));
        }
        if s.executed != self.cold_stats.executed {
            return Err(format!(
                "warm phase executed {} simulations; it must execute none",
                s.executed - self.cold_stats.executed
            ));
        }
        if self.warm.digest != self.cold.digest {
            return Err(format!(
                "hit path returned different bytes: cold {:#018x} vs warm {:#018x}",
                self.cold.digest, self.warm.digest
            ));
        }
        // The throughput gate only applies to a genuinely cold start
        // (a pre-warmed store legitimately makes both phases fast).
        if self.cold_stats.executed == self.unique
            && self.unique > 0
            && self.warm.requests_per_s < 10.0 * self.cold.requests_per_s
        {
            return Err(format!(
                "warm throughput {:.0} req/s is not 10x cold {:.0} req/s",
                self.warm.requests_per_s, self.cold.requests_per_s
            ));
        }
        Ok(())
    }
}

fn run_phase(
    service: &CampaignService,
    specs: &[CampaignSpec],
    opts: &ServeLoadOptions,
) -> PhaseReport {
    let t0 = Instant::now();
    let per: Vec<(u64, u64, u64, f64)> = striped_map(opts.requests, opts.clients, |i| {
        let spec = &specs[pick(opts.seed0, i, specs.len())];
        let t = Instant::now();
        let out = service
            .get(spec)
            .expect("load-generator specs are valid and the pool is live");
        let us = t.elapsed().as_secs_f64() * 1e6;
        (out.key, out.fingerprint, out.gflops.to_bits(), us)
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut digest = FNV_OFFSET;
    let mut lat = Vec::with_capacity(per.len());
    for (i, (key, fp, gbits, us)) in per.into_iter().enumerate() {
        fnv_mix(&mut digest, i as u64);
        fnv_mix(&mut digest, key);
        fnv_mix(&mut digest, fp);
        fnv_mix(&mut digest, gbits);
        lat.push(us);
    }
    PhaseReport {
        requests: opts.requests,
        digest,
        wall_s,
        requests_per_s: opts.requests as f64 / wall_s.max(1e-9),
        p99_latency_us: percentile(&lat, 99.0),
    }
}

/// Runs the full load generation: build the spec space, start one
/// service, replay the request stream cold then warm, and collect the
/// phase reports plus the service counters.
pub fn serve_load(opts: &ServeLoadOptions) -> ServeLoadResult {
    let specs = build_specs(opts);
    let unique = specs
        .iter()
        .map(|s| s.key())
        .collect::<BTreeSet<u64>>()
        .len();
    let service = match &opts.store_dir {
        Some(dir) => CampaignService::open(dir, opts.workers)
            .expect("load-generator store directory must be creatable"),
        None => CampaignService::in_memory(opts.workers),
    };
    let cold = run_phase(&service, &specs, opts);
    let cold_stats = service.stats();
    let warm = run_phase(&service, &specs, opts);
    let stats = service.stats();
    let sim_time_s = service
        .table()
        .aggregate(phi_serve::Column::TimeS, phi_serve::Agg::Sum)
        .unwrap_or(0.0);
    ServeLoadResult {
        options: opts.clone(),
        unique,
        cold,
        warm,
        cold_stats,
        stats,
        sim_time_s,
    }
}

/// Runs the load generation and renders the human-readable report the
/// `serve` binary and the CI smoke job emit, ending with a PASS/FAIL
/// verdict from [`ServeLoadResult::check`].
pub fn serve_load_render(opts: &ServeLoadOptions) -> String {
    let r = serve_load(opts);
    let s = &r.stats;
    let mut out = String::new();
    writeln!(
        out,
        "== phi-serve load generation: {} requests/phase over {} specs ({} unique), {} clients ==",
        opts.requests, opts.space, r.unique, opts.clients
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "store: {}",
        opts.store_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "in-memory".to_string())
    )
    .expect("writing to a String cannot fail");

    let mut t = TextTable::new(["phase", "requests", "wall(s)", "req/s", "p99(us)", "digest"]);
    for (label, p) in [("cold", &r.cold), ("warm", &r.warm)] {
        t.row([
            label.to_string(),
            p.requests.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.0}", p.requests_per_s),
            format!("{:.1}", p.p99_latency_us),
            format!("{:#018x}", p.digest),
        ]);
    }
    out.push_str(&t.render());

    writeln!(
        out,
        "\nexecuted: {} | mem hits: {} | store hits: {} | coalesced: {}",
        s.executed, s.mem_hits, s.store_hits, s.coalesced
    )
    .expect("writing to a String cannot fail");
    writeln!(
        out,
        "hit rate: {:.4} | simulated throughput: {:.1} req/simulated-s",
        s.hit_rate(),
        r.simulated_requests_per_s()
    )
    .expect("writing to a String cannot fail");
    match r.check() {
        Ok(()) => out.push_str("serve-load invariants: PASS\n"),
        Err(e) => {
            writeln!(out, "serve-load invariants: FAIL — {e}")
                .expect("writing to a String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> ServeLoadOptions {
        ServeLoadOptions {
            requests: 1_000,
            space: 12,
            clients: 4,
            ..ServeLoadOptions::default()
        }
    }

    #[test]
    fn spec_space_is_exactly_unique_and_pick_is_stable() {
        let opts = ServeLoadOptions::default();
        let specs = build_specs(&opts);
        let keys: BTreeSet<u64> = specs.iter().map(|s| s.key()).collect();
        assert_eq!(keys.len(), opts.space, "every index must key uniquely");
        for s in &specs {
            s.validate().expect("generated specs are valid");
        }
        // The request→spec mix is deterministic and covers the space.
        let picks: Vec<usize> = (0..1000).map(|i| pick(opts.seed0, i, opts.space)).collect();
        assert_eq!(
            picks,
            (0..1000)
                .map(|i| pick(opts.seed0, i, opts.space))
                .collect::<Vec<_>>()
        );
        let covered: BTreeSet<usize> = picks.iter().copied().collect();
        assert!(covered.len() > opts.space / 2, "mix must spread the space");
    }

    #[test]
    fn load_is_byte_identical_at_one_two_and_eight_workers() {
        // Acceptance gate: ≥1000 concurrent requests, digest identical
        // at 1, 2 and 8 pool workers.
        let base = serve_load(&ServeLoadOptions {
            workers: 1,
            ..small_opts()
        });
        base.check().expect("workers=1 run violates an invariant");
        assert_eq!(base.cold_stats.executed, base.unique);
        for workers in [2usize, 8] {
            let other = serve_load(&ServeLoadOptions {
                workers,
                ..small_opts()
            });
            other
                .check()
                .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
            assert_eq!(other.cold.digest, base.cold.digest, "workers {workers}");
            assert_eq!(other.warm.digest, base.warm.digest, "workers {workers}");
        }
    }

    #[test]
    fn warm_phase_is_all_hits_and_store_survives_processes() {
        let dir = std::env::temp_dir().join(format!("phi-serve-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = ServeLoadOptions {
            store_dir: Some(dir.clone()),
            ..small_opts()
        };
        let first = serve_load(&opts);
        first.check().expect("cold run violates an invariant");
        assert_eq!(first.stats.executed, first.unique);
        assert_eq!(
            first.stats.requests - first.stats.executed,
            2 * opts.requests - first.unique,
            "everything but the first touch of each key is a hit"
        );
        // A second process over the same store executes nothing: its
        // cold phase is all store hits, and the digests still match.
        let second = serve_load(&opts);
        assert_eq!(second.stats.executed, 0, "{:?}", second.stats);
        assert_eq!(second.stats.store_hits, second.unique);
        assert_eq!(second.cold.digest, first.cold.digest);
        assert_eq!(second.sim_time_s.to_bits(), first.sim_time_s.to_bits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_reports_phases_and_verdict() {
        let text = serve_load_render(&ServeLoadOptions {
            requests: 200,
            space: 6,
            clients: 2,
            ..ServeLoadOptions::default()
        });
        for needle in ["cold", "warm", "hit rate", "digest", "PASS"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }
}
