//! The fault campaign: degraded-vs-healthy hybrid Linpack under seeded,
//! replayable fault plans — the robustness companion to the paper's
//! Table III. Every scenario runs through the fault-tolerant cluster
//! simulator; the renderer closes with a replay check that re-runs one
//! campaign and verifies bit-identity.

use crate::TextTable;
use phi_fabric::ProcessGrid;
use phi_faults::{FaultKind, FaultPlan};
use phi_hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use phi_hpl::{simulate_cluster_faulty, FtPolicy};

/// One campaign scenario's degraded-vs-healthy outcome.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// Scenario label.
    pub scenario: String,
    /// Scheduled fault events.
    pub events: usize,
    /// Cards permanently lost.
    pub cards_lost: usize,
    /// Degraded wall time, seconds.
    pub time_s: f64,
    /// Healthy wall time of the same configuration, seconds.
    pub healthy_s: f64,
    /// Degraded GFLOPS.
    pub gflops: f64,
    /// Checkpoint time paid, seconds.
    pub checkpoint_s: f64,
    /// Recovery (restore + re-division) time, seconds.
    pub recovery_s: f64,
    /// Fractional slowdown versus the healthy run, from
    /// [`phi_hpl::FaultSummary::overhead_fraction`].
    pub overhead: f64,
    /// Replay-identity fingerprint of the whole run.
    pub fingerprint: u64,
}

fn paper_node() -> HybridConfig {
    let mut cfg = HybridConfig::new(30_000, ProcessGrid::new(1, 1), 1);
    cfg.lookahead = Lookahead::Pipelined;
    cfg
}

fn run(cfg: &HybridConfig, label: &str, plan: &FaultPlan, policy: &FtPolicy) -> CampaignRow {
    let out = simulate_cluster_faulty(cfg, plan, policy, false);
    let f = out
        .result
        .report
        .faults
        .expect("faulty runs carry accounting");
    CampaignRow {
        scenario: label.to_string(),
        events: f.events,
        cards_lost: f.cards_lost,
        time_s: out.result.report.time_s,
        healthy_s: f.healthy_time_s,
        gflops: out.result.report.gflops,
        checkpoint_s: f.checkpoint_s,
        recovery_s: f.recovery_s,
        overhead: f.overhead_fraction(out.result.report.time_s),
        fingerprint: out.run_fingerprint(),
    }
}

/// Runs the canonical scenario set on the paper's single-node hybrid
/// configuration, plus three seeded random campaigns derived from
/// `seed`.
pub fn fault_campaign_rows(seed: u64) -> Vec<CampaignRow> {
    let cfg = paper_node();
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let none = FtPolicy::none();
    let ckpt = FtPolicy::default();

    let mut rows = vec![
        run(&cfg, "healthy (zero-fault plan)", &FaultPlan::none(), &none),
        run(
            &cfg,
            "straggler 30% cores x2, mid-run",
            &FaultPlan::none().with_event(
                healthy * 0.3,
                FaultKind::Straggler {
                    core_fraction: 0.3,
                    slowdown: 2.0,
                    duration_s: healthy * 0.3,
                },
            ),
            &none,
        ),
        run(
            &cfg,
            "PCIe CRC storm, mid-run",
            &FaultPlan::none().with_event(
                healthy * 0.3,
                FaultKind::PcieCrcStorm {
                    stall_s: 2e-4,
                    duration_s: healthy * 0.3,
                },
            ),
            &none,
        ),
        run(
            &cfg,
            "card death @ T/3, replay recovery",
            &FaultPlan::none().with_event(healthy / 3.0, FaultKind::CardDeath { card: 0 }),
            &none,
        ),
        run(
            &cfg,
            "card death @ T/3, checkpointed",
            &FaultPlan::none().with_event(healthy / 3.0, FaultKind::CardDeath { card: 0 }),
            &ckpt,
        ),
    ];
    for i in 0..3 {
        let s = seed.wrapping_add(i);
        rows.push(run(
            &cfg,
            &format!("campaign seed {s:#x}"),
            &FaultPlan::campaign(s, healthy * 1.5, 5),
            &ckpt,
        ));
    }
    rows
}

/// Renders the campaign table and the replay determinism check.
pub fn fault_campaign_render(seed: u64) -> String {
    let rows = fault_campaign_rows(seed);
    let mut t = TextTable::new([
        "scenario", "events", "lost", "t(s)", "healthy", "GFLOPS", "ovhd", "ckpt(s)", "rec(s)",
    ]);
    for r in &rows {
        t.row([
            r.scenario.clone(),
            r.events.to_string(),
            r.cards_lost.to_string(),
            format!("{:.2}", r.time_s),
            format!("{:.2}", r.healthy_s),
            format!("{:.0}", r.gflops),
            format!("{:+.1}%", 100.0 * r.overhead),
            format!("{:.2}", r.checkpoint_s),
            format!("{:.2}", r.recovery_s),
        ]);
    }

    // Replay check: the same seed must reproduce the same run, bit for
    // bit — re-run the first seeded campaign and compare fingerprints.
    let cfg = paper_node();
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let plan = FaultPlan::campaign(seed, healthy * 1.5, 5);
    let a = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
    let b = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
    let verdict = if a.run_fingerprint() == b.run_fingerprint() {
        "bit-identical"
    } else {
        "MISMATCH"
    };
    format!(
        "{}\nreplay check (seed {seed:#x}): {:#018x} vs {:#018x} — {verdict}\n",
        t.render(),
        a.run_fingerprint(),
        b.run_fingerprint(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_table_is_deterministic_and_ordered() {
        let one = fault_campaign_rows(0xCA11);
        let two = fault_campaign_rows(0xCA11);
        assert_eq!(one.len(), two.len());
        for (a, b) in one.iter().zip(&two) {
            assert_eq!(a.fingerprint, b.fingerprint, "{}", a.scenario);
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        }
        // The zero-fault row matches the healthy baseline exactly and the
        // card-death rows are the slowest.
        assert!((one[0].overhead).abs() < 1e-12);
        // The stored overhead is the canonical FaultSummary accounting.
        assert!((one[1].overhead - (one[1].time_s / one[1].healthy_s - 1.0)).abs() < 1e-12);
        assert!(one[3].time_s > one[1].time_s);
        assert_eq!(one[3].cards_lost, 1);
        // Checkpointing caps recovery relative to replaying lost work.
        assert!(one[4].recovery_s <= one[3].recovery_s);
    }

    #[test]
    fn render_reports_bit_identical_replay() {
        let text = fault_campaign_render(0xBEEF);
        assert!(text.contains("bit-identical"), "{text}");
        assert!(!text.contains("MISMATCH"), "{text}");
    }
}
