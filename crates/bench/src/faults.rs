//! The fault campaign: degraded-vs-healthy hybrid Linpack under seeded,
//! replayable fault plans — the robustness companion to the paper's
//! Table III. Scenarios run on the paper's single-node configuration
//! and, via [`fault_campaign_cluster_rows`], on the Table III 100-node
//! system (N = 825K on a 10 × 10 grid), where host-rank deaths force a
//! fallback-grid recovery. Every scenario runs through the
//! fault-tolerant cluster simulator; the renderers close with a replay
//! check that re-runs one campaign and verifies bit-identity.

use crate::TextTable;
use phi_fabric::{ProcessGrid, RemapStrategy};
use phi_faults::{ChildSpec, Escalation, FaultKind, FaultPlan, Scope};
use phi_hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use phi_hpl::{simulate_cluster_faulty, FtPolicy};
use std::fmt::Write;

/// One campaign scenario's degraded-vs-healthy outcome.
#[derive(Clone, Debug)]
pub struct CampaignRow {
    /// Scenario label.
    pub scenario: String,
    /// Scheduled fault events.
    pub events: usize,
    /// Cards permanently lost.
    pub cards_lost: usize,
    /// Host ranks permanently lost.
    pub hosts_lost: usize,
    /// Grid the survivors re-formed — only under a wholesale reshape.
    pub fallback: Option<(usize, usize)>,
    /// Recovery remapping strategy the row ran under.
    pub remap: RemapStrategy,
    /// Trailing `nb × nb` blocks redistributed across host deaths.
    pub blocks_moved: usize,
    /// Degraded wall time, seconds.
    pub time_s: f64,
    /// Healthy wall time of the same configuration, seconds.
    pub healthy_s: f64,
    /// Degraded GFLOPS.
    pub gflops: f64,
    /// Checkpoint time paid, seconds.
    pub checkpoint_s: f64,
    /// Recovery (restore + re-division) time, seconds.
    pub recovery_s: f64,
    /// Fractional slowdown versus the healthy run, from
    /// [`phi_hpl::FaultSummary::overhead_fraction`].
    pub overhead: f64,
    /// Replay-identity fingerprint of the whole run.
    pub fingerprint: u64,
}

impl CampaignRow {
    /// The fallback grid as `pxq`, or `-` when no host died.
    pub fn fallback_label(&self) -> String {
        match self.fallback {
            Some((p, q)) => format!("{p}x{q}"),
            None => "-".to_string(),
        }
    }
}

fn paper_node() -> HybridConfig {
    let mut cfg = HybridConfig::new(30_000, ProcessGrid::new(1, 1), 1);
    cfg.lookahead = Lookahead::Pipelined;
    cfg
}

/// The paper's Table III 100-node system: N = 825K on a 10 × 10 grid,
/// one coprocessor per node, pipelined look-ahead.
pub fn paper_cluster() -> HybridConfig {
    let mut cfg = HybridConfig::new(825_000, ProcessGrid::new(10, 10), 1);
    cfg.lookahead = Lookahead::Pipelined;
    cfg
}

fn run(cfg: &HybridConfig, label: &str, plan: &FaultPlan, policy: &FtPolicy) -> CampaignRow {
    let out = simulate_cluster_faulty(cfg, plan, policy, false);
    let f = out
        .result
        .report
        .faults
        .expect("faulty runs carry accounting");
    CampaignRow {
        scenario: label.to_string(),
        events: f.events,
        cards_lost: f.cards_lost,
        hosts_lost: f.hosts_lost,
        fallback: f.fallback_grid,
        remap: f.remap,
        blocks_moved: f.blocks_moved,
        time_s: out.result.report.time_s,
        healthy_s: f.healthy_time_s,
        gflops: out.result.report.gflops,
        checkpoint_s: f.checkpoint_s,
        recovery_s: f.recovery_s,
        overhead: f.overhead_fraction(out.result.report.time_s),
        fingerprint: out.run_fingerprint(),
    }
}

/// Runs the canonical scenario set on the paper's single-node hybrid
/// configuration, plus three seeded random campaigns derived from
/// `seed`.
pub fn fault_campaign_rows(seed: u64) -> Vec<CampaignRow> {
    let cfg = paper_node();
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let none = FtPolicy::none();
    let ckpt = FtPolicy::default();

    let mut rows = vec![
        run(&cfg, "healthy (zero-fault plan)", &FaultPlan::none(), &none),
        run(
            &cfg,
            "straggler 30% cores x2, mid-run",
            &FaultPlan::none().with_event(
                healthy * 0.3,
                FaultKind::Straggler {
                    core_fraction: 0.3,
                    slowdown: 2.0,
                    duration_s: healthy * 0.3,
                },
            ),
            &none,
        ),
        run(
            &cfg,
            "PCIe CRC storm, mid-run",
            &FaultPlan::none().with_event(
                healthy * 0.3,
                FaultKind::PcieCrcStorm {
                    stall_s: 2e-4,
                    duration_s: healthy * 0.3,
                },
            ),
            &none,
        ),
        run(
            &cfg,
            "card death @ T/3, replay recovery",
            &FaultPlan::none().with_event(healthy / 3.0, FaultKind::CardDeath { card: 0 }),
            &none,
        ),
        run(
            &cfg,
            "card death @ T/3, checkpointed",
            &FaultPlan::none().with_event(healthy / 3.0, FaultKind::CardDeath { card: 0 }),
            &ckpt,
        ),
    ];
    for i in 0..3 {
        let s = seed.wrapping_add(i);
        rows.push(run(
            &cfg,
            &format!("campaign seed {s:#x}"),
            &FaultPlan::campaign(s, healthy * 1.5, 5),
            &ckpt,
        ));
    }
    rows
}

/// The Table III 100-node scenario set: healthy baseline, a transient
/// link fault, host-rank deaths under both recovery policies (plus an
/// explicit wholesale-remap row for the redistribution-volume
/// comparison), a card death, the two cascade archetypes
/// (storm → card, link flap → host), a three-hop
/// storm → card → host chain, and two seeded cluster campaigns derived
/// from `seed`. Host-death rows recover under `remap` except the
/// explicitly-wholesale row.
pub fn fault_campaign_cluster_rows(seed: u64, remap: RemapStrategy) -> Vec<CampaignRow> {
    let cfg = paper_cluster();
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let none = FtPolicy::none().with_remap(remap);
    let ckpt = FtPolicy::default().with_remap(remap);
    let whsl = FtPolicy::default().with_remap(RemapStrategy::Wholesale);

    let host_death = FaultPlan::none().with_event(healthy / 3.0, FaultKind::HostDeath { rank: 42 });
    let storm_cascade = FaultPlan::none()
        .with_cascade(
            healthy / 3.0,
            FaultKind::PcieCrcStorm {
                stall_s: 2e-4,
                duration_s: healthy * 0.1,
            },
            Escalation::new(FaultKind::CardDeath { card: 0 }, healthy * 0.05, 1.0),
        )
        .resolved(seed, healthy * 2.0);
    let flap_cascade = FaultPlan::none()
        .with_cascade(
            healthy / 2.0,
            FaultKind::LinkDegrade {
                factor: 0.2,
                duration_s: healthy * 0.1,
            },
            Escalation::new(FaultKind::HostDeath { rank: 7 }, healthy * 0.05, 1.0),
        )
        .resolved(seed, healthy * 2.0);
    // The recursive-chain archetype: a CRC storm takes out its card,
    // and the orphaned host rank follows — three hops, one causal unit.
    let chain_cascade = FaultPlan::none()
        .with_cascade(
            healthy / 3.0,
            FaultKind::PcieCrcStorm {
                stall_s: 2e-4,
                duration_s: healthy * 0.1,
            },
            Escalation::new(FaultKind::CardDeath { card: 0 }, healthy * 0.05, 1.0).chain(
                Escalation::new(FaultKind::HostDeath { rank: 23 }, healthy * 0.05, 1.0),
            ),
        )
        .resolved(seed, healthy * 2.0);
    // The correlated fan-out archetypes: one rack power event takes a
    // contiguous 8-rank set down in a single resolution step, and one
    // CRC storm fans to every card on its host.
    let rack_fanout = FaultPlan::none()
        .with_cascade(
            healthy / 2.0,
            FaultKind::LinkDegrade {
                factor: 0.1,
                duration_s: healthy * 0.05,
            },
            Escalation::fan(vec![ChildSpec::new(
                FaultKind::HostDeath { rank: 40 },
                healthy * 0.02,
                1.0,
            )
            .with_scope(Scope::RankSet((40..48).collect()))]),
        )
        .resolved(seed, healthy * 2.0);
    let storm_fanout = FaultPlan::none()
        .with_cascade(
            healthy / 3.0,
            FaultKind::PcieCrcStorm {
                stall_s: 2e-4,
                duration_s: healthy * 0.1,
            },
            Escalation::fan(vec![ChildSpec::new(
                FaultKind::CardDeath { card: 0 },
                healthy * 0.05,
                1.0,
            )
            .with_scope(Scope::SameHost {
                cards: cfg.cards_per_node,
            })]),
        )
        .resolved(seed, healthy * 2.0);

    let mut rows = vec![
        run(&cfg, "healthy (zero-fault plan)", &FaultPlan::none(), &none),
        run(
            &cfg,
            "link degrade 50%, T/5 window",
            &FaultPlan::none().with_event(
                healthy * 0.4,
                FaultKind::LinkDegrade {
                    factor: 0.5,
                    duration_s: healthy * 0.2,
                },
            ),
            &none,
        ),
        run(&cfg, "host death @ T/3, checkpointed", &host_death, &ckpt),
        run(&cfg, "host death @ T/3, recompute", &host_death, &none),
        run(
            &cfg,
            "host death @ T/3, wholesale remap",
            &host_death,
            &whsl,
        ),
        run(
            &cfg,
            "card death @ T/3, checkpointed",
            &FaultPlan::none().with_event(healthy / 3.0, FaultKind::CardDeath { card: 0 }),
            &ckpt,
        ),
        run(
            &cfg,
            "CRC storm -> card death cascade",
            &storm_cascade,
            &ckpt,
        ),
        run(
            &cfg,
            "link flap -> host death cascade",
            &flap_cascade,
            &ckpt,
        ),
        run(&cfg, "storm -> card -> host chain", &chain_cascade, &ckpt),
        run(
            &cfg,
            "rack power event, 8-rank fan-out",
            &rack_fanout,
            &ckpt,
        ),
        run(
            &cfg,
            "storm fans to every card on host",
            &storm_fanout,
            &ckpt,
        ),
    ];
    for i in 0..2u64 {
        let s = seed.wrapping_add(i);
        rows.push(run(
            &cfg,
            &format!("cluster campaign seed {s:#x}"),
            &FaultPlan::cluster_campaign(s, healthy * 1.2, 6, cfg.grid.size(), cfg.cards_per_node),
            &ckpt,
        ));
    }
    rows
}

fn render_rows(rows: &[CampaignRow]) -> String {
    let mut t = TextTable::new([
        "scenario", "events", "cards", "hosts", "remap", "grid", "moved", "t(s)", "healthy",
        "GFLOPS", "ovhd", "ckpt(s)", "rec(s)",
    ]);
    for r in rows {
        t.row([
            r.scenario.clone(),
            r.events.to_string(),
            r.cards_lost.to_string(),
            r.hosts_lost.to_string(),
            r.remap.label().to_string(),
            r.fallback_label(),
            r.blocks_moved.to_string(),
            format!("{:.2}", r.time_s),
            format!("{:.2}", r.healthy_s),
            format!("{:.0}", r.gflops),
            format!("{:+.1}%", 100.0 * r.overhead),
            format!("{:.2}", r.checkpoint_s),
            format!("{:.2}", r.recovery_s),
        ]);
    }
    t.render()
}

fn replay_check(cfg: &HybridConfig, plan: &FaultPlan, seed: u64) -> String {
    let a = simulate_cluster_faulty(cfg, plan, &FtPolicy::default(), false);
    let b = simulate_cluster_faulty(cfg, plan, &FtPolicy::default(), false);
    let verdict = if a.run_fingerprint() == b.run_fingerprint() {
        "bit-identical"
    } else {
        "MISMATCH"
    };
    format!(
        "replay check (seed {seed:#x}): {:#018x} vs {:#018x} — {verdict}\n",
        a.run_fingerprint(),
        b.run_fingerprint(),
    )
}

/// Renders the single-node campaign table and the replay determinism
/// check.
pub fn fault_campaign_render(seed: u64) -> String {
    let rows = fault_campaign_rows(seed);
    // Replay check: the same seed must reproduce the same run, bit for
    // bit — re-run the first seeded campaign and compare fingerprints.
    let cfg = paper_node();
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let plan = FaultPlan::campaign(seed, healthy * 1.5, 5);
    format!(
        "{}\n{}",
        render_rows(&rows),
        replay_check(&cfg, &plan, seed)
    )
}

/// Renders the Table III 100-node campaign table and its replay check,
/// recovering host deaths under `remap`.
pub fn fault_campaign_cluster_render(seed: u64, remap: RemapStrategy) -> String {
    let rows = fault_campaign_cluster_rows(seed, remap);
    let cfg = paper_cluster();
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let plan =
        FaultPlan::cluster_campaign(seed, healthy * 1.2, 6, cfg.grid.size(), cfg.cards_per_node);
    format!(
        "{}\n{}",
        render_rows(&rows),
        replay_check(&cfg, &plan, seed)
    )
}

/// The fault section of `experiments_md`, shared by the binary and the
/// golden-snapshot test: single-node campaign plus the Table III
/// cluster scenarios, as markdown.
pub fn experiments_fault_section_md(seed: u64) -> String {
    let mut out = String::new();
    out.push_str("## Fault campaign\n\n");
    out.push_str("| scenario | events | lost | overhead | ckpt(s) | rec(s) |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for r in fault_campaign_rows(seed) {
        writeln!(
            out,
            "| {} | {} | {} | {:+.1}% | {:.2} | {:.2} |",
            r.scenario,
            r.events,
            r.cards_lost,
            100.0 * r.overhead,
            r.checkpoint_s,
            r.recovery_s
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("\n### Table III cluster scenarios (N = 825K, 10×10)\n\n");
    out.push_str(
        "| scenario | events | cards | hosts | remap | grid | moved | overhead | rec(s) |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for r in fault_campaign_cluster_rows(seed, RemapStrategy::default()) {
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {:+.1}% | {:.2} |",
            r.scenario,
            r.events,
            r.cards_lost,
            r.hosts_lost,
            r.remap.label(),
            r.fallback_label(),
            r.blocks_moved,
            100.0 * r.overhead,
            r.recovery_s
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_table_is_deterministic_and_ordered() {
        let one = fault_campaign_rows(0xCA11);
        let two = fault_campaign_rows(0xCA11);
        assert_eq!(one.len(), two.len());
        for (a, b) in one.iter().zip(&two) {
            assert_eq!(a.fingerprint, b.fingerprint, "{}", a.scenario);
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
        }
        // The zero-fault row matches the healthy baseline exactly and the
        // card-death rows are the slowest.
        assert!((one[0].overhead).abs() < 1e-12);
        // The stored overhead is the canonical FaultSummary accounting.
        assert!((one[1].overhead - (one[1].time_s / one[1].healthy_s - 1.0)).abs() < 1e-12);
        assert!(one[3].time_s > one[1].time_s);
        assert_eq!(one[3].cards_lost, 1);
        // Checkpointing caps recovery relative to replaying lost work.
        assert!(one[4].recovery_s <= one[3].recovery_s);
    }

    #[test]
    fn render_reports_bit_identical_replay() {
        let text = fault_campaign_render(0xBEEF);
        assert!(text.contains("bit-identical"), "{text}");
        assert!(!text.contains("MISMATCH"), "{text}");
    }

    #[test]
    fn cluster_table_covers_host_death_and_recovers() {
        let rows = fault_campaign_cluster_rows(0xFA_0175, RemapStrategy::default());
        // Zero-fault row is exactly healthy.
        assert!((rows[0].overhead).abs() < 1e-12);
        assert_eq!(rows[0].fallback, None);
        assert_eq!(rows[0].blocks_moved, 0);
        // The checkpointed host-death row: one rank lost, patched in
        // place (original 10×10 grid kept), overhead well under 1 (the
        // ISSUE 4 acceptance bar) and checkpointed recovery cheaper
        // than recomputing the dead rank's share.
        let ck = &rows[2];
        assert_eq!((ck.hosts_lost, ck.cards_lost), (1, 0));
        assert_eq!(ck.remap, RemapStrategy::Patch);
        assert_eq!(ck.fallback, None, "a patch keeps the grid");
        assert!(ck.blocks_moved > 0);
        assert!(ck.overhead > 0.0 && ck.overhead < 1.0, "{}", ck.overhead);
        let re = &rows[3];
        assert!(ck.recovery_s < re.recovery_s);
        // The wholesale row reshapes to the 9×11 fallback grid and ships
        // ≥ 10× the patch's redistribution volume (ISSUE 5 acceptance —
        // on a 10×10 grid the closed form gives ~100×).
        let wh = &rows[4];
        assert_eq!(wh.remap, RemapStrategy::Wholesale);
        assert_eq!(wh.fallback, Some((9, 11)));
        assert!(
            wh.blocks_moved >= 10 * ck.blocks_moved,
            "patch moved {} vs wholesale {}",
            ck.blocks_moved,
            wh.blocks_moved
        );
        assert!(ck.recovery_s <= wh.recovery_s);
        // Cascades resolve into two-event causal units.
        let storm = &rows[6];
        assert_eq!((storm.events, storm.cards_lost), (2, 1));
        let flap = &rows[7];
        assert_eq!((flap.events, flap.hosts_lost), (2, 1));
        assert_eq!(flap.fallback, None, "patched, not reshaped");
        assert!(flap.blocks_moved > 0);
        // The three-hop chain resolves storm → card → host: three
        // events, one card and one host down.
        let chain = &rows[8];
        assert_eq!(
            (chain.events, chain.cards_lost, chain.hosts_lost),
            (3, 1, 1)
        );
        // The rack power event fans one draw into the whole correlated
        // 8-rank set — all dead in one resolution step, still patched
        // in place (8 ≤ the size/8 death budget on 100 nodes).
        let rack = &rows[9];
        assert_eq!((rack.events, rack.hosts_lost), (9, 8));
        assert_eq!(rack.remap, RemapStrategy::Patch);
        assert_eq!(rack.fallback, None, "budgeted patch keeps the grid");
        assert!(rack.blocks_moved > ck.blocks_moved);
        // The storm fan-out strikes every card on its host (one on the
        // Table III system).
        let fan = &rows[10];
        assert_eq!((fan.events, fan.cards_lost, fan.hosts_lost), (2, 1, 0));
        // Monotone: every faulted row costs time and GF/s.
        for r in &rows[1..] {
            assert!(r.time_s >= r.healthy_s, "{}", r.scenario);
            assert!(r.gflops <= rows[0].gflops, "{}", r.scenario);
        }
    }

    #[test]
    fn cluster_render_is_deterministic() {
        let a = fault_campaign_cluster_render(0xCAFE, RemapStrategy::default());
        assert_eq!(
            a,
            fault_campaign_cluster_render(0xCAFE, RemapStrategy::default())
        );
        assert!(a.contains("bit-identical"), "{a}");
        let md = experiments_fault_section_md(0xCAFE);
        assert_eq!(md, experiments_fault_section_md(0xCAFE));
        assert!(md.contains("Table III cluster scenarios"));
    }

    #[test]
    fn wholesale_everywhere_matches_the_explicit_row() {
        // Running the whole table under Wholesale turns the default
        // host-death row into the explicit wholesale row.
        let rows = fault_campaign_cluster_rows(0x11, RemapStrategy::Wholesale);
        assert_eq!(rows[2].fingerprint, rows[4].fingerprint);
        assert_eq!(rows[2].blocks_moved, rows[4].blocks_moved);
        assert_eq!(rows[2].fallback, Some((9, 11)));
    }
}
