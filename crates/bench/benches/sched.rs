//! Criterion benches of the scheduling structures, including the
//! master-only vs all-threads critical-section ablation the paper's
//! group design is motivated by (Section IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phi_sched::{run_group_scheduled, DagScheduler, GroupPlan, TileDeque};

fn bench_dag_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_drain_single_thread");
    for npanels in [32usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(npanels), &npanels, |bench, &n| {
            bench.iter(|| {
                let dag = DagScheduler::new(n);
                let mut count = 0usize;
                while let Some(t) = dag.available_task() {
                    dag.commit(t);
                    count += 1;
                }
                count
            });
        });
    }
    g.finish();
}

/// The contention ablation: the same DAG drained by 8 threads organized
/// either as 8 independent lock-takers (groups of 1) or as 2 groups of 4
/// where only the master touches the scheduler lock.
fn bench_group_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("critical_section_ablation");
    g.sample_size(10);
    let npanels = 48;
    for (label, tpg) in [("all_threads_contend", 1usize), ("master_only", 4usize)] {
        g.bench_function(label, |bench| {
            bench.iter(|| {
                let dag = DagScheduler::new(npanels);
                let plan = GroupPlan::new(8, tpg);
                run_group_scheduled(&dag, &plan, |_, _, _| {
                    // A tiny simulated kernel so lock traffic dominates.
                    std::hint::black_box((0..64).sum::<u64>());
                });
            });
        });
    }
    g.finish();
}

fn bench_tile_deque(c: &mut Criterion) {
    c.bench_function("tile_deque_drain_10k", |bench| {
        bench.iter(|| {
            let d = TileDeque::new(10_000);
            let mut n = 0usize;
            loop {
                let a = d.steal_front();
                let b = d.steal_back();
                if a.is_none() && b.is_none() {
                    break;
                }
                n += usize::from(a.is_some()) + usize::from(b.is_some());
            }
            n
        });
    });
}

criterion_group!(benches, bench_dag_drain, bench_group_contention, bench_tile_deque);
criterion_main!(benches);
