//! Wall-clock benches of the scheduling structures, including the
//! master-only vs all-threads critical-section ablation the paper's
//! group design is motivated by (Section IV-A). Plain timing loops — no
//! external harness.

use phi_sched::{run_group_scheduled, DagScheduler, GroupPlan, TileDeque};
use std::time::Instant;

/// Runs `f` for ~200ms after one warmup call and prints ns/iter.
fn bench(label: &str, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        f();
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{label:<44} {:>14.1} ns/iter  ({iters} iters)", per * 1e9);
}

fn bench_dag_drain() {
    for npanels in [32usize, 128] {
        bench(&format!("dag_drain_single_thread/{npanels}"), || {
            let dag = DagScheduler::new(npanels);
            let mut count = 0usize;
            while let Some(t) = dag.available_task() {
                dag.commit(t);
                count += 1;
            }
            std::hint::black_box(count);
        });
    }
}

/// The contention ablation: the same DAG drained by 8 threads organized
/// either as 8 independent lock-takers (groups of 1) or as 2 groups of 4
/// where only the master touches the scheduler lock.
fn bench_group_contention() {
    let npanels = 48;
    for (label, tpg) in [("all_threads_contend", 1usize), ("master_only", 4usize)] {
        bench(&format!("critical_section_ablation/{label}"), || {
            let dag = DagScheduler::new(npanels);
            let plan = GroupPlan::new(8, tpg);
            run_group_scheduled(&dag, &plan, |_, _, _| {
                // A tiny simulated kernel so lock traffic dominates.
                std::hint::black_box((0..64).sum::<u64>());
            });
        });
    }
}

fn bench_tile_deque() {
    bench("tile_deque_drain_10k", || {
        let d = TileDeque::new(10_000);
        let mut n = 0usize;
        loop {
            let a = d.steal_front();
            let b = d.steal_back();
            if a.is_none() && b.is_none() {
                break;
            }
            n += usize::from(a.is_some()) + usize::from(b.is_some());
        }
        std::hint::black_box(n);
    });
}

fn main() {
    bench_dag_drain();
    bench_group_contention();
    bench_tile_deque();
}
