//! Criterion benches over the real GEMM kernels: packing, microkernels
//! and the blocked driver (host-side wall time, complementing the
//! virtual-time figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phi_blas::gemm::{
    gemm_naive, gemm_with, micro_kernel_into, pack_a, pack_b, BlockSizes, MicroKernelKind,
};
use phi_matrix::{MatGen, Matrix};

fn bench_microkernels(c: &mut Criterion) {
    let depth = 300;
    let mut g = c.benchmark_group("microkernel");
    for (kind, mr) in [(MicroKernelKind::Kernel1, 31), (MicroKernelKind::Kernel2, 30)] {
        let a = MatGen::new(1).matrix::<f64>(mr, depth);
        let b = MatGen::new(2).matrix::<f64>(depth, 8);
        let pa = pack_a(&a.view(), mr);
        let pb = pack_b(&b.view(), 8);
        g.throughput(Throughput::Elements((2 * mr * 8 * depth) as u64));
        g.bench_function(BenchmarkId::new("tile", format!("{kind:?}")), |bench| {
            let mut cmat = Matrix::<f64>::zeros(mr, 8);
            bench.iter(|| {
                micro_kernel_into(
                    kind,
                    mr,
                    8,
                    depth,
                    pa.tile(0),
                    pb.tile(0),
                    1.0,
                    1.0,
                    &mut cmat.view_mut(),
                );
            });
        });
    }
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    for n in [256usize, 1024] {
        let a = MatGen::new(3).matrix::<f64>(n, 300);
        g.throughput(Throughput::Elements((n * 300) as u64));
        g.bench_with_input(BenchmarkId::new("pack_a_mr30", n), &n, |bench, _| {
            bench.iter(|| pack_a(&a.view(), 30));
        });
        let b = MatGen::new(4).matrix::<f64>(300, n);
        g.bench_with_input(BenchmarkId::new("pack_b_nr8", n), &n, |bench, _| {
            bench.iter(|| pack_b(&b.view(), 8));
        });
    }
    g.finish();
}

fn bench_gemm_drivers(c: &mut Criterion) {
    let n = 192;
    let a = MatGen::new(5).matrix::<f64>(n, n);
    let b = MatGen::new(6).matrix::<f64>(n, n);
    let mut g = c.benchmark_group("dgemm");
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("naive", |bench| {
        let mut cm = Matrix::<f64>::zeros(n, n);
        bench.iter(|| gemm_naive(1.0, &a.view(), &b.view(), 0.0, &mut cm.view_mut()));
    });
    g.bench_function("blocked_host", |bench| {
        let mut cm = Matrix::<f64>::zeros(n, n);
        let bs = BlockSizes::default();
        bench.iter(|| gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut cm.view_mut(), &bs));
    });
    g.bench_function("blocked_knc_shape", |bench| {
        let mut cm = Matrix::<f64>::zeros(n, n);
        let bs = BlockSizes::knc();
        bench.iter(|| gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut cm.view_mut(), &bs));
    });
    g.finish();
}

criterion_group!(benches, bench_microkernels, bench_packing, bench_gemm_drivers);
criterion_main!(benches);
