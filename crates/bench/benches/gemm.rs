//! Wall-clock benches over the real GEMM kernels: packing, microkernels
//! and the blocked driver (host-side wall time, complementing the
//! virtual-time figures). Plain timing loops — no external harness.

use phi_blas::gemm::{
    gemm_naive, gemm_with, micro_kernel_into, pack_a, pack_b, BlockSizes, MicroKernelKind,
};
use phi_matrix::{MatGen, Matrix};
use std::time::Instant;

/// Runs `f` for ~200ms after one warmup call and prints ns/iter.
fn bench(label: &str, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        f();
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{label:<44} {:>14.1} ns/iter  ({iters} iters)", per * 1e9);
}

fn bench_microkernels() {
    let depth = 300;
    for (kind, mr) in [
        (MicroKernelKind::Kernel1, 31),
        (MicroKernelKind::Kernel2, 30),
    ] {
        let a = MatGen::new(1).matrix::<f64>(mr, depth);
        let b = MatGen::new(2).matrix::<f64>(depth, 8);
        let pa = pack_a(&a.view(), mr);
        let pb = pack_b(&b.view(), 8);
        let mut cmat = Matrix::<f64>::zeros(mr, 8);
        bench(&format!("microkernel/tile/{kind:?}"), || {
            micro_kernel_into(
                kind,
                mr,
                8,
                depth,
                pa.tile(0),
                pb.tile(0),
                1.0,
                1.0,
                &mut cmat.view_mut(),
            );
        });
    }
}

fn bench_packing() {
    for n in [256usize, 1024] {
        let a = MatGen::new(3).matrix::<f64>(n, 300);
        bench(&format!("packing/pack_a_mr30/{n}"), || {
            std::hint::black_box(pack_a(&a.view(), 30));
        });
        let b = MatGen::new(4).matrix::<f64>(300, n);
        bench(&format!("packing/pack_b_nr8/{n}"), || {
            std::hint::black_box(pack_b(&b.view(), 8));
        });
    }
}

fn bench_gemm_drivers() {
    let n = 192;
    let a = MatGen::new(5).matrix::<f64>(n, n);
    let b = MatGen::new(6).matrix::<f64>(n, n);
    {
        let mut cm = Matrix::<f64>::zeros(n, n);
        bench("dgemm/naive", || {
            gemm_naive(1.0, &a.view(), &b.view(), 0.0, &mut cm.view_mut());
        });
    }
    {
        let mut cm = Matrix::<f64>::zeros(n, n);
        let bs = BlockSizes::default();
        bench("dgemm/blocked_host", || {
            gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut cm.view_mut(), &bs);
        });
    }
    {
        let mut cm = Matrix::<f64>::zeros(n, n);
        let bs = BlockSizes::knc();
        bench("dgemm/blocked_knc_shape", || {
            gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut cm.view_mut(), &bs);
        });
    }
}

fn main() {
    bench_microkernels();
    bench_packing();
    bench_gemm_drivers();
}
