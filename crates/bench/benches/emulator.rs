//! Criterion benches of the cycle-level KNC emulator and of the
//! discrete-event Linpack simulations — the "simulator speed" numbers a
//! user of this substrate cares about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phi_blas::gemm::MicroKernelKind;
use phi_hpl::native::{model::simulate_dynamic, NativeConfig};
use phi_hpl::offload::OffloadModel;
use phi_knc::{kernels, PipelineConfig};
use phi_matrix::HplRng;

fn bench_emulated_tile(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator_tile_product");
    for depth in [100usize, 300] {
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let mr = kernels::kernel_mr(kind);
            let mut rng = HplRng::new(1);
            let a: Vec<f64> = (0..mr * depth).map(|_| rng.next_value()).collect();
            let bs: [Vec<f64>; 4] = std::array::from_fn(|_| {
                (0..depth * kernels::NR).map(|_| rng.next_value()).collect()
            });
            // 4 threads × mr FMAs × 8 lanes × 2 flops per iteration.
            g.throughput(Throughput::Elements((4 * mr * 8 * 2 * depth) as u64));
            g.bench_function(
                BenchmarkId::new(format!("{kind:?}"), depth),
                |bench| {
                    bench.iter(|| {
                        kernels::run_tile_product(kind, depth, &a, &bs, PipelineConfig::default())
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_des_linpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_simulation");
    g.sample_size(10);
    for n in [4096usize, 16384] {
        g.bench_with_input(BenchmarkId::new("native_dynamic", n), &n, |bench, &n| {
            let cfg = NativeConfig::new(n);
            bench.iter(|| simulate_dynamic(&cfg, false));
        });
    }
    g.bench_function("offload_dgemm_40k", |bench| {
        let model = OffloadModel::default();
        bench.iter(|| model.simulate_with_grid(40_000, 40_000, 1, 8.0, (6, 6)));
    });
    g.finish();
}

criterion_group!(benches, bench_emulated_tile, bench_des_linpack);
criterion_main!(benches);
