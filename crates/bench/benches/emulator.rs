//! Wall-clock benches of the cycle-level KNC emulator and of the
//! discrete-event Linpack simulations — the "simulator speed" numbers a
//! user of this substrate cares about. Plain timing loops — no external
//! harness.

use phi_blas::gemm::MicroKernelKind;
use phi_hpl::native::{model::simulate_dynamic, NativeConfig};
use phi_hpl::offload::OffloadModel;
use phi_knc::{kernels, PipelineConfig};
use phi_matrix::HplRng;
use std::time::Instant;

/// Runs `f` for ~200ms after one warmup call and prints ns/iter.
fn bench(label: &str, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        f();
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{label:<44} {:>14.1} ns/iter  ({iters} iters)", per * 1e9);
}

fn bench_emulated_tile() {
    for depth in [100usize, 300] {
        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let mr = kernels::kernel_mr(kind);
            let mut rng = HplRng::new(1);
            let a: Vec<f64> = (0..mr * depth).map(|_| rng.next_value()).collect();
            let bs: [Vec<f64>; 4] = std::array::from_fn(|_| {
                (0..depth * kernels::NR).map(|_| rng.next_value()).collect()
            });
            bench(&format!("emulator_tile_product/{kind:?}/{depth}"), || {
                std::hint::black_box(kernels::run_tile_product(
                    kind,
                    depth,
                    &a,
                    &bs,
                    PipelineConfig::default(),
                ));
            });
        }
    }
}

fn bench_des_linpack() {
    for n in [4096usize, 16384] {
        let cfg = NativeConfig::new(n);
        bench(&format!("des_simulation/native_dynamic/{n}"), || {
            std::hint::black_box(simulate_dynamic(&cfg, false));
        });
    }
    let model = OffloadModel::default();
    bench("des_simulation/offload_dgemm_40k", || {
        std::hint::black_box(model.simulate_with_grid(40_000, 40_000, 1, 8.0, (6, 6)));
    });
}

fn main() {
    bench_emulated_tile();
    bench_des_linpack();
}
