//! Wall-clock benches over the LU path: unblocked panel, blocked
//! factorization, and the DAG-parallel numeric backend. Plain timing
//! loops — no external harness.

use phi_blas::gemm::BlockSizes;
use phi_blas::lu::{getf2, getrf};
use phi_hpl::native::factorize_parallel;
use phi_matrix::MatGen;
use phi_sched::GroupPlan;
use std::time::Instant;

/// Runs `f` for ~200ms after one warmup call and prints ns/iter.
fn bench(label: &str, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < 200 {
        f();
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    println!("{label:<44} {:>14.1} ns/iter  ({iters} iters)", per * 1e9);
}

fn bench_panel() {
    for (m, nb) in [(256usize, 16usize), (512, 32)] {
        let a = MatGen::new(1).matrix::<f64>(m, nb);
        bench(&format!("panel_getf2/{m}x{nb}"), || {
            let mut panel = a.clone();
            let mut piv = Vec::new();
            getf2(&mut panel.view_mut(), &mut piv, 0).unwrap();
            std::hint::black_box(piv);
        });
    }
}

fn bench_getrf() {
    for n in [128usize, 256] {
        let a = MatGen::new(2).matrix::<f64>(n, n);
        bench(&format!("getrf/sequential/{n}"), || {
            let mut m = a.clone();
            std::hint::black_box(getrf(&mut m.view_mut(), 32, &BlockSizes::default()).unwrap());
        });
        let plan = GroupPlan::new(4, 2);
        bench(&format!("getrf/dag_parallel_4t/{n}"), || {
            let mut m = a.clone();
            std::hint::black_box(factorize_parallel(&mut m, 32, &plan).unwrap());
        });
    }
}

fn main() {
    bench_panel();
    bench_getrf();
}
