//! Criterion benches over the LU path: unblocked panel, blocked
//! factorization, and the DAG-parallel numeric backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phi_blas::gemm::BlockSizes;
use phi_blas::lu::{getf2, getrf};
use phi_hpl::native::factorize_parallel;
use phi_matrix::MatGen;
use phi_sched::GroupPlan;

fn bench_panel(c: &mut Criterion) {
    let mut g = c.benchmark_group("panel_getf2");
    for (m, nb) in [(256usize, 16usize), (512, 32)] {
        let a = MatGen::new(1).matrix::<f64>(m, nb);
        g.throughput(Throughput::Elements((m * nb * nb) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{nb}")), &m, |bench, _| {
            bench.iter_batched(
                || a.clone(),
                |mut panel| {
                    let mut piv = Vec::new();
                    getf2(&mut panel.view_mut(), &mut piv, 0).unwrap();
                    piv
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_getrf(c: &mut Criterion) {
    let mut g = c.benchmark_group("getrf");
    for n in [128usize, 256] {
        let a = MatGen::new(2).matrix::<f64>(n, n);
        g.throughput(Throughput::Elements((2 * n * n * n / 3) as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |bench, _| {
            bench.iter_batched(
                || a.clone(),
                |mut m| getrf(&mut m.view_mut(), 32, &BlockSizes::default()).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("dag_parallel_4t", n), &n, |bench, _| {
            let plan = GroupPlan::new(4, 2);
            bench.iter_batched(
                || a.clone(),
                |mut m| factorize_parallel(&mut m, 32, &plan).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_panel, bench_getrf);
criterion_main!(benches);
