//! Golden-snapshot tests for the fault-campaign reports. The rendered
//! tables are deterministic functions of the seed, so any drift in the
//! fault model, the recovery costs or the formatting shows up as a
//! byte-level diff against the checked-in fixtures.
//!
//! To accept an intentional change, regenerate the fixtures with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p phi-bench --test golden_faults
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

/// The seed every fixture is rendered with — the same one the
/// `experiments_md` bin uses, so the docs and the goldens agree.
const SEED: u64 = 0xFA_0175;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first diverging line instead of dumping both
        // reports wholesale.
        for (i, (exp, act)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(
                exp,
                act,
                "fixture {name} diverges at line {} (UPDATE_GOLDEN=1 to regen)",
                i + 1
            );
        }
        assert_eq!(
            expected.lines().count(),
            actual.lines().count(),
            "fixture {name}: line count changed (UPDATE_GOLDEN=1 to regen)"
        );
        // Same lines but different bytes (trailing whitespace, final
        // newline): fall through to the exact comparison.
        assert_eq!(expected, actual, "fixture {name}: byte-level drift");
    }
}

#[test]
fn single_node_campaign_table_matches_golden() {
    check_golden(
        "fault_campaign_single.txt",
        &phi_bench::fault_campaign_render(SEED),
    );
}

#[test]
fn cluster_campaign_table_matches_golden() {
    check_golden(
        "fault_campaign_cluster.txt",
        &phi_bench::fault_campaign_cluster_render(SEED, phi_fabric::RemapStrategy::default()),
    );
}

#[test]
fn experiments_md_fault_section_matches_golden() {
    check_golden(
        "experiments_fault_section.md",
        &phi_bench::experiments_fault_section_md(SEED),
    );
}
