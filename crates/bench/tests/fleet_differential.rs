//! Differential locks on the fleet Monte Carlo layer and the fan-out
//! refactor it rides on.
//!
//! 1. **Thread-count independence** — the fleet's rendered report (and
//!    therefore every percentile, curve and frontier in it) must be
//!    byte-identical at 1, 2 and 8 worker threads: the striped merge
//!    puts every seed's outcome back in its input slot, so scheduling
//!    can never leak into the statistics.
//! 2. **Single-child chains are the legacy format** — an
//!    `Escalation::new(..).chain(..)` cascade built after the fan-out
//!    refactor must resolve to the same events and the same plan
//!    fingerprint as the pre-refactor single-child encoding; the pinned
//!    constant below was captured from the pre-fan-out implementation.

use phi_bench::fleet::{fleet_render, run_fleet, FleetOptions};
use phi_faults::{CampaignScope, Escalation, FaultKind, FaultPlan};

fn opts(threads: usize) -> FleetOptions {
    FleetOptions {
        seeds: 48,
        threads,
        scope: CampaignScope::Mixed,
        budgets: vec![4, 12],
        budget_stride: 12,
        ..FleetOptions::default()
    }
}

#[test]
fn fleet_report_is_byte_identical_at_1_2_and_8_threads() {
    let base = fleet_render(&opts(1));
    for threads in [2usize, 8] {
        assert_eq!(
            fleet_render(&opts(threads)),
            base,
            "fleet report diverged at {threads} threads"
        );
    }
}

#[test]
fn fleet_outcomes_merge_independently_of_thread_count() {
    let base = run_fleet(&opts(1));
    for threads in [2usize, 8] {
        let other = run_fleet(&opts(threads));
        assert_eq!(other.digest, base.digest);
        for (a, b) in base.outcomes.iter().zip(&other.outcomes) {
            assert_eq!(a, b, "seed {:#x} diverged at {threads} threads", a.seed);
        }
    }
}

#[test]
fn rack_and_storm_scoped_fleets_are_deterministic_too() {
    for scope in [CampaignScope::Rack, CampaignScope::Storm] {
        let base = run_fleet(&FleetOptions { scope, ..opts(1) });
        let wide = run_fleet(&FleetOptions { scope, ..opts(8) });
        assert_eq!(base.digest, wide.digest, "{}", scope.name());
    }
}

/// Builds the three-hop single-child cascade the pre-fan-out campaign
/// used, resolves it, and checks fingerprint + event schedule are
/// exactly what the single-boxed-child implementation produced.
#[test]
fn single_child_chain_resolution_matches_pre_fanout_capture() {
    let plan =
        FaultPlan::none()
            .with_cascade(
                100.0,
                FaultKind::PcieCrcStorm {
                    stall_s: 2e-4,
                    duration_s: 30.0,
                },
                Escalation::new(FaultKind::CardDeath { card: 0 }, 15.0, 1.0).chain(
                    Escalation::new(FaultKind::HostDeath { rank: 23 }, 15.0, 1.0),
                ),
            )
            .resolved(0xFA_0175, 1.0e4);
    // Storm at 100 s, card death at exactly +15 s, host death +15 s
    // after that: delays with probability 1.0 and no jitter take no
    // random draw, so the onsets are exact sums.
    assert_eq!(plan.events().len(), 3);
    assert_eq!(plan.events()[0].at_s.to_bits(), 100.0f64.to_bits());
    assert_eq!(plan.events()[1].at_s.to_bits(), 115.0f64.to_bits());
    assert_eq!(plan.events()[2].at_s.to_bits(), 130.0f64.to_bits());
    assert!(matches!(
        plan.events()[1].kind,
        FaultKind::CardDeath { card: 0 }
    ));
    assert!(matches!(
        plan.events()[2].kind,
        FaultKind::HostDeath { rank: 23 }
    ));
    // The pinned capture: the single-child encoding's exact
    // fingerprint. Any fan-out change that perturbs the legacy byte
    // stream lands here.
    assert_eq!(plan.fingerprint(), 0x2c2153e4f8029b53);
}
