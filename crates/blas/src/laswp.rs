//! `DLASWP` — row interchanges from a pivot vector.
//!
//! LU factorization with partial pivoting records, for each elimination
//! step `i`, the row `ipiv[i]` that was swapped with row `i`. HPL applies
//! those swaps across the trailing matrix (and, in the hybrid flavours,
//! pipelines them in column strips — Section V-A). The forward order
//! reproduces the factorization's permutation; the inverse order undoes it.

use phi_matrix::{MatrixViewMut, Scalar};

/// Applies swaps `row i <-> row ipiv[i]` for `i = 0..ipiv.len()` in
/// ascending order (LAPACK `DLASWP` with increment +1).
///
/// # Panics
/// Panics when any pivot index is out of bounds.
pub fn laswp_forward<T: Scalar>(a: &mut MatrixViewMut<'_, T>, ipiv: &[usize]) {
    for (i, &p) in ipiv.iter().enumerate() {
        assert!(p < a.rows(), "pivot {p} out of bounds ({} rows)", a.rows());
        a.swap_rows(i, p);
    }
}

/// Applies the same swaps in descending order, undoing
/// [`laswp_forward`].
pub fn laswp_inverse<T: Scalar>(a: &mut MatrixViewMut<'_, T>, ipiv: &[usize]) {
    for (i, &p) in ipiv.iter().enumerate().rev() {
        assert!(p < a.rows(), "pivot {p} out of bounds ({} rows)", a.rows());
        a.swap_rows(i, p);
    }
}

/// Applies `laswp_forward` to a vector (the right-hand side `b`).
pub fn laswp_vec<T: Scalar>(x: &mut [T], ipiv: &[usize]) {
    for (i, &p) in ipiv.iter().enumerate() {
        assert!(p < x.len(), "pivot {p} out of bounds ({} rows)", x.len());
        x.swap(i, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::{MatGen, Matrix};

    #[test]
    fn forward_then_inverse_is_identity() {
        let orig = MatGen::new(3).matrix::<f64>(8, 5);
        let mut m = orig.clone();
        let ipiv = vec![3, 1, 7, 3, 4, 6];
        laswp_forward(&mut m.view_mut(), &ipiv);
        assert!(m.max_abs_diff(&orig) > 0.0, "swaps changed something");
        laswp_inverse(&mut m.view_mut(), &ipiv);
        assert!(m.approx_eq(&orig, 0.0));
    }

    #[test]
    fn single_swap() {
        let mut m = Matrix::<f64>::from_fn(3, 2, |i, _| i as f64);
        laswp_forward(&mut m.view_mut(), &[2]);
        assert_eq!(m.row(0), &[2.0, 2.0]);
        assert_eq!(m.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn vector_variant_matches_matrix_variant() {
        let ipiv = vec![1, 3, 2, 3];
        let mut m = Matrix::<f64>::from_fn(5, 1, |i, _| i as f64);
        let mut v: Vec<f64> = (0..5).map(|i| i as f64).collect();
        laswp_forward(&mut m.view_mut(), &ipiv);
        laswp_vec(&mut v, &ipiv);
        for i in 0..5 {
            assert_eq!(m[(i, 0)], v[i]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_pivot_panics() {
        let mut m = Matrix::<f64>::zeros(3, 3);
        laswp_forward(&mut m.view_mut(), &[5]);
    }
}
