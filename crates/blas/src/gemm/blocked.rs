//! Cache-blocked GEMM driver: the rank-k outer-product decomposition of
//! Section III-A.
//!
//! The driver walks `K` in chunks of `kc`, packing the corresponding
//! `A_i` / `B_i` blocks (Fig. 3) and performing one outer product per
//! chunk; inside each outer product it walks `M` in chunks of `mc` and `N`
//! in chunks of `nc` so the working set `Ab + Bb + Cb` fits in the target
//! cache — the paper's inequality
//! `8 bytes · (m·n + m·k + k·n) < 512 KB` for KNC's per-core L2
//! (Section III-A1).

use super::micro::{micro_kernel_into, MicroKernelKind};
use super::pack::{pack_a, pack_b};
use phi_matrix::{MatrixView, MatrixViewMut, Scalar};

/// Cache / register blocking parameters for [`gemm_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    /// `M` block per packing pass (paper example: 120).
    pub mc: usize,
    /// Inner (`K`) block — the paper's `k`, swept in Table II; 300 gives
    /// the best DGEMM efficiency on KNC.
    pub kc: usize,
    /// `N` block (paper example: 32 per core).
    pub nc: usize,
    /// Register-block rows: 30 for Kernel 2, 31 for Kernel 1 (Fig. 2).
    pub mr: usize,
    /// Register-block columns: 8 — one KNC vector register of doubles.
    pub nr: usize,
    /// Microkernel instruction schedule.
    pub kernel: MicroKernelKind,
}

impl Default for BlockSizes {
    /// Host-friendly defaults: an 8×8 register block keeps the accumulator
    /// set within AVX register pressure on commodity x86-64, with blocks
    /// sized for a 256 KB L2.
    fn default() -> Self {
        Self {
            mc: 128,
            kc: 128,
            nc: 512,
            mr: 8,
            nr: 8,
            kernel: MicroKernelKind::Kernel2,
        }
    }
}

impl BlockSizes {
    /// The paper's native Knights Corner configuration: 30×8 register
    /// block (Basic Kernel 2), `k = 300` (best DGEMM efficiency in
    /// Table II), `m = 120` so the `Ab` block occupies the largest
    /// fraction of the 512 KB L2, `n = 32` per core.
    pub fn knc() -> Self {
        Self {
            mc: 120,
            kc: 300,
            nc: 32,
            mr: 30,
            nr: 8,
            kernel: MicroKernelKind::Kernel2,
        }
    }

    /// Kernel 1 variant of [`BlockSizes::knc`] (31×8 block, Fig. 2b).
    pub fn knc_kernel1() -> Self {
        Self {
            mr: 31,
            kernel: MicroKernelKind::Kernel1,
            ..Self::knc()
        }
    }

    /// Working-set footprint in bytes of one `(mc×kc) + (kc×nc) + (mc×nc)`
    /// block triple — the left side of the paper's L2 inequality.
    pub fn footprint_bytes(&self, elem_bytes: usize) -> usize {
        elem_bytes * (self.mc * self.nc + self.mc * self.kc + self.kc * self.nc)
    }

    /// The paper's per-core bandwidth bound for this blocking:
    /// `64·(2/k + 1/n + 1/m)` bytes/cycle (Section III-A1).
    pub fn bandwidth_bytes_per_cycle(&self) -> f64 {
        64.0 * (2.0 / self.kc as f64 + 1.0 / self.nc as f64 + 1.0 / self.mc as f64)
    }

    /// Large-`N` approximation of the bandwidth bound, `64·(2/k + 1/m)`
    /// bytes/cycle — the cost of bringing `Ab` into L2 is amortized and the
    /// `1/n` term drops (Section III-A1).
    pub fn bandwidth_bytes_per_cycle_amortized(&self) -> f64 {
        64.0 * (2.0 / self.kc as f64 + 1.0 / self.mc as f64)
    }
}

/// `C := alpha * A * B + beta * C` with explicit blocking parameters.
///
/// # Panics
/// Panics on shape mismatch.
pub fn gemm_with<T: Scalar>(
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
    bs: &BlockSizes,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm: inner dimensions");
    assert_eq!(c.rows(), m, "gemm: output rows");
    assert_eq!(c.cols(), n, "gemm: output cols");

    if m == 0 || n == 0 {
        return;
    }
    if k == 0 || alpha == T::ZERO {
        // Pure C := beta * C.
        for i in 0..m {
            let row = c.row_mut(i);
            if beta == T::ZERO {
                row.fill(T::ZERO);
            } else if beta != T::ONE {
                for v in row.iter_mut() {
                    *v *= beta;
                }
            }
        }
        return;
    }

    // Outer products over K: C = alpha * Σ_i A_i B_i + beta * C.
    let mut pc = 0;
    while pc < k {
        let kb = bs.kc.min(k - pc);
        // First K-chunk applies the caller's beta, later chunks accumulate.
        let beta_eff = if pc == 0 { beta } else { T::ONE };

        let mut jc = 0;
        while jc < n {
            let nb = bs.nc.min(n - jc);
            let pb = pack_b(&b.sub(pc, jc, kb, nb), bs.nr);

            let mut ic = 0;
            while ic < m {
                let mb = bs.mc.min(m - ic);
                let pa = pack_a(&a.sub(ic, pc, mb, kb), bs.mr);

                // Macrokernel: sweep the register-tile grid.
                for t in 0..pa.tile_count() {
                    let r0 = t * bs.mr;
                    let tr = pa.tile_rows(t);
                    for u in 0..pb.tile_count() {
                        let c0 = u * bs.nr;
                        let tc = pb.tile_cols(u);
                        let mut cwin = c.sub_mut(ic + r0, jc + c0, tr, tc);
                        micro_kernel_into(
                            bs.kernel,
                            bs.mr,
                            bs.nr,
                            kb,
                            pa.tile(t),
                            pb.tile(u),
                            alpha,
                            beta_eff,
                            &mut cwin,
                        );
                    }
                }
                ic += mb;
            }
            jc += nb;
        }
        pc += kb;
    }
}

/// `C := alpha * A * B + beta * C` with default blocking.
pub fn gemm<T: Scalar>(
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
) {
    gemm_with(alpha, a, b, beta, c, &BlockSizes::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knc_blocking_fits_l2() {
        // The paper's example blocking must satisfy the 512 KB inequality.
        let bs = BlockSizes::knc();
        assert!(bs.footprint_bytes(8) < 512 * 1024);
    }

    #[test]
    fn knc_bandwidth_bound_matches_paper() {
        // "choosing m=120, n=32 and k=240, results in 1.1 bytes/cycle" —
        // this quotes the large-N amortized bound.
        let bs = BlockSizes {
            mc: 120,
            nc: 32,
            kc: 240,
            ..BlockSizes::knc()
        };
        let bw = bs.bandwidth_bytes_per_cycle_amortized();
        assert!((bw - 1.1).abs() < 0.05, "got {bw}");
        // The full (unamortized) bound is necessarily larger.
        assert!(bs.bandwidth_bytes_per_cycle() > bw);
        // And it stays well within KNC's 150 GB/s STREAM budget: at 60
        // cores × 1.1 GHz, 1.1 B/cycle/core ≈ 73 GB/s.
        let total_gbs = bw * 60.0 * 1.1e9 / 1e9;
        assert!(total_gbs < 150.0, "got {total_gbs} GB/s");
    }

    #[test]
    fn footprint_grows_with_k_and_spills() {
        // Table II explanation: k = 340/400 pushes blocks out of L2.
        let small = BlockSizes {
            kc: 240,
            ..BlockSizes::knc()
        };
        let large = BlockSizes {
            kc: 400,
            ..BlockSizes::knc()
        };
        assert!(large.footprint_bytes(8) > small.footprint_bytes(8));
    }
}
