//! Packing into the Knights Corner-friendly tile format (paper Fig. 3).
//!
//! Before each rank-k outer product the operands are repacked:
//!
//! * `A_i` (an `M × k` column block) becomes **block row-major** `MR × k`
//!   tiles, each tile stored **column-major** (Fig. 3a, `MR = 30` in the
//!   paper). Column-major tiles give the microkernel contiguous access to
//!   each column of `a` and simplify prefetch address calculation
//!   (Section III-A3).
//! * `B_i` (a `k × N` row block) becomes block row-major `k × NR` tiles,
//!   each stored **row-major** (Fig. 3b, `NR = 8`).
//!
//! Ragged edges are zero-padded so the microkernel always runs at full
//! register-block width; the write-back step masks the padding out.

use phi_matrix::{MatrixView, Scalar};

/// `A` packed as `ceil(M/MR)` tiles of `MR × depth`, each column-major.
#[derive(Clone, Debug)]
pub struct PackedA<T: Scalar> {
    data: Vec<T>,
    mr: usize,
    rows: usize,
    depth: usize,
}

impl<T: Scalar> PackedA<T> {
    /// Register-block height (rows per tile).
    pub fn mr(&self) -> usize {
        self.mr
    }
    /// Original (unpadded) number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Inner (k) dimension.
    pub fn depth(&self) -> usize {
        self.depth
    }
    /// Number of row tiles.
    pub fn tile_count(&self) -> usize {
        self.rows.div_ceil(self.mr)
    }
    /// Tile `t` as a `mr * depth` column-major slice.
    pub fn tile(&self, t: usize) -> &[T] {
        let sz = self.mr * self.depth;
        &self.data[t * sz..(t + 1) * sz]
    }
    /// Rows covered by tile `t` before padding.
    pub fn tile_rows(&self, t: usize) -> usize {
        (self.rows - t * self.mr).min(self.mr)
    }
    /// Total packed footprint in elements (including padding).
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// True when no tiles are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// `B` packed as `ceil(N/NR)` tiles of `depth × NR`, each row-major.
#[derive(Clone, Debug)]
pub struct PackedB<T: Scalar> {
    data: Vec<T>,
    nr: usize,
    cols: usize,
    depth: usize,
}

impl<T: Scalar> PackedB<T> {
    /// Register-block width (columns per tile).
    pub fn nr(&self) -> usize {
        self.nr
    }
    /// Original (unpadded) number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Inner (k) dimension.
    pub fn depth(&self) -> usize {
        self.depth
    }
    /// Number of column tiles.
    pub fn tile_count(&self) -> usize {
        self.cols.div_ceil(self.nr)
    }
    /// Tile `u` as a `depth * nr` row-major slice.
    pub fn tile(&self, u: usize) -> &[T] {
        let sz = self.depth * self.nr;
        &self.data[u * sz..(u + 1) * sz]
    }
    /// Columns covered by tile `u` before padding.
    pub fn tile_cols(&self, u: usize) -> usize {
        (self.cols - u * self.nr).min(self.nr)
    }
    /// Total packed footprint in elements (including padding).
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// True when no tiles are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Packs `a` (an `M × k` window) into `MR × k` column-major tiles.
pub fn pack_a<T: Scalar>(a: &MatrixView<'_, T>, mr: usize) -> PackedA<T> {
    assert!(mr > 0);
    let (rows, depth) = (a.rows(), a.cols());
    let tiles = rows.div_ceil(mr);
    let mut data = vec![T::ZERO; tiles * mr * depth];
    for t in 0..tiles {
        let r0 = t * mr;
        let live = (rows - r0).min(mr);
        let tile = &mut data[t * mr * depth..(t + 1) * mr * depth];
        for p in 0..depth {
            // Column p of the tile is contiguous: offsets p*mr .. p*mr+mr.
            for r in 0..live {
                tile[p * mr + r] = a.at(r0 + r, p);
            }
        }
    }
    PackedA {
        data,
        mr,
        rows,
        depth,
    }
}

/// Packs `b` (a `k × N` window) into `k × NR` row-major tiles.
pub fn pack_b<T: Scalar>(b: &MatrixView<'_, T>, nr: usize) -> PackedB<T> {
    assert!(nr > 0);
    let (depth, cols) = (b.rows(), b.cols());
    let tiles = cols.div_ceil(nr);
    let mut data = vec![T::ZERO; tiles * depth * nr];
    for u in 0..tiles {
        let c0 = u * nr;
        let live = (cols - c0).min(nr);
        let tile = &mut data[u * depth * nr..(u + 1) * depth * nr];
        for p in 0..depth {
            let src = b.row(p);
            // Row p of the tile is contiguous: offsets p*nr .. p*nr+nr.
            tile[p * nr..p * nr + live].copy_from_slice(&src[c0..c0 + live]);
        }
    }
    PackedB {
        data,
        nr,
        cols,
        depth,
    }
}

/// Number of elements moved when packing an `m × k` A-block and a `k × n`
/// B-block — the traffic term of the paper's packing-overhead analysis
/// (quadratic, amortized by the cubic compute).
pub fn pack_traffic_elems(m: usize, n: usize, k: usize) -> usize {
    m * k + k * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::{MatGen, Matrix};

    #[test]
    fn pack_a_layout_exact_tiles() {
        // 4 rows, mr = 2 → two tiles; check column-major order inside tiles.
        let a = Matrix::<f64>::from_fn(4, 3, |i, j| (10 * i + j) as f64);
        let p = pack_a(&a.view(), 2);
        assert_eq!(p.tile_count(), 2);
        // Tile 0, column 0 = a[0,0], a[1,0]; column 1 = a[0,1], a[1,1]...
        assert_eq!(p.tile(0), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(p.tile(1), &[20.0, 30.0, 21.0, 31.0, 22.0, 32.0]);
    }

    #[test]
    fn pack_a_zero_pads_ragged_edge() {
        let a = Matrix::<f64>::from_fn(5, 2, |i, j| (i + j) as f64 + 1.0);
        let p = pack_a(&a.view(), 4);
        assert_eq!(p.tile_count(), 2);
        assert_eq!(p.tile_rows(1), 1);
        // Second tile has only one live row; rows 1..4 are zero.
        let t = p.tile(1);
        assert_eq!(t[0], 5.0); // a[4,0]
        assert_eq!(&t[1..4], &[0.0, 0.0, 0.0]);
        assert_eq!(t[4], 6.0); // a[4,1]
        assert_eq!(&t[5..8], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn pack_b_layout() {
        // 2 rows (k), 5 cols, nr = 4 → two tiles (second ragged).
        let b = Matrix::<f64>::from_fn(2, 5, |i, j| (10 * i + j) as f64);
        let p = pack_b(&b.view(), 4);
        assert_eq!(p.tile_count(), 2);
        assert_eq!(p.tile(0), &[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]);
        assert_eq!(p.tile_cols(1), 1);
        assert_eq!(p.tile(1), &[4.0, 0.0, 0.0, 0.0, 14.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn packing_round_trips() {
        // Reconstruct A and B from tiles and compare to the originals.
        let a = MatGen::new(1).matrix::<f64>(31, 13);
        let pa = pack_a(&a.view(), 30);
        for t in 0..pa.tile_count() {
            for p in 0..pa.depth() {
                for r in 0..pa.tile_rows(t) {
                    assert_eq!(pa.tile(t)[p * 30 + r], a[(t * 30 + r, p)]);
                }
            }
        }
        let b = MatGen::new(2).matrix::<f64>(13, 19);
        let pb = pack_b(&b.view(), 8);
        for u in 0..pb.tile_count() {
            for p in 0..pb.depth() {
                for c in 0..pb.tile_cols(u) {
                    assert_eq!(pb.tile(u)[p * 8 + c], b[(p, u * 8 + c)]);
                }
            }
        }
    }

    #[test]
    fn traffic_formula() {
        assert_eq!(pack_traffic_elems(120, 32, 240), 120 * 240 + 240 * 32);
    }
}
