//! Register-blocked microkernels mirroring Fig. 2 of the paper.
//!
//! Each call multiplies one packed `MR × depth` tile of `A` (column-major)
//! by one packed `depth × NR` tile of `B` (row-major), accumulating into an
//! `MR × NR` block of "registers" — on Knights Corner these are the vector
//! registers `v0..v30`; here they are a stack array the compiler keeps in
//! SIMD registers for small `MR`.
//!
//! Two variants are provided, matching the paper's Basic Kernel 1 (Fig. 2b)
//! and Basic Kernel 2 (Fig. 2c):
//!
//! * **Kernel 1** broadcasts every element of the current `a` column
//!   straight from memory (the `1to8` broadcast). 31 of 32 vector
//!   instructions per iteration are multiply-adds → 96.9% theoretical
//!   efficiency, but every instruction touches the L1 read port, so
//!   prefetch fills stall the core (Section II, Fig. 1c).
//! * **Kernel 2** first load-broadcasts the leading four elements of the
//!   column into a register (`4to8` broadcast) and *swizzles* them out for
//!   the first four multiply-adds. Those four instructions do not touch
//!   memory, opening "holes" for the two prefetch fills each iteration
//!   needs → 93.7% theoretical efficiency but no port-conflict stalls.
//!
//! Numerically the two variants are identical (asserted by tests); the
//! *timing* difference is modeled by the cycle-accurate emulator in
//! `phi-knc`, which executes the same two instruction schedules.

use phi_matrix::{MatrixViewMut, Scalar};

/// Selects the instruction schedule of the microkernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MicroKernelKind {
    /// Fig. 2b: all `a` elements broadcast from memory; 31 FMAs / 32 ops.
    Kernel1,
    /// Fig. 2c: leading 4 `a` elements register-swizzled; 30 FMAs / 32 ops
    /// but leaves L1 ports free for prefetch fills. The paper's production
    /// choice, hence the default.
    #[default]
    Kernel2,
}

/// Monomorphic inner loop for a fixed register block.
fn run<T: Scalar, const MR: usize, const NR: usize>(
    kind: MicroKernelKind,
    depth: usize,
    a_tile: &[T],
    b_tile: &[T],
    alpha: T,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
) {
    debug_assert!(a_tile.len() >= depth * MR);
    debug_assert!(b_tile.len() >= depth * NR);
    let mut acc = [[T::ZERO; NR]; MR];

    match kind {
        MicroKernelKind::Kernel1 => {
            for p in 0..depth {
                // Load the 8-wide row of b into "v31".
                let brow: &[T] = &b_tile[p * NR..p * NR + NR];
                let acol: &[T] = &a_tile[p * MR..p * MR + MR];
                for i in 0..MR {
                    // 1to8 memory broadcast of a[i].
                    let aip = acol[i];
                    for j in 0..NR {
                        acc[i][j] = aip.mul_add(brow[j], acc[i][j]);
                    }
                }
            }
        }
        MicroKernelKind::Kernel2 => {
            for p in 0..depth {
                let brow: &[T] = &b_tile[p * NR..p * NR + NR];
                let acol: &[T] = &a_tile[p * MR..p * MR + MR];
                // 4to8 broadcast: pull the first four elements of the a
                // column into "v30" with a single memory access...
                let head = if MR >= 4 { 4 } else { MR };
                let mut v30 = [T::ZERO; 4];
                v30[..head].copy_from_slice(&acol[..head]);
                // ...then SWIZZLE them out of the register (no memory
                // traffic for these four FMAs).
                for i in 0..head {
                    let aip = v30[i];
                    for j in 0..NR {
                        acc[i][j] = aip.mul_add(brow[j], acc[i][j]);
                    }
                }
                for i in head..MR {
                    let aip = acol[i];
                    for j in 0..NR {
                        acc[i][j] = aip.mul_add(brow[j], acc[i][j]);
                    }
                }
            }
        }
    }

    // Update C with the register block: c := alpha*acc + beta*c, masking
    // out tile padding via the window's true shape.
    let live_r = c.rows().min(MR);
    let live_c = c.cols().min(NR);
    for (i, acc_row) in acc.iter().enumerate().take(live_r) {
        let row = c.row_mut(i);
        if beta == T::ZERO {
            for j in 0..live_c {
                row[j] = alpha * acc_row[j];
            }
        } else if beta == T::ONE {
            for j in 0..live_c {
                row[j] = alpha.mul_add(acc_row[j], row[j]);
            }
        } else {
            for j in 0..live_c {
                row[j] = alpha * acc_row[j] + beta * row[j];
            }
        }
    }
}

/// Fully dynamic fallback for register blocks without a monomorphized
/// instantiation.
#[allow(clippy::too_many_arguments)]
fn run_dyn<T: Scalar>(
    mr: usize,
    nr: usize,
    depth: usize,
    a_tile: &[T],
    b_tile: &[T],
    alpha: T,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
) {
    let live_r = c.rows().min(mr);
    let live_c = c.cols().min(nr);
    for i in 0..live_r {
        for j in 0..live_c {
            let mut acc = T::ZERO;
            for p in 0..depth {
                acc = a_tile[p * mr + i].mul_add(b_tile[p * nr + j], acc);
            }
            let out = c.at_mut(i, j);
            *out = if beta == T::ZERO {
                alpha * acc
            } else {
                alpha * acc + beta * *out
            };
        }
    }
}

/// Runs the microkernel for one `(mr × depth) · (depth × nr)` tile product,
/// updating the `c` window (`c := alpha * a_tile * b_tile + beta * c`).
///
/// `c` may be smaller than `mr × nr` at ragged edges; the padded part of
/// the accumulators is discarded. Dispatches to monomorphized loops for the
/// register blocks used in this workspace: the paper's native KNC shapes
/// (31×8 for Kernel 1's natural block, 30×8 for Kernel 2's) and
/// host-friendly shapes.
#[allow(clippy::too_many_arguments)]
pub fn micro_kernel_into<T: Scalar>(
    kind: MicroKernelKind,
    mr: usize,
    nr: usize,
    depth: usize,
    a_tile: &[T],
    b_tile: &[T],
    alpha: T,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
) {
    match (mr, nr) {
        (4, 4) => run::<T, 4, 4>(kind, depth, a_tile, b_tile, alpha, beta, c),
        (8, 8) => run::<T, 8, 8>(kind, depth, a_tile, b_tile, alpha, beta, c),
        (16, 8) => run::<T, 16, 8>(kind, depth, a_tile, b_tile, alpha, beta, c),
        (30, 8) => run::<T, 30, 8>(kind, depth, a_tile, b_tile, alpha, beta, c),
        (31, 8) => run::<T, 31, 8>(kind, depth, a_tile, b_tile, alpha, beta, c),
        _ => run_dyn(mr, nr, depth, a_tile, b_tile, alpha, beta, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::pack::{pack_a, pack_b};
    use phi_matrix::{MatGen, Matrix};

    /// Compares one tile product against a naive computation, for a given
    /// block shape and edge configuration.
    fn check_tile(mr: usize, nr: usize, rows: usize, cols: usize, depth: usize) {
        let a = MatGen::new(10).matrix::<f64>(rows, depth);
        let b = MatGen::new(11).matrix::<f64>(depth, cols);
        let pa = pack_a(&a.view(), mr);
        let pb = pack_b(&b.view(), nr);

        for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
            let mut c = Matrix::<f64>::zeros(rows, cols);
            micro_kernel_into(
                kind,
                mr,
                nr,
                depth,
                pa.tile(0),
                pb.tile(0),
                1.0,
                0.0,
                &mut c.view_mut(),
            );
            for i in 0..rows {
                for j in 0..cols {
                    let expect: f64 = (0..depth).map(|p| a[(i, p)] * b[(p, j)]).sum();
                    assert!(
                        (c[(i, j)] - expect).abs() < 1e-12,
                        "{kind:?} ({mr},{nr}) at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn full_tiles_all_shapes() {
        check_tile(4, 4, 4, 4, 9);
        check_tile(8, 8, 8, 8, 17);
        check_tile(16, 8, 16, 8, 5);
        check_tile(30, 8, 30, 8, 12);
        check_tile(31, 8, 31, 8, 12);
    }

    #[test]
    fn ragged_edges_masked() {
        check_tile(30, 8, 7, 3, 10); // partial in both dims
        check_tile(8, 8, 8, 1, 4);
        check_tile(4, 4, 1, 4, 4);
    }

    #[test]
    fn dynamic_fallback_shape() {
        check_tile(5, 3, 5, 3, 7);
        check_tile(5, 3, 2, 2, 7);
    }

    #[test]
    fn alpha_beta_combination() {
        let depth = 6;
        let a = MatGen::new(1).matrix::<f64>(8, depth);
        let b = MatGen::new(2).matrix::<f64>(depth, 8);
        let pa = pack_a(&a.view(), 8);
        let pb = pack_b(&b.view(), 8);
        let mut c = MatGen::new(3).matrix::<f64>(8, 8);
        let c0 = c.clone();
        micro_kernel_into(
            MicroKernelKind::Kernel2,
            8,
            8,
            depth,
            pa.tile(0),
            pb.tile(0),
            2.0,
            -1.0,
            &mut c.view_mut(),
        );
        for i in 0..8 {
            for j in 0..8 {
                let prod: f64 = (0..depth).map(|p| a[(i, p)] * b[(p, j)]).sum();
                let expect = 2.0 * prod - c0[(i, j)];
                assert!((c[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_depth_only_applies_beta() {
        let pa: Vec<f64> = vec![];
        let pb: Vec<f64> = vec![];
        let mut c = Matrix::<f64>::from_rows(&[&[2.0, 4.0]]);
        micro_kernel_into(
            MicroKernelKind::Kernel1,
            1,
            2,
            0,
            &pa,
            &pb,
            1.0,
            0.5,
            &mut c.view_mut(),
        );
        assert_eq!(c.row(0), &[1.0, 2.0]);
    }
}
