//! Reference GEMM: the textbook triple loop.
//!
//! This is the oracle every optimized path is validated against. It is
//! also used directly by small problems where packing overhead dominates
//! (the paper's Fig. 4 shows packing costing 15% at N = 1K).

use phi_matrix::{MatrixView, MatrixViewMut, Scalar};

/// `C := alpha * A * B + beta * C`, all row-major.
///
/// # Panics
/// Panics on inner-dimension or output-shape mismatch.
pub fn gemm_naive<T: Scalar>(
    alpha: T,
    a: &MatrixView<'_, T>,
    b: &MatrixView<'_, T>,
    beta: T,
    c: &mut MatrixViewMut<'_, T>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "gemm: inner dimensions");
    assert_eq!(c.rows(), m, "gemm: output rows");
    assert_eq!(c.cols(), n, "gemm: output cols");

    for i in 0..m {
        // Scale the output row first, then accumulate ikj-order so the
        // inner loop streams both B's row and C's row.
        let crow = c.row_mut(i);
        if beta == T::ZERO {
            crow.fill(T::ZERO);
        } else if beta != T::ONE {
            for v in crow.iter_mut() {
                *v *= beta;
            }
        }
        for p in 0..k {
            let aip = alpha * a.at(i, p);
            if aip == T::ZERO {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = bv.mul_add(aip, *cv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::Matrix;

    #[test]
    fn two_by_two() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::<f64>::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_naive(1.0, &a.view(), &b.view(), 0.0, &mut c.view_mut());
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn beta_scaling_without_product() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(3, 2);
        let mut c = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        gemm_naive(1.0, &a.view(), &b.view(), -2.0, &mut c.view_mut());
        assert_eq!(c.row(0), &[-2.0, -4.0]);
    }

    #[test]
    fn identity_times_matrix() {
        let id = Matrix::<f64>::identity(4);
        let b = phi_matrix::MatGen::new(1).matrix::<f64>(4, 6);
        let mut c = Matrix::<f64>::zeros(4, 6);
        gemm_naive(1.0, &id.view(), &b.view(), 0.0, &mut c.view_mut());
        assert!(c.approx_eq(&b, 0.0));
    }
}
