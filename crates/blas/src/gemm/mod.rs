//! General matrix-matrix multiplication, structured as in Section III of
//! the paper.
//!
//! The public entry point [`gemm`] computes `C := alpha * A * B + beta * C`
//! for row-major operands by decomposing the product into a sequence of
//! **rank-k outer products** `C = alpha * Σ_i A_i B_i + beta * C`, packing
//! each `A_i` into `MR × k` column-major tiles and each `B_i` into `k × NR`
//! row-major tiles (the *Knights Corner-friendly* format of Fig. 3), and
//! driving a register-blocked [`micro`] kernel over the tile grid.
//!
//! The tile shape is configurable through [`BlockSizes`]; the paper's
//! native configuration (`MR = 30`, `NR = 8`, `k = 300`) is available as
//! [`BlockSizes::knc`], and a host-friendly shape as the default. The same
//! code instantiates DGEMM (`f64`) and SGEMM (`f32`).

pub mod blocked;
pub mod micro;
pub mod naive;
pub mod pack;

pub use blocked::{gemm, gemm_with, BlockSizes};
pub use micro::{micro_kernel_into, MicroKernelKind};
pub use naive::gemm_naive;
pub use pack::{pack_a, pack_b, PackedA, PackedB};

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::{MatGen, Matrix};

    /// Runs both paths on a random problem and compares elementwise.
    fn check(m: usize, n: usize, k: usize, alpha: f64, beta: f64, bs: &BlockSizes) {
        let a = MatGen::new(1).matrix::<f64>(m, k);
        let b = MatGen::new(2).matrix::<f64>(k, n);
        let mut c = MatGen::new(3).matrix::<f64>(m, n);
        let mut c_ref = c.clone();

        gemm_with(alpha, &a.view(), &b.view(), beta, &mut c.view_mut(), bs);
        gemm_naive(alpha, &a.view(), &b.view(), beta, &mut c_ref.view_mut());

        let diff = c.max_abs_diff(&c_ref);
        let tol = 1e-12 * (k as f64).max(1.0);
        assert!(
            diff <= tol,
            "gemm mismatch m={m} n={n} k={k} alpha={alpha} beta={beta}: {diff}"
        );
    }

    #[test]
    fn matches_naive_on_square() {
        check(32, 32, 32, 1.0, 0.0, &BlockSizes::default());
    }

    #[test]
    fn matches_naive_with_alpha_beta() {
        check(24, 17, 33, -0.5, 2.0, &BlockSizes::default());
    }

    #[test]
    fn matches_naive_knc_tile_shape() {
        // MR = 30, NR = 8 — the paper's native shape; sizes chosen to hit
        // full and partial tiles in both dimensions.
        check(61, 19, 37, 1.0, 1.0, &BlockSizes::knc());
    }

    #[test]
    fn matches_naive_when_blocks_smaller_than_problem() {
        let bs = BlockSizes {
            mc: 16,
            kc: 8,
            nc: 16,
            ..BlockSizes::default()
        };
        check(40, 40, 40, 1.0, 1.0, &bs);
        check(40, 40, 40, 2.0, 0.0, &bs);
    }

    #[test]
    fn degenerate_shapes() {
        check(0, 5, 5, 1.0, 1.0, &BlockSizes::default());
        check(5, 0, 5, 1.0, 1.0, &BlockSizes::default());
        // k = 0 must reduce to C := beta * C.
        let a = Matrix::<f64>::zeros(4, 0);
        let b = Matrix::<f64>::zeros(0, 4);
        let mut c = MatGen::new(9).matrix::<f64>(4, 4);
        let expect = Matrix::from_fn(4, 4, |i, j| 3.0 * c[(i, j)]);
        gemm(1.0, &a.view(), &b.view(), 3.0, &mut c.view_mut());
        assert!(c.approx_eq(&expect, 0.0));
    }

    #[test]
    fn sgemm_instantiation_matches_naive() {
        let a = MatGen::new(4).matrix::<f32>(20, 14);
        let b = MatGen::new(5).matrix::<f32>(14, 11);
        let mut c = MatGen::new(6).matrix::<f32>(20, 11);
        let mut c_ref = c.clone();
        gemm(1.5, &a.view(), &b.view(), -1.0, &mut c.view_mut());
        gemm_naive(1.5, &a.view(), &b.view(), -1.0, &mut c_ref.view_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn kernel1_and_kernel2_agree() {
        let a = MatGen::new(7).matrix::<f64>(45, 23);
        let b = MatGen::new(8).matrix::<f64>(23, 18);
        let mut c1 = Matrix::<f64>::zeros(45, 18);
        let mut c2 = Matrix::<f64>::zeros(45, 18);
        let mut bs = BlockSizes::knc();
        bs.kernel = MicroKernelKind::Kernel1;
        gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut c1.view_mut(), &bs);
        bs.kernel = MicroKernelKind::Kernel2;
        gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut c2.view_mut(), &bs);
        assert!(c1.approx_eq(&c2, 0.0), "kernels must be bit-identical");
    }
}
