//! Level-2 BLAS: matrix-vector operations.
//!
//! `ger` is the workhorse of unblocked panel factorization: each
//! elimination step applies a rank-1 update to the remaining panel.
//! `gemv`/`trsv` support the solve path and the reference checks.

use phi_matrix::{MatrixView, MatrixViewMut, Scalar};

/// Rank-1 update `A := A + alpha * x yᵀ` (BLAS `xGER`).
///
/// # Panics
/// Panics when `x.len() != A.rows()` or `y.len() != A.cols()`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut MatrixViewMut<'_, T>) {
    assert_eq!(x.len(), a.rows(), "ger: x length");
    assert_eq!(y.len(), a.cols(), "ger: y length");
    for (i, &xi) in x.iter().enumerate() {
        let coeff = alpha * xi;
        let row = a.row_mut(i);
        for (aij, &yj) in row.iter_mut().zip(y) {
            *aij = yj.mul_add(coeff, *aij);
        }
    }
}

/// Matrix-vector product `y := alpha * A x + beta * y` (BLAS `xGEMV`,
/// no-transpose).
pub fn gemv<T: Scalar>(alpha: T, a: &MatrixView<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    assert_eq!(x.len(), a.cols(), "gemv: x length");
    assert_eq!(y.len(), a.rows(), "gemv: y length");
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        for (aij, &xj) in a.row(i).iter().zip(x) {
            acc = aij.mul_add(xj, acc);
        }
        *yi = alpha * acc + beta * *yi;
    }
}

/// Solves `L x = b` in place where `L` is lower triangular; `unit` selects
/// an implicit unit diagonal (BLAS `xTRSV`, lower/no-trans).
pub fn trsv_lower<T: Scalar>(l: &MatrixView<'_, T>, x: &mut [T], unit: bool) {
    let n = l.rows();
    assert_eq!(l.cols(), n, "trsv: square");
    assert_eq!(x.len(), n, "trsv: x length");
    for i in 0..n {
        let mut acc = x[i];
        for (j, &xj) in x.iter().enumerate().take(i) {
            acc -= l.at(i, j) * xj;
        }
        x[i] = if unit { acc } else { acc / l.at(i, i) };
    }
}

/// Solves `U x = b` in place where `U` is upper triangular with explicit
/// diagonal (BLAS `xTRSV`, upper/no-trans).
pub fn trsv_upper<T: Scalar>(u: &MatrixView<'_, T>, x: &mut [T]) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "trsv: square");
    assert_eq!(x.len(), n, "trsv: x length");
    for i in (0..n).rev() {
        let mut acc = x[i];
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            acc -= u.at(i, j) * xj;
        }
        x[i] = acc / u.at(i, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::Matrix;

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::<f64>::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0, 5.0], &mut a.view_mut());
        assert_eq!(a.row(0), &[6.0, 8.0, 10.0]);
        assert_eq!(a.row(1), &[12.0, 16.0, 20.0]);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut y = vec![1.0, 1.0];
        gemv(2.0, &a.view(), &[1.0, 1.0], 0.5, &mut y);
        // 2*A*[1,1] + 0.5*[1,1] = [6.5, 14.5]
        assert_eq!(y, vec![6.5, 14.5]);
    }

    #[test]
    fn trsv_lower_unit_and_nonunit() {
        let l = Matrix::<f64>::from_rows(&[&[2.0, 0.0], &[3.0, 4.0]]);
        let mut x = vec![2.0, 11.0];
        trsv_lower(&l.view(), &mut x, false);
        assert_eq!(x, vec![1.0, 2.0]);

        let mut xu = vec![5.0, 17.0];
        trsv_lower(&l.view(), &mut xu, true); // diagonal treated as 1
        assert_eq!(xu, vec![5.0, 2.0]);
    }

    #[test]
    fn trsv_upper_solves() {
        let u = Matrix::<f64>::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let mut x = vec![4.0, 8.0];
        trsv_upper(&u.view(), &mut x);
        assert_eq!(x, vec![1.0, 2.0]);
    }
}
