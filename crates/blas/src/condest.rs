//! 1-norm condition estimation (LAPACK `xGECON` style).
//!
//! Mixed-precision refinement (and HPL's own sanity checks) depend on the
//! system being far from singular: refinement converges only when
//! κ(A)·ε_f32 ≪ 1. Hager's algorithm estimates `‖A⁻¹‖₁` from a handful
//! of solves with `A` and `Aᵀ` — no inverse is ever formed — and
//! `κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁`.

use crate::lu::LuFactors;
use phi_matrix::norms::mat_norm_one;
use phi_matrix::{Matrix, Scalar};

/// Solves `Aᵀ x = b` using the factors of `A`:
/// `Aᵀ = (P·L·U)ᵀ = Uᵀ·Lᵀ·Pᵀ...` — i.e. forward-solve with `Uᵀ` (lower,
/// non-unit), back-solve with `Lᵀ` (upper, unit), then undo the row
/// permutation.
pub fn solve_transposed<T: Scalar>(f: &LuFactors<T>, b: &[T]) -> Vec<T> {
    let n = f.lu.rows();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    // Uᵀ y = b: Uᵀ is lower triangular with U's diagonal.
    for i in 0..n {
        let mut acc = x[i];
        for (p, &xp) in x.iter().enumerate().take(i) {
            acc -= f.lu[(p, i)] * xp; // Uᵀ[i,p] = U[p,i]
        }
        x[i] = acc / f.lu[(i, i)];
    }
    // Lᵀ z = y: Lᵀ is unit upper triangular.
    for i in (0..n).rev() {
        let mut acc = x[i];
        for (p, &xp) in x.iter().enumerate().skip(i + 1) {
            acc -= f.lu[(p, i)] * xp; // Lᵀ[i,p] = L[p,i]
        }
        x[i] = acc;
    }
    // x := Pᵀ z — undo the forward swaps in reverse order.
    for (i, &piv) in f.ipiv.iter().enumerate().rev() {
        x.swap(i, piv);
    }
    x
}

/// Hager's estimator for `‖A⁻¹‖₁` given the LU factors of `A`.
///
/// Converges in a few iterations; `max_iter` bounds it (LAPACK uses 5).
pub fn inverse_norm1_estimate<T: Scalar>(f: &LuFactors<T>, max_iter: usize) -> f64 {
    let n = f.lu.rows();
    if n == 0 {
        return 0.0;
    }
    // x = (1/n, ..., 1/n)
    let mut x: Vec<T> = vec![T::from_f64(1.0 / n as f64); n];
    let mut best = 0.0f64;
    for _ in 0..max_iter.max(1) {
        // y = A⁻¹ x
        let y = f.solve(&x);
        let norm: f64 = y.iter().map(|v| v.to_f64().abs()).sum();
        best = best.max(norm);
        // xi = sign(y)
        let xi: Vec<T> = y
            .iter()
            .map(|v| if v.to_f64() >= 0.0 { T::ONE } else { -T::ONE })
            .collect();
        // z = A⁻ᵀ xi
        let z = solve_transposed(f, &xi);
        // Pick the most promising unit vector e_j.
        let (j, zmax) = z
            .iter()
            .enumerate()
            .map(|(j, v)| (j, v.to_f64().abs()))
            .fold((0, 0.0), |a, b| if b.1 > a.1 { b } else { a });
        let zx: f64 = z
            .iter()
            .zip(&x)
            .map(|(zi, xi)| zi.to_f64() * xi.to_f64())
            .sum();
        if zmax <= zx {
            break; // converged
        }
        x = (0..n)
            .map(|i| if i == j { T::ONE } else { T::ZERO })
            .collect();
    }
    best
}

/// Estimates `κ₁(A) = ‖A‖₁·‖A⁻¹‖₁` from the original matrix and its
/// factors.
pub fn condest_1<T: Scalar>(a: &Matrix<T>, f: &LuFactors<T>) -> f64 {
    mat_norm_one(&a.view()) * inverse_norm1_estimate(f, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::BlockSizes;
    use crate::lu::getrf;
    use phi_matrix::MatGen;

    fn factor(a: &Matrix<f64>) -> LuFactors<f64> {
        let mut lu = a.clone();
        let ipiv = getrf(&mut lu.view_mut(), 8, &BlockSizes::default()).unwrap();
        LuFactors { lu, ipiv }
    }

    /// Exact κ₁ by explicitly inverting column by column.
    fn exact_cond1(a: &Matrix<f64>, f: &LuFactors<f64>) -> f64 {
        let n = a.rows();
        let mut inv_norm: f64 = 0.0;
        for j in 0..n {
            let e: Vec<f64> = (0..n).map(|i| if i == j { 1.0 } else { 0.0 }).collect();
            let col = f.solve(&e);
            let sum: f64 = col.iter().map(|v| v.abs()).sum();
            inv_norm = inv_norm.max(sum);
        }
        mat_norm_one(&a.view()) * inv_norm
    }

    #[test]
    fn transposed_solve_is_correct() {
        let n = 24;
        let a = MatGen::new(3).matrix::<f64>(n, n);
        let f = factor(&a);
        let b = MatGen::new(4).rhs::<f64>(n);
        let x = solve_transposed(&f, &b);
        // Check Aᵀ x = b directly.
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += a[(j, i)] * xj;
            }
            assert!((acc - b[i]).abs() < 1e-9, "row {i}: {acc} vs {}", b[i]);
        }
    }

    #[test]
    fn identity_has_condition_one() {
        let a = Matrix::<f64>::identity(16);
        let f = factor(&a);
        let k = condest_1(&a, &f);
        assert!((k - 1.0).abs() < 1e-12, "{k}");
    }

    #[test]
    fn estimate_within_factor_of_exact() {
        // Hager's estimate is a lower bound within a small factor of the
        // true norm in practice; LAPACK documents it as "almost always
        // within a factor of 10".
        for seed in [1u64, 7, 23] {
            let a = MatGen::new(seed).matrix::<f64>(32, 32);
            let f = factor(&a);
            let est = condest_1(&a, &f);
            let exact = exact_cond1(&a, &f);
            assert!(
                est <= exact * 1.0001,
                "estimate exceeds exact: {est} vs {exact}"
            );
            assert!(est >= exact / 10.0, "estimate too low: {est} vs {exact}");
        }
    }

    #[test]
    fn detects_near_singularity() {
        // A matrix with a tiny singular direction: last column nearly a
        // copy of the first.
        let n = 20;
        let mut a = MatGen::new(9).matrix::<f64>(n, n);
        for i in 0..n {
            let v = a[(i, 0)];
            a[(i, n - 1)] = v + 1e-10 * a[(i, n - 1)];
        }
        let f = factor(&a);
        let healthy = MatGen::new(9).matrix::<f64>(n, n);
        let fh = factor(&healthy);
        let k_bad = condest_1(&a, &f);
        let k_ok = condest_1(&healthy, &fh);
        assert!(
            k_bad > 1e6 * k_ok,
            "near-singularity must inflate the estimate: {k_bad:.3e} vs {k_ok:.3e}"
        );
    }
}
