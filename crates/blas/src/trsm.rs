//! Triangular solves with multiple right-hand sides (`xTRSM`).
//!
//! HPL needs two of the eight TRSM cases:
//!
//! * **Left / Lower / Unit** — after panel factorization, the row panel
//!   `U_i` is obtained with a forward solve against the unit-lower factor
//!   of the panel ("a portion of row panel of U is updated using a forward
//!   solver", Section IV). This is the DTRSM the hybrid schemes keep on the
//!   host and pipeline with the `U` broadcast (Fig. 8c).
//! * **Left / Upper / Non-unit** — blocked back-substitution after the
//!   factorization completes.
//!
//! A right-sided case is included for the transposed formulations used in
//! tests. Blocked variants recast most of the work as GEMM, the same
//! trick HPL's update uses.

use crate::gemm::{gemm_with, BlockSizes};
use phi_matrix::{MatrixView, MatrixViewMut, Scalar};

/// Solves `L X = B` in place (`B := L⁻¹ B`), `L` unit lower triangular.
///
/// # Panics
/// Panics unless `L` is square with `L.rows() == B.rows()`.
pub fn trsm_left_lower_unit<T: Scalar>(l: &MatrixView<'_, T>, b: &mut MatrixViewMut<'_, T>) {
    let m = l.rows();
    assert_eq!(l.cols(), m, "trsm: L must be square");
    assert_eq!(b.rows(), m, "trsm: B rows");
    for i in 1..m {
        for p in 0..i {
            let lip = l.at(i, p);
            if lip == T::ZERO {
                continue;
            }
            // b[i, :] -= l[i, p] * b[p, :], split to satisfy the borrow
            // checker: rows p and i are disjoint.
            let (top, mut bottom) = b.reborrow().split_rows_mut(i);
            let src = top.row(p);
            let dst = bottom.row_mut(0);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s.mul_add(-lip, *d);
            }
        }
    }
}

/// Solves `U X = B` in place (`B := U⁻¹ B`), `U` upper triangular with
/// explicit diagonal.
///
/// # Panics
/// Panics unless `U` is square with `U.rows() == B.rows()`, or when a
/// diagonal entry is exactly zero.
pub fn trsm_left_upper<T: Scalar>(u: &MatrixView<'_, T>, b: &mut MatrixViewMut<'_, T>) {
    let m = u.rows();
    assert_eq!(u.cols(), m, "trsm: U must be square");
    assert_eq!(b.rows(), m, "trsm: B rows");
    for i in (0..m).rev() {
        for p in i + 1..m {
            let uip = u.at(i, p);
            if uip == T::ZERO {
                continue;
            }
            let (mut top, bottom) = b.reborrow().split_rows_mut(p);
            let src = bottom.row(0);
            let dst = top.row_mut(i);
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = s.mul_add(-uip, *d);
            }
        }
        let diag = u.at(i, i);
        assert!(diag != T::ZERO, "trsm: zero diagonal at {i}");
        let inv = T::ONE / diag;
        for v in b.row_mut(i) {
            *v *= inv;
        }
    }
}

/// Solves `X U = B` in place (`B := B U⁻¹`), `U` upper triangular with
/// explicit diagonal.
pub fn trsm_right_upper<T: Scalar>(u: &MatrixView<'_, T>, b: &mut MatrixViewMut<'_, T>) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "trsm: U must be square");
    assert_eq!(b.cols(), n, "trsm: B cols");
    for i in 0..b.rows() {
        let row = b.row_mut(i);
        for j in 0..n {
            let mut acc = row[j];
            for (p, &rp) in row.iter().enumerate().take(j) {
                acc -= rp * u.at(p, j);
            }
            let diag = u.at(j, j);
            assert!(diag != T::ZERO, "trsm: zero diagonal at {j}");
            row[j] = acc / diag;
        }
    }
}

/// Blocked Left/Lower/Unit solve: partitions `L` into `nb × nb` diagonal
/// blocks, solving each with the unblocked kernel and eliminating the rest
/// with GEMM — the formulation that lets the trailing work run on the
/// fast GEMM path.
pub fn trsm_left_lower_unit_blocked<T: Scalar>(
    l: &MatrixView<'_, T>,
    b: &mut MatrixViewMut<'_, T>,
    nb: usize,
    bs: &BlockSizes,
) {
    let m = l.rows();
    assert_eq!(l.cols(), m, "trsm: L must be square");
    assert_eq!(b.rows(), m, "trsm: B rows");
    assert!(nb > 0);
    let ncols = b.cols();
    let mut j = 0;
    while j < m {
        let jb = nb.min(m - j);
        // Solve the diagonal block.
        let ljj = l.sub(j, j, jb, jb);
        {
            let mut bj = b.sub_mut(j, 0, jb, ncols);
            trsm_left_lower_unit(&ljj, &mut bj);
        }
        // Eliminate from the rows below: B2 -= L21 * B1.
        if j + jb < m {
            let l21 = l.sub(j + jb, j, m - j - jb, jb);
            let (top, mut b2) = b.reborrow().split_rows_mut(j + jb);
            let b1 = top.as_view().sub(j, 0, jb, ncols);
            gemm_with(-T::ONE, &l21, &b1, T::ONE, &mut b2, bs);
        }
        j += jb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use phi_matrix::{MatGen, Matrix};

    /// Builds a well-conditioned unit-lower matrix.
    fn unit_lower(n: usize, seed: u64) -> Matrix<f64> {
        let mut l = MatGen::new(seed).matrix::<f64>(n, n);
        for i in 0..n {
            for j in 0..n {
                if j > i {
                    l[(i, j)] = 0.0;
                } else if j == i {
                    l[(i, j)] = 1.0;
                } else {
                    l[(i, j)] *= 0.5; // keep growth modest
                }
            }
        }
        l
    }

    /// Builds a well-conditioned upper-triangular matrix.
    fn upper(n: usize, seed: u64) -> Matrix<f64> {
        let mut u = MatGen::new(seed).matrix::<f64>(n, n);
        for i in 0..n {
            for j in 0..n {
                if j < i {
                    u[(i, j)] = 0.0;
                } else if j == i {
                    u[(i, j)] = 2.0 + u[(i, j)].abs();
                }
            }
        }
        u
    }

    #[test]
    fn left_lower_unit_reconstructs() {
        let l = unit_lower(12, 1);
        let x_true = MatGen::new(2).matrix::<f64>(12, 5);
        // B = L * X
        let mut b = Matrix::<f64>::zeros(12, 5);
        gemm_naive(1.0, &l.view(), &x_true.view(), 0.0, &mut b.view_mut());
        trsm_left_lower_unit(&l.view(), &mut b.view_mut());
        assert!(b.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn left_upper_reconstructs() {
        let u = upper(10, 3);
        let x_true = MatGen::new(4).matrix::<f64>(10, 4);
        let mut b = Matrix::<f64>::zeros(10, 4);
        gemm_naive(1.0, &u.view(), &x_true.view(), 0.0, &mut b.view_mut());
        trsm_left_upper(&u.view(), &mut b.view_mut());
        assert!(b.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn right_upper_reconstructs() {
        let u = upper(7, 5);
        let x_true = MatGen::new(6).matrix::<f64>(4, 7);
        let mut b = Matrix::<f64>::zeros(4, 7);
        gemm_naive(1.0, &x_true.view(), &u.view(), 0.0, &mut b.view_mut());
        trsm_right_upper(&u.view(), &mut b.view_mut());
        assert!(b.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn blocked_matches_unblocked() {
        let l = unit_lower(33, 7);
        let b0 = MatGen::new(8).matrix::<f64>(33, 9);
        let mut b_unblocked = b0.clone();
        let mut b_blocked = b0.clone();
        trsm_left_lower_unit(&l.view(), &mut b_unblocked.view_mut());
        trsm_left_lower_unit_blocked(
            &l.view(),
            &mut b_blocked.view_mut(),
            8,
            &BlockSizes::default(),
        );
        assert!(b_blocked.approx_eq(&b_unblocked, 1e-11));
    }

    #[test]
    fn one_by_one_cases() {
        let l = Matrix::<f64>::identity(1);
        let mut b = Matrix::<f64>::from_rows(&[&[5.0, 6.0]]);
        trsm_left_lower_unit(&l.view(), &mut b.view_mut());
        assert_eq!(b.row(0), &[5.0, 6.0]);

        let u = Matrix::<f64>::from_rows(&[&[2.0]]);
        let mut b2 = Matrix::<f64>::from_rows(&[&[4.0]]);
        trsm_left_upper(&u.view(), &mut b2.view_mut());
        assert_eq!(b2[(0, 0)], 2.0);
    }
}
