//! From-scratch dense linear algebra kernels for the `phi-hpl` workspace.
//!
//! This crate implements, in portable Rust, every BLAS/LAPACK routine the
//! paper's Linpack flavours call:
//!
//! * [`level1`] — `idamax`, `dscal`, `daxpy`, `dswap`, `ddot`, `dcopy`.
//! * [`level2`] — `dger` (the rank-1 update inside unblocked panel
//!   factorization), `dgemv`, `dtrsv`.
//! * [`gemm`](mod@gemm) — the paper's DGEMM structure (Section III): the general
//!   product decomposed into a sequence of rank-k outer products, operands
//!   packed into the *Knights Corner-friendly* tile layout of Fig. 3
//!   (`MR × k` column-major tiles of `A`, `k × NR` row-major tiles of `B`),
//!   and a register-blocked microkernel mirroring Basic Kernels 1/2 of
//!   Fig. 2. Both `f64` (DGEMM) and `f32` (SGEMM) instantiations.
//! * [`trsm`] — the triangular solves HPL needs (`DTRSM` for the `U` panel
//!   update and for blocked back-substitution).
//! * [`laswp`] — row interchanges from a pivot vector (`DLASWP`).
//! * [`lu`] — unblocked (`getf2`) and blocked right-looking (`getrf`)
//!   partial-pivot LU, plus the full `Ax = b` solve path used by the
//!   numeric backends.
//! * [`recursive`] — GEMM-rich recursive panel factorization (how
//!   production HPL panels are actually factored) and the multi-RHS
//!   `getrs` solve.
//! * [`colmajor`] — zero-copy column-major adapters via the paper's
//!   footnote-3 transpose identity.
//!
//! Numerical behaviour is validated against naive reference implementations
//! by unit and property tests; the HPL residual criterion is checked in the
//! integration suites of `phi-hpl`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colmajor;
pub mod condest;
pub mod gemm;
pub mod laswp;
pub mod level1;
pub mod level2;
pub mod lu;
pub mod recursive;
pub mod trsm;

pub use condest::{condest_1, inverse_norm1_estimate};
pub use gemm::{gemm, gemm_naive, BlockSizes, MicroKernelKind};
pub use laswp::{laswp_forward, laswp_inverse};
pub use lu::{getf2, getrf, lu_solve, LuError, LuFactors};
pub use recursive::{getf2_recursive, getrs, solve_multi};
pub use trsm::{trsm_left_lower_unit, trsm_left_upper, trsm_right_upper};
