//! Level-1 BLAS: vector-vector operations.
//!
//! These are the primitives unblocked panel factorization (`getf2`) is made
//! of: pivot search (`idamax`), column scaling (`scal`), row exchange
//! (`swap`) and the AXPY underlying the rank-1 update.

use phi_matrix::Scalar;

/// Index of the element with the largest absolute value (BLAS `IxAMAX`).
/// Returns `None` for an empty slice. Ties resolve to the lowest index, as
/// in the reference BLAS.
pub fn iamax<T: Scalar>(x: &[T]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_val = x[0].abs();
    for (i, v) in x.iter().enumerate().skip(1) {
        let a = v.abs();
        if a > best_val {
            best = i;
            best_val = a;
        }
    }
    Some(best)
}

/// `x := alpha * x` (BLAS `xSCAL`).
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// `y := alpha * x + y` (BLAS `xAXPY`).
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(alpha, *yi);
    }
}

/// Dot product `xᵀ y` accumulated in the element type (BLAS `xDOT`).
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut acc = T::ZERO;
    for (xi, yi) in x.iter().zip(y) {
        acc = xi.mul_add(*yi, acc);
    }
    acc
}

/// Swaps the contents of two equal-length vectors (BLAS `xSWAP`).
pub fn swap<T: Scalar>(x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "swap length mismatch");
    x.swap_with_slice(y);
}

/// Copies `x` into `y` (BLAS `xCOPY`).
pub fn copy<T: Scalar>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "copy length mismatch");
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iamax_finds_largest_magnitude() {
        assert_eq!(iamax(&[1.0f64, -5.0, 3.0]), Some(1));
        assert_eq!(iamax(&[-2.0f64, 2.0]), Some(0), "tie keeps lowest index");
        assert_eq!(iamax::<f64>(&[]), None);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0f64, -2.0, 4.0];
        scal(0.5, &mut x);
        assert_eq!(x, [0.5, -1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [10.0f64, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn swap_and_copy() {
        let mut x = [1.0f32, 2.0];
        let mut y = [3.0f32, 4.0];
        swap(&mut x, &mut y);
        assert_eq!(x, [3.0, 4.0]);
        copy(&x, &mut y);
        assert_eq!(y, [3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_mismatch_panics() {
        let mut y = [0.0f64; 2];
        axpy(1.0, &[1.0; 3], &mut y);
    }
}
