//! Partial-pivot LU factorization and the full `Ax = b` solve path.
//!
//! [`getf2`] is the unblocked kernel that factorizes one column panel —
//! the paper's `Task1` / `DGETRF` node in the dependency DAG (Fig. 5b).
//! [`getrf`] is the blocked right-looking driver: at each stage it factors
//! the panel `[D L]ᵢ`, swaps rows from the pivot vector, forward-solves the
//! row panel `Uᵢ` and GEMM-updates the trailing sub-matrix `Aᵢ` (Fig. 5a).
//! This sequential driver is the reference the parallel schedulers in
//! `phi-hpl` are validated against: every scheduling flavour must produce
//! the same factors and pivots.

use crate::gemm::{gemm_with, BlockSizes};
use crate::laswp::{laswp_forward, laswp_vec};
use crate::level1::iamax;
use crate::level2::ger;
use crate::trsm::{trsm_left_lower_unit, trsm_left_upper};
use phi_matrix::{Matrix, MatrixViewMut, Scalar};

/// Failure modes of the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuError {
    /// A zero pivot was encountered at the given global column: the matrix
    /// is singular to working precision.
    Singular {
        /// Global column index of the zero pivot.
        col: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::Singular { col } => write!(f, "matrix is singular at column {col}"),
        }
    }
}

impl std::error::Error for LuError {}

/// Unblocked partial-pivot LU of an `m × n` panel, in place.
///
/// On return the panel holds `L` (unit lower, implicit diagonal) below and
/// `U` on/above the diagonal; `ipiv[j]` records the row swapped with row
/// `j` (indices local to the panel). `col_offset` is only used to report
/// the global column in errors.
pub fn getf2<T: Scalar>(
    a: &mut MatrixViewMut<'_, T>,
    ipiv: &mut Vec<usize>,
    col_offset: usize,
) -> Result<(), LuError> {
    let (m, n) = (a.rows(), a.cols());
    let steps = m.min(n);
    ipiv.clear();
    ipiv.reserve(steps);
    for j in 0..steps {
        // Pivot search in column j, rows j..m.
        let col: Vec<T> = (j..m).map(|i| a.at(i, j)).collect();
        let rel = iamax(&col).expect("non-empty pivot column");
        let piv = j + rel;
        ipiv.push(piv);
        let pval = a.at(piv, j);
        if pval == T::ZERO {
            return Err(LuError::Singular {
                col: col_offset + j,
            });
        }
        // Swap rows j and piv across the full panel width.
        a.swap_rows(j, piv);
        // Scale the multipliers.
        let inv = T::ONE / a.at(j, j);
        for i in j + 1..m {
            *a.at_mut(i, j) *= inv;
        }
        // Rank-1 update of the trailing part: A[j+1.., j+1..] -= l * u.
        if j + 1 < m && j + 1 < n {
            let x: Vec<T> = (j + 1..m).map(|i| a.at(i, j)).collect();
            let y: Vec<T> = (j + 1..n).map(|c| a.at(j, c)).collect();
            let mut trail = a.sub_mut(j + 1, j + 1, m - j - 1, n - j - 1);
            ger(-T::ONE, &x, &y, &mut trail);
        }
    }
    Ok(())
}

/// The result of a full factorization: the packed `LU` factors and the
/// pivot sequence.
#[derive(Clone, Debug)]
pub struct LuFactors<T: Scalar> {
    /// `L\U` packed in one matrix (unit diagonal of `L` implicit).
    pub lu: Matrix<T>,
    /// `ipiv[i]` = row swapped with row `i` (absolute indices).
    pub ipiv: Vec<usize>,
}

impl<T: Scalar> LuFactors<T> {
    /// Solves `A x = b` using the stored factors:
    /// apply `P`, forward-solve `L y = Pb`, back-solve `U x = y`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "rhs length");
        let mut x = b.to_vec();
        laswp_vec(&mut x, &self.ipiv);
        let mut xm = Matrix::<T>::from_fn(n, 1, |i, _| x[i]);
        trsm_left_lower_unit(&self.lu.view(), &mut xm.view_mut());
        trsm_left_upper(&self.lu.view(), &mut xm.view_mut());
        (0..n).map(|i| xm[(i, 0)]).collect()
    }

    /// Extracts the explicit unit-lower factor (tests/debugging).
    pub fn l_matrix(&self) -> Matrix<T> {
        let n = self.lu.rows();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                T::ONE
            } else if j < i {
                self.lu[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Extracts the explicit upper factor (tests/debugging).
    pub fn u_matrix(&self) -> Matrix<T> {
        let n = self.lu.rows();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.lu[(i, j)] } else { T::ZERO })
    }
}

/// One stage of the blocked right-looking LU: factor the panel starting
/// at column `j`, swap, forward-solve the row panel and GEMM-update the
/// trailing sub-matrix. Returns the next stage's starting column.
///
/// The factorization state between stages is fully captured by
/// `(a, ipiv, j)`: checkpoint those three, and the factorization can be
/// resumed from the checkpoint — after a crash, on another host — and
/// produce factors bit-identical to an uninterrupted [`getrf`]. That
/// resumability is the numeric ground truth behind the analytic
/// host-death recovery model in `phi-hpl`.
pub fn getrf_stage<T: Scalar>(
    a: &mut MatrixViewMut<'_, T>,
    j: usize,
    nb: usize,
    bs: &BlockSizes,
    ipiv: &mut [usize],
) -> Result<usize, LuError> {
    let (m, n) = (a.rows(), a.cols());
    assert!(nb > 0, "panel width must be positive");
    let steps = m.min(n);
    assert!(j < steps, "stage start {j} out of range (steps = {steps})");
    assert_eq!(ipiv.len(), steps, "pivot buffer length");
    let jb = nb.min(steps - j);
    let mut panel_piv = Vec::with_capacity(jb);

    // 1. Factor the current panel: rows j..m, cols j..j+jb.
    {
        let mut panel = a.sub_mut(j, j, m - j, jb);
        getf2(&mut panel, &mut panel_piv, j)?;
    }
    // Record absolute pivots.
    for (t, &p) in panel_piv.iter().enumerate() {
        ipiv[j + t] = j + p;
    }
    // 2. Apply the swaps to the columns left and right of the panel
    //    (the panel itself was swapped during factorization).
    if j > 0 {
        let mut left = a.sub_mut(j, 0, m - j, j);
        laswp_forward(&mut left, &panel_piv);
    }
    if j + jb < n {
        let mut right = a.sub_mut(j, j + jb, m - j, n - j - jb);
        laswp_forward(&mut right, &panel_piv);

        // 3. Forward solve the row panel: U12 := L11^{-1} A12.
        //    L11 is the unit-lower jb×jb block of the factored panel.
        let (panel_rows, mut right_all) =
            a.reborrow().into_sub(j, j, m - j, n - j).split_cols_mut(jb);
        let l11 = panel_rows.as_view().sub(0, 0, jb, jb);
        {
            let mut u12 = right_all.sub_mut(0, 0, jb, n - j - jb);
            trsm_left_lower_unit(&l11, &mut u12);
        }
        // 4. Trailing update: A22 -= L21 * U12.
        if j + jb < m {
            let l21 = panel_rows.as_view().sub(jb, 0, m - j - jb, jb);
            let (u12_rows, mut a22) = right_all.split_rows_mut(jb);
            let u12 = u12_rows.as_view();
            gemm_with(-T::ONE, &l21, &u12, T::ONE, &mut a22, bs);
        }
    }
    Ok(j + jb)
}

/// Blocked right-looking LU with partial pivoting, in place, with panel
/// width `nb` — the sequential reference for every parallel Linpack
/// flavour in the workspace. Drives [`getrf_stage`] to completion.
///
/// Returns the absolute pivot sequence.
pub fn getrf<T: Scalar>(
    a: &mut MatrixViewMut<'_, T>,
    nb: usize,
    bs: &BlockSizes,
) -> Result<Vec<usize>, LuError> {
    let (m, n) = (a.rows(), a.cols());
    assert!(nb > 0, "panel width must be positive");
    let steps = m.min(n);
    let mut ipiv = vec![0usize; steps];
    let mut j = 0;
    while j < steps {
        j = getrf_stage(a, j, nb, bs, &mut ipiv)?;
    }
    Ok(ipiv)
}

/// Factorizes a copy of `a` and solves `A x = b` — the convenience entry
/// point used by examples and tests.
pub fn lu_solve<T: Scalar>(a: &Matrix<T>, b: &[T], nb: usize) -> Result<Vec<T>, LuError> {
    assert_eq!(a.rows(), a.cols(), "lu_solve requires a square matrix");
    let mut lu = a.clone();
    let ipiv = getrf(&mut lu.view_mut(), nb, &BlockSizes::default())?;
    Ok(LuFactors { lu, ipiv }.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use phi_matrix::{hpl_residual, MatGen, Matrix};

    #[test]
    fn getf2_reproduces_plu() {
        let a0 = MatGen::new(1).matrix::<f64>(8, 8);
        let mut a = a0.clone();
        let mut piv = Vec::new();
        getf2(&mut a.view_mut(), &mut piv, 0).unwrap();
        let f = LuFactors {
            lu: a,
            ipiv: piv.clone(),
        };
        // P*A0 must equal L*U.
        let mut pa = a0.clone();
        laswp_forward(&mut pa.view_mut(), &piv);
        let mut lu_prod = Matrix::<f64>::zeros(8, 8);
        gemm_naive(
            1.0,
            &f.l_matrix().view(),
            &f.u_matrix().view(),
            0.0,
            &mut lu_prod.view_mut(),
        );
        assert!(pa.approx_eq(&lu_prod, 1e-12));
    }

    #[test]
    fn getrf_matches_getf2_factors() {
        let a0 = MatGen::new(2).matrix::<f64>(40, 40);
        let mut unblocked = a0.clone();
        let mut piv_u = Vec::new();
        getf2(&mut unblocked.view_mut(), &mut piv_u, 0).unwrap();

        let mut blocked = a0.clone();
        let piv_b = getrf(&mut blocked.view_mut(), 8, &BlockSizes::default()).unwrap();

        assert_eq!(piv_u, piv_b, "pivot sequences must agree");
        assert!(
            blocked.approx_eq(&unblocked, 1e-10),
            "diff = {}",
            blocked.max_abs_diff(&unblocked)
        );
    }

    #[test]
    fn solve_passes_hpl_residual() {
        for n in [1usize, 2, 13, 64, 100] {
            let a = MatGen::new(7).matrix::<f64>(n, n);
            let b = MatGen::new(8).rhs::<f64>(n);
            let x = lu_solve(&a, &b, 16).unwrap();
            let report = hpl_residual(&a.view(), &x, &b);
            assert!(
                report.passed,
                "n={n}: scaled residual {}",
                report.scaled_residual
            );
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        // The host-death recovery story in numbers: factor three panels,
        // checkpoint (a, ipiv, j), lose the live state, restore the
        // checkpoint on a "survivor" and finish. The factors must be
        // bit-identical to an uninterrupted run and the solve must pass
        // the HPL residual test.
        let (n, nb) = (96usize, 16usize);
        let a0 = MatGen::new(21).matrix::<f64>(n, n);
        let b = MatGen::new(22).rhs::<f64>(n);
        let bs = BlockSizes::default();

        let mut full = a0.clone();
        let piv_full = getrf(&mut full.view_mut(), nb, &bs).unwrap();

        let mut a = a0.clone();
        let mut ipiv = vec![0usize; n];
        let mut j = 0;
        for _ in 0..3 {
            j = getrf_stage(&mut a.view_mut(), j, nb, &bs, &mut ipiv).unwrap();
        }
        let (ckpt_a, ckpt_piv, ckpt_j) = (a.clone(), ipiv.clone(), j);
        // The crash: the in-flight state is gone.
        for i in 0..n {
            for c in 0..n {
                a[(i, c)] = f64::NAN;
            }
        }
        ipiv.fill(usize::MAX);
        // Restore and resume to completion.
        let (mut a, mut ipiv, mut j) = (ckpt_a, ckpt_piv, ckpt_j);
        while j < n {
            j = getrf_stage(&mut a.view_mut(), j, nb, &bs, &mut ipiv).unwrap();
        }

        assert_eq!(ipiv, piv_full, "pivot sequences must agree");
        for i in 0..n {
            for c in 0..n {
                assert_eq!(
                    a[(i, c)].to_bits(),
                    full[(i, c)].to_bits(),
                    "factor bits diverged at ({i},{c})"
                );
            }
        }
        let x = LuFactors { lu: a, ipiv }.solve(&b);
        let report = hpl_residual(&a0.view(), &x, &b);
        assert!(report.passed, "scaled residual {}", report.scaled_residual);
    }

    #[test]
    fn singular_matrix_detected() {
        let mut a = MatGen::new(9).matrix::<f64>(6, 6);
        // Zero out column 3: rank-1 updates keep it exactly zero, so the
        // pivot search at step 3 finds nothing.
        for i in 0..6 {
            a[(i, 3)] = 0.0;
        }
        let err = lu_solve(&a, &[1.0; 6], 2).unwrap_err();
        match err {
            LuError::Singular { .. } => {}
        }
    }

    #[test]
    fn rectangular_panels_factor() {
        // Tall panel (m > n) — the shape getf2 sees inside HPL.
        let a0 = MatGen::new(11).matrix::<f64>(20, 4);
        let mut a = a0.clone();
        let mut piv = Vec::new();
        getf2(&mut a.view_mut(), &mut piv, 0).unwrap();
        assert_eq!(piv.len(), 4);
        // Check P*A = L*U on the 20×4 panel: L is 20×4 unit-lower
        // trapezoidal, U is 4×4 upper.
        let mut pa = a0.clone();
        laswp_forward(&mut pa.view_mut(), &piv);
        for i in 0..20 {
            for j in 0..4 {
                let mut acc = 0.0;
                for p in 0..=j.min(i) {
                    let l = if p == i { 1.0 } else { a[(i, p)] };
                    let u = a[(p, j)];
                    acc += if p <= j && p <= i { l * u } else { 0.0 };
                }
                assert!((pa[(i, j)] - acc).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn wide_matrix_getrf() {
        // m < n exercises the final panel + trailing row band.
        let a0 = MatGen::new(13).matrix::<f64>(12, 20);
        let mut a = a0.clone();
        let piv = getrf(&mut a.view_mut(), 5, &BlockSizes::default()).unwrap();
        assert_eq!(piv.len(), 12);
        let mut reference = a0.clone();
        let mut piv_ref = Vec::new();
        getf2(&mut reference.view_mut(), &mut piv_ref, 0).unwrap();
        assert_eq!(piv, piv_ref);
        assert!(a.approx_eq(&reference, 1e-11));
    }

    #[test]
    fn pivots_actually_pivot() {
        // First column forces a swap: |a[2,0]| is the largest.
        let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 5.0, 1.0], &[-9.0, 1.0, 4.0]]);
        let mut f = a.clone();
        let mut piv = Vec::new();
        getf2(&mut f.view_mut(), &mut piv, 0).unwrap();
        assert_eq!(piv[0], 2);
        // All multipliers bounded by 1 in magnitude (partial pivoting
        // invariant).
        for i in 0..3 {
            for j in 0..i {
                assert!(f[(i, j)].abs() <= 1.0 + 1e-15);
            }
        }
    }
}
