//! Recursive panel factorization and multi-RHS solve.
//!
//! Production HPL implementations (including the paper's, via its highly
//! optimized panel factorization — "Using this extension as well as
//! highly optimized panel factorization") factor panels *recursively*:
//! split the panel's columns in half, factor the left half, update the
//! right half with a TRSM + GEMM, recurse. This converts most of the
//! panel's flops from rank-1 updates (memory bound) into matrix-matrix
//! products (compute bound) — the same reason blocked LU beats unblocked.
//!
//! [`getrs`] completes the LAPACK-style API: solve `A X = B` for many
//! right-hand sides using the packed factors.

use crate::gemm::{gemm_with, BlockSizes};
use crate::laswp::laswp_forward;
use crate::lu::{getf2, LuError, LuFactors};
use crate::trsm::{trsm_left_lower_unit, trsm_left_upper};
use phi_matrix::{Matrix, MatrixViewMut, Scalar};

/// Recursive partial-pivot factorization of an `m × n` panel (`m ≥ n`),
/// in place; equivalent to [`getf2`] but GEMM-rich.
///
/// `ipiv` receives panel-local pivot rows; `col_offset` is for error
/// reporting only. Recursion stops at `leaf` columns (then [`getf2`]).
pub fn getf2_recursive<T: Scalar>(
    a: &mut MatrixViewMut<'_, T>,
    ipiv: &mut Vec<usize>,
    col_offset: usize,
    leaf: usize,
) -> Result<(), LuError> {
    let (m, n) = (a.rows(), a.cols());
    assert!(leaf > 0);
    ipiv.clear();
    if n == 0 || m == 0 {
        return Ok(());
    }
    if n <= leaf {
        return getf2(a, ipiv, col_offset);
    }
    let n1 = n / 2;

    // 1. Factor the left half recursively (full height).
    let mut left_piv = Vec::new();
    {
        let mut left = a.sub_mut(0, 0, m, n1);
        getf2_recursive(&mut left, &mut left_piv, col_offset, leaf)?;
    }
    // 2. Apply its pivots to the right half.
    {
        let mut right = a.sub_mut(0, n1, m, n - n1);
        laswp_forward(&mut right, &left_piv);
    }
    // 3. Triangular solve: A12 := L11⁻¹ A12.
    {
        let (l_cols, mut r_cols) = a.reborrow().split_cols_mut(n1);
        let l11 = l_cols.as_view().sub(0, 0, n1, n1);
        let mut a12 = r_cols.sub_mut(0, 0, n1, n - n1);
        trsm_left_lower_unit(&l11, &mut a12);
    }
    // 4. GEMM update: A22 -= L21 · A12.
    if m > n1 {
        let bs = BlockSizes::default();
        let (top, bottom) = a.reborrow().split_rows_mut(n1);
        let a12 = top.as_view().sub(0, n1, n1, n - n1);
        let (l21_cols, mut a22_cols) = bottom.split_cols_mut(n1);
        let l21 = l21_cols.as_view();
        gemm_with(-T::ONE, &l21, &a12, T::ONE, &mut a22_cols, &bs);
    }
    // 5. Factor the trailing half recursively.
    let mut right_piv = Vec::new();
    {
        let mut trail = a.sub_mut(n1, n1, m - n1, n - n1);
        getf2_recursive(&mut trail, &mut right_piv, col_offset + n1, leaf)?;
    }
    // 6. Its pivots (relative to row n1) apply to the left columns too.
    {
        let mut left_tail = a.sub_mut(n1, 0, m - n1, n1);
        laswp_forward(&mut left_tail, &right_piv);
    }

    ipiv.extend(left_piv);
    ipiv.extend(right_piv.iter().map(|&p| p + n1));
    Ok(())
}

/// Solves `A X = B` for `nrhs` right-hand sides using packed LU factors
/// (LAPACK `xGETRS`, no-transpose). `b` is overwritten with `X`.
pub fn getrs<T: Scalar>(factors: &LuFactors<T>, b: &mut MatrixViewMut<'_, T>) {
    let n = factors.lu.rows();
    assert_eq!(b.rows(), n, "rhs height");
    laswp_forward(b, &factors.ipiv);
    trsm_left_lower_unit(&factors.lu.view(), b);
    trsm_left_upper(&factors.lu.view(), b);
}

/// Convenience: factor (recursively) and solve a multi-RHS system,
/// returning `X`.
pub fn solve_multi<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    leaf: usize,
) -> Result<Matrix<T>, LuError> {
    assert_eq!(a.rows(), a.cols());
    assert_eq!(b.rows(), a.rows());
    let mut lu = a.clone();
    let mut ipiv = Vec::new();
    getf2_recursive(&mut lu.view_mut(), &mut ipiv, 0, leaf)?;
    let factors = LuFactors { lu, ipiv };
    let mut x = b.clone();
    getrs(&factors, &mut x.view_mut());
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_matrix::{hpl_residual, MatGen};

    #[test]
    fn recursive_matches_unblocked_exactly() {
        for (m, n, leaf) in [
            (24usize, 24usize, 4usize),
            (40, 16, 2),
            (33, 20, 8),
            (16, 16, 16),
        ] {
            let a0 = MatGen::new((m * n) as u64).matrix::<f64>(m, n);
            let mut rec = a0.clone();
            let mut piv_rec = Vec::new();
            getf2_recursive(&mut rec.view_mut(), &mut piv_rec, 0, leaf).unwrap();

            let mut unb = a0.clone();
            let mut piv_unb = Vec::new();
            getf2(&mut unb.view_mut(), &mut piv_unb, 0).unwrap();

            assert_eq!(piv_rec, piv_unb, "pivots m={m} n={n} leaf={leaf}");
            assert!(
                rec.max_abs_diff(&unb) < 1e-11,
                "factors m={m} n={n} leaf={leaf}: {}",
                rec.max_abs_diff(&unb)
            );
        }
    }

    #[test]
    fn multi_rhs_solve_passes_hpl() {
        let n = 48;
        let nrhs = 5;
        let a = MatGen::new(1).matrix::<f64>(n, n);
        let b = MatGen::new(2).matrix::<f64>(n, nrhs);
        let x = solve_multi(&a, &b, 4).unwrap();
        for j in 0..nrhs {
            let xj: Vec<f64> = (0..n).map(|i| x[(i, j)]).collect();
            let bj: Vec<f64> = (0..n).map(|i| b[(i, j)]).collect();
            let rep = hpl_residual(&a.view(), &xj, &bj);
            assert!(rep.passed, "rhs {j}: {}", rep.scaled_residual);
        }
    }

    #[test]
    fn getrs_agrees_with_single_rhs_solver() {
        let n = 32;
        let a = MatGen::new(5).matrix::<f64>(n, n);
        let b = MatGen::new(6).rhs::<f64>(n);
        let x1 = crate::lu::lu_solve(&a, &b, 8).unwrap();
        let bm = Matrix::from_fn(n, 1, |i, _| b[i]);
        let x2 = solve_multi(&a, &bm, 4).unwrap();
        for i in 0..n {
            assert!((x1[i] - x2[(i, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_panel_detected() {
        let n = 12;
        let mut a = MatGen::new(7).matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, 3)] = 0.0;
        }
        let mut piv = Vec::new();
        let err = getf2_recursive(&mut a.view_mut(), &mut piv, 0, 2).unwrap_err();
        assert!(matches!(err, LuError::Singular { col: 3 }));
    }
}
