//! Column-major adapters (paper footnote 3).
//!
//! "Column-major (CM) DGEMM is easily derived from row-major (RM) DGEMM
//! by transposing both sides of the equality `C(CM) = A(CM) · B(CM)`, to
//! get `C(RM) = B(RM) · A(RM)`" — i.e. a column-major matrix reinterpreted
//! as row-major *is* its transpose, so a column-major GEMM is the
//! row-major GEMM with the operands swapped. These adapters let
//! column-major callers (LAPACK-convention code) use the packed kernels
//! without copying.

use crate::gemm::{gemm_with, BlockSizes};
use phi_matrix::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// A column-major matrix description over a flat slice: element `(i, j)`
/// lives at `j * ld + i`.
#[derive(Clone, Copy, Debug)]
pub struct ColMajor<'a, T: Scalar> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Scalar> ColMajor<'a, T> {
    /// Wraps a column-major buffer.
    ///
    /// # Panics
    /// Panics when the slice is too short or `ld < rows`.
    pub fn new(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows || cols <= 1, "ld {ld} < rows {rows}");
        if rows > 0 && cols > 0 {
            assert!(data.len() >= (cols - 1) * ld + rows);
        }
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Element `(i, j)`.
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.ld + i]
    }

    /// The same storage viewed as the row-major **transpose** — footnote
    /// 3's identity, zero-copy.
    pub fn as_transposed_rowmajor(&self) -> MatrixView<'a, T> {
        MatrixView::new(self.data, self.cols, self.rows, self.ld)
    }

    /// Materializes a row-major copy (for callers that need one).
    pub fn to_rowmajor(&self) -> Matrix<T> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }
}

/// Column-major GEMM `C := alpha·A·B + beta·C` implemented entirely with
/// the row-major packed kernels: `Cᵀ := alpha·Bᵀ·Aᵀ + beta·Cᵀ`.
///
/// `c` is the column-major output buffer with leading dimension `ldc`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_colmajor<T: Scalar>(
    alpha: T,
    a: &ColMajor<'_, T>,
    b: &ColMajor<'_, T>,
    beta: T,
    c: &mut [T],
    c_rows: usize,
    c_cols: usize,
    ldc: usize,
    bs: &BlockSizes,
) {
    assert_eq!(a.rows, c_rows, "C rows");
    assert_eq!(b.cols, c_cols, "C cols");
    assert_eq!(a.cols, b.rows, "inner dimension");
    // C (CM, c_rows × c_cols) reinterpreted row-major is Cᵀ
    // (c_cols × c_rows) with the same leading dimension.
    let mut c_t = MatrixViewMut::new(c, c_cols, c_rows, ldc);
    let a_t = a.as_transposed_rowmajor();
    let b_t = b.as_transposed_rowmajor();
    gemm_with(alpha, &b_t, &a_t, beta, &mut c_t, bs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;
    use phi_matrix::MatGen;

    /// Builds a column-major buffer for an `r × c` random matrix.
    fn cm_buffer(seed: u64, rows: usize, cols: usize, ld: usize) -> Vec<f64> {
        let m = MatGen::new(seed).matrix::<f64>(rows, cols);
        let mut buf = vec![0.0; ld * cols];
        for j in 0..cols {
            for i in 0..rows {
                buf[j * ld + i] = m[(i, j)];
            }
        }
        buf
    }

    #[test]
    fn transposed_view_is_zero_copy_transpose() {
        let buf = cm_buffer(1, 4, 3, 5);
        let cm = ColMajor::new(&buf, 4, 3, 5);
        let t = cm.as_transposed_rowmajor();
        assert_eq!((t.rows(), t.cols()), (3, 4));
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(cm.at(i, j), t.at(j, i));
            }
        }
    }

    #[test]
    fn colmajor_gemm_matches_rowmajor_oracle() {
        let (m, n, k) = (17, 13, 9);
        let (lda, ldb, ldc) = (m + 3, k + 1, m + 2);
        let abuf = cm_buffer(2, m, k, lda);
        let bbuf = cm_buffer(3, k, n, ldb);
        let mut cbuf = cm_buffer(4, m, n, ldc);

        let a = ColMajor::new(&abuf, m, k, lda);
        let b = ColMajor::new(&bbuf, k, n, ldb);

        // Row-major oracle on materialized copies.
        let ar = a.to_rowmajor();
        let br = b.to_rowmajor();
        let mut cr = ColMajor::new(&cbuf, m, n, ldc).to_rowmajor();
        gemm_naive(1.5, &ar.view(), &br.view(), -0.5, &mut cr.view_mut());

        gemm_colmajor(
            1.5,
            &a,
            &b,
            -0.5,
            &mut cbuf,
            m,
            n,
            ldc,
            &BlockSizes::default(),
        );
        let got = ColMajor::new(&cbuf, m, n, ldc).to_rowmajor();
        assert!(got.approx_eq(&cr, 1e-11), "diff {}", got.max_abs_diff(&cr));
    }

    #[test]
    fn knc_shape_works_for_colmajor_too() {
        let (m, n, k) = (35, 31, 12);
        let abuf = cm_buffer(5, m, k, m);
        let bbuf = cm_buffer(6, k, n, k);
        let mut cbuf = vec![0.0; m * n];
        let a = ColMajor::new(&abuf, m, k, m);
        let b = ColMajor::new(&bbuf, k, n, k);
        let ar = a.to_rowmajor();
        let br = b.to_rowmajor();
        let mut cr = Matrix::<f64>::zeros(m, n);
        gemm_naive(1.0, &ar.view(), &br.view(), 0.0, &mut cr.view_mut());
        gemm_colmajor(1.0, &a, &b, 0.0, &mut cbuf, m, n, m, &BlockSizes::knc());
        let got = ColMajor::new(&cbuf, m, n, m).to_rowmajor();
        assert!(got.approx_eq(&cr, 1e-11));
    }
}
