//! Property-based tests for the BLAS/LU kernels.
//!
//! Strategy: generate random shapes and entries with the in-repo
//! deterministic [`phi_matrix::HplRng`] (no external proptest
//! dependency), then assert algebraic invariants that must hold for
//! *any* input — agreement with the naive oracle, permutation
//! consistency, triangular-solve inverses, and the partial-pivoting
//! growth bound.

use phi_blas::gemm::{gemm_naive, gemm_with, pack_a, pack_b, BlockSizes, MicroKernelKind};
use phi_blas::laswp::{laswp_forward, laswp_inverse};
use phi_blas::lu::{getf2, getrf, lu_solve, LuFactors};
use phi_blas::trsm::{trsm_left_lower_unit, trsm_left_upper};
use phi_matrix::{hpl_residual, HplRng, MatGen, Matrix};

/// Builds a deterministic random matrix for a (seed, shape) pair.
fn mat(seed: u64, r: usize, c: usize) -> Matrix<f64> {
    MatGen::new(seed).matrix::<f64>(r, c)
}

/// Deterministic case generator for the sweeps below.
struct Cases(HplRng);

impl Cases {
    fn new(seed: u64) -> Self {
        Self(HplRng::new(seed))
    }
    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.0.next_u64() % (hi - lo) as u64) as usize
    }
    fn signed(&mut self, scale: f64) -> f64 {
        self.0.next_value() * 2.0 * scale
    }
    fn flag(&mut self) -> bool {
        self.0.next_u64() & 1 == 1
    }
    fn seed(&mut self) -> u64 {
        self.0.next_u64() % 1000
    }
}

/// Blocked, packed GEMM agrees with the naive oracle for arbitrary
/// shapes, scalars and block sizes.
#[test]
fn gemm_matches_oracle() {
    let mut cases = Cases::new(0x6E33);
    for _ in 0..48 {
        let m = cases.index(0, 48);
        let n = cases.index(0, 48);
        let k = cases.index(0, 48);
        let alpha = cases.signed(2.0);
        let beta = cases.signed(2.0);
        let (mc, kc, nc) = (cases.index(1, 40), cases.index(1, 40), cases.index(1, 40));
        let kernel1 = cases.flag();
        let seed = cases.seed();
        let a = mat(seed, m, k);
        let b = mat(seed + 1, k, n);
        let mut c = mat(seed + 2, m, n);
        let mut c_ref = c.clone();
        let bs = BlockSizes {
            mc,
            kc,
            nc,
            mr: 8,
            nr: 8,
            kernel: if kernel1 {
                MicroKernelKind::Kernel1
            } else {
                MicroKernelKind::Kernel2
            },
        };
        gemm_with(alpha, &a.view(), &b.view(), beta, &mut c.view_mut(), &bs);
        gemm_naive(alpha, &a.view(), &b.view(), beta, &mut c_ref.view_mut());
        assert!(c.max_abs_diff(&c_ref) <= 1e-11 * (k as f64 + 1.0));
    }
}

/// The KNC register-block shape (30×8) agrees with the oracle too.
#[test]
fn gemm_knc_shape_matches_oracle() {
    let mut cases = Cases::new(0x6E34);
    for _ in 0..48 {
        let m = cases.index(1, 70);
        let n = cases.index(1, 20);
        let k = cases.index(1, 40);
        let seed = cases.seed();
        let a = mat(seed, m, k);
        let b = mat(seed + 1, k, n);
        let mut c = Matrix::<f64>::zeros(m, n);
        let mut c_ref = Matrix::<f64>::zeros(m, n);
        gemm_with(
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &BlockSizes::knc(),
        );
        gemm_naive(1.0, &a.view(), &b.view(), 0.0, &mut c_ref.view_mut());
        assert!(c.max_abs_diff(&c_ref) <= 1e-11 * (k as f64 + 1.0));
    }
}

/// Packing is a bijection onto the tile grid: every live element of the
/// source appears exactly where the layout says, and padding is zero.
#[test]
fn packing_is_faithful() {
    let mut cases = Cases::new(0x9AC4);
    for _ in 0..48 {
        let rows = cases.index(1, 70);
        let depth = cases.index(1, 20);
        let mr = cases.index(1, 33);
        let seed = cases.seed();
        let a = mat(seed, rows, depth);
        let pa = pack_a(&a.view(), mr);
        let mut seen = 0usize;
        for t in 0..pa.tile_count() {
            let live = pa.tile_rows(t);
            for p in 0..depth {
                for r in 0..mr {
                    let v = pa.tile(t)[p * mr + r];
                    if r < live {
                        assert_eq!(v, a[(t * mr + r, p)]);
                        seen += 1;
                    } else {
                        assert_eq!(v, 0.0);
                    }
                }
            }
        }
        assert_eq!(seen, rows * depth);

        let b = mat(seed + 1, depth, rows);
        let pb = pack_b(&b.view(), 8);
        for u in 0..pb.tile_count() {
            let live = pb.tile_cols(u);
            for p in 0..depth {
                for c in 0..8 {
                    let v = pb.tile(u)[p * 8 + c];
                    if c < live {
                        assert_eq!(v, b[(p, u * 8 + c)]);
                    } else {
                        assert_eq!(v, 0.0);
                    }
                }
            }
        }
    }
}

/// laswp_inverse ∘ laswp_forward = identity for any valid pivot vector.
#[test]
fn laswp_roundtrip() {
    let mut cases = Cases::new(0x1A59);
    for _ in 0..48 {
        let n = cases.index(1, 32);
        let seed = cases.seed();
        let pivseed = cases.seed();
        let orig = mat(seed, n, 5);
        let mut m = orig.clone();
        // Valid pivot vector: ipiv[i] in i..n.
        let mut rng = HplRng::new(pivseed);
        let ipiv: Vec<usize> = (0..n)
            .map(|i| i + (rng.next_u64() as usize) % (n - i))
            .collect();
        laswp_forward(&mut m.view_mut(), &ipiv);
        laswp_inverse(&mut m.view_mut(), &ipiv);
        assert!(m.approx_eq(&orig, 0.0));
    }
}

/// PA = LU holds after unblocked factorization, and the multipliers
/// obey the partial-pivoting bound |l_ij| <= 1.
#[test]
fn getf2_satisfies_plu_and_growth_bound() {
    let mut cases = Cases::new(0x6372);
    for _ in 0..48 {
        let n = cases.index(1, 24);
        let seed = cases.seed();
        let a0 = mat(seed, n, n);
        let mut a = a0.clone();
        let mut piv = Vec::new();
        if getf2(&mut a.view_mut(), &mut piv, 0).is_err() {
            // Random matrices are almost never exactly singular; skip.
            continue;
        }
        for i in 0..n {
            for j in 0..i {
                assert!(a[(i, j)].abs() <= 1.0 + 1e-14);
            }
        }
        let f = LuFactors {
            lu: a,
            ipiv: piv.clone(),
        };
        let mut pa = a0.clone();
        laswp_forward(&mut pa.view_mut(), &piv);
        let mut prod = Matrix::<f64>::zeros(n, n);
        gemm_naive(
            1.0,
            &f.l_matrix().view(),
            &f.u_matrix().view(),
            0.0,
            &mut prod.view_mut(),
        );
        assert!(pa.max_abs_diff(&prod) <= 1e-9);
    }
}

/// Blocked LU equals unblocked LU for any panel width.
#[test]
fn getrf_blocked_equals_unblocked() {
    let mut cases = Cases::new(0x6E7F);
    for _ in 0..48 {
        let n = cases.index(1, 40);
        let nb = cases.index(1, 12);
        let seed = cases.seed();
        let a0 = mat(seed, n, n);
        let mut blocked = a0.clone();
        let mut unblocked = a0.clone();
        let mut piv_ref = Vec::new();
        let r1 = getrf(&mut blocked.view_mut(), nb, &BlockSizes::default());
        let r2 = getf2(&mut unblocked.view_mut(), &mut piv_ref, 0);
        assert_eq!(r1.is_ok(), r2.is_ok());
        if let Ok(piv) = r1 {
            assert_eq!(piv, piv_ref);
            assert!(blocked.max_abs_diff(&unblocked) <= 1e-9);
        }
    }
}

/// Full solve satisfies the HPL acceptance criterion.
#[test]
fn solve_passes_hpl_test() {
    let mut cases = Cases::new(0x501E);
    for _ in 0..48 {
        let n = cases.index(1, 48);
        let nb = cases.index(1, 16);
        let seed = cases.seed();
        let a = mat(seed, n, n);
        let b = MatGen::new(seed + 1).rhs::<f64>(n);
        // An Err is an exactly-singular random draw: vanishingly rare.
        if let Ok(x) = lu_solve(&a, &b, nb) {
            let report = hpl_residual(&a.view(), &x, &b);
            assert!(report.passed, "scaled = {}", report.scaled_residual);
        }
    }
}

/// TRSM solves really invert the triangular products.
#[test]
fn trsm_inverts_triangular_products() {
    let mut cases = Cases::new(0x7254);
    for _ in 0..48 {
        let n = cases.index(1, 24);
        let rhs = cases.index(1, 8);
        let seed = cases.seed();
        // Unit lower L with bounded multipliers.
        let mut l = mat(seed, n, n);
        for i in 0..n {
            for j in 0..n {
                if j > i {
                    l[(i, j)] = 0.0;
                } else if j == i {
                    l[(i, j)] = 1.0;
                } else {
                    l[(i, j)] *= 0.9;
                }
            }
        }
        let x = mat(seed + 1, n, rhs);
        let mut b = Matrix::<f64>::zeros(n, rhs);
        gemm_naive(1.0, &l.view(), &x.view(), 0.0, &mut b.view_mut());
        trsm_left_lower_unit(&l.view(), &mut b.view_mut());
        assert!(b.max_abs_diff(&x) <= 1e-8);

        // Upper U with dominant diagonal.
        let mut u = mat(seed + 2, n, n);
        for i in 0..n {
            for j in 0..n {
                if j < i {
                    u[(i, j)] = 0.0;
                } else if j == i {
                    u[(i, j)] = 2.0 + u[(i, j)].abs();
                }
            }
        }
        let mut b2 = Matrix::<f64>::zeros(n, rhs);
        gemm_naive(1.0, &u.view(), &x.view(), 0.0, &mut b2.view_mut());
        trsm_left_upper(&u.view(), &mut b2.view_mut());
        assert!(b2.max_abs_diff(&x) <= 1e-8);
    }
}
