//! Borrowed rectangular windows into dense matrices.
//!
//! LU factorization repeatedly decomposes the active matrix into a column
//! panel, a row panel (`U_i`) and a trailing sub-matrix (`A_i`) — see
//! Fig. 5a of the paper. These views provide exactly those splits without
//! copying. Because a column split produces two windows whose rows
//! interleave in memory, [`MatrixViewMut`] is built on raw pointers with a
//! lifetime marker; disjointness of splits is asserted at split time, after
//! which the borrow checker enforces exclusivity as usual.

use crate::scalar::Scalar;
use std::marker::PhantomData;

/// An immutable `rows × cols` window with row stride `ld`.
#[derive(Clone, Copy)]
pub struct MatrixView<'a, T: Scalar> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Scalar> MatrixView<'a, T> {
    /// Wraps a slice as a matrix window.
    ///
    /// # Panics
    /// Panics when the slice is too short to hold the described window.
    pub fn new(data: &'a [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= cols || rows <= 1, "ld {ld} < cols {cols}");
        if rows > 0 && cols > 0 {
            let need = (rows - 1) * ld + cols;
            assert!(data.len() >= need, "slice len {} < {need}", data.len());
        }
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Row stride in elements.
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// True when the window contains no elements.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.ld + j]
    }

    /// Row `i` as a slice of its live `cols` elements.
    pub fn row(&self, i: usize) -> &'a [T] {
        assert!(i < self.rows);
        &self.data[i * self.ld..i * self.ld + self.cols]
    }

    /// Sub-window of shape `nr × nc` anchored at `(r0, c0)`.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'a, T> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub OOB");
        let start = if nr == 0 || nc == 0 {
            0
        } else {
            r0 * self.ld + c0
        };
        MatrixView::new(&self.data[start..], nr, nc, self.ld)
    }

    /// Splits into (top `at` rows, remaining rows).
    pub fn split_rows(&self, at: usize) -> (MatrixView<'a, T>, MatrixView<'a, T>) {
        (
            self.sub(0, 0, at, self.cols),
            self.sub(at, 0, self.rows - at, self.cols),
        )
    }

    /// Splits into (left `at` columns, remaining columns).
    pub fn split_cols(&self, at: usize) -> (MatrixView<'a, T>, MatrixView<'a, T>) {
        (
            self.sub(0, 0, self.rows, at),
            self.sub(0, at, self.rows, self.cols - at),
        )
    }

    /// Copies the window into an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix<T> {
        crate::Matrix::from_fn(self.rows, self.cols, |i, j| self.at(i, j))
    }
}

/// A mutable `rows × cols` window with row stride `ld`.
pub struct MatrixViewMut<'a, T: Scalar> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a MatrixViewMut is an exclusive borrow of its window, like
// &mut [T]; sending it to another thread is sound for Send scalars.
unsafe impl<T: Scalar + Send> Send for MatrixViewMut<'_, T> {}
unsafe impl<T: Scalar + Sync> Sync for MatrixViewMut<'_, T> {}

impl<'a, T: Scalar> MatrixViewMut<'a, T> {
    /// Wraps a mutable slice as a matrix window.
    ///
    /// # Panics
    /// Panics when the slice is too short to hold the described window.
    pub fn new(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= cols || rows <= 1, "ld {ld} < cols {cols}");
        if rows > 0 && cols > 0 {
            let need = (rows - 1) * ld + cols;
            assert!(data.len() >= need, "slice len {} < {need}", data.len());
        }
        Self {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }
    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// Row stride in elements.
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// True when the window contains no elements.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in-bounds of the borrowed window by the debug_assert and
        // construction invariant.
        unsafe { *self.ptr.add(i * self.ld + j) }
    }

    /// Mutable reference to element `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in-bounds, and &mut self guarantees exclusivity.
        unsafe { &mut *self.ptr.add(i * self.ld + j) }
    }

    /// Sets element `(i, j)` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        *self.at_mut(i, j) = v;
    }

    /// Row `i` as an immutable slice.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows);
        // SAFETY: rows within the window are in-bounds.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.ld), self.cols) }
    }

    /// Row `i` as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows);
        // SAFETY: rows within the window are in-bounds; &mut self is exclusive.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.ld), self.cols) }
    }

    /// Reborrows with a shorter lifetime (analogous to `&mut *x`).
    pub fn reborrow(&mut self) -> MatrixViewMut<'_, T> {
        MatrixViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Immutable view of the same window.
    pub fn as_view(&self) -> MatrixView<'_, T> {
        let len = if self.rows == 0 || self.cols == 0 {
            0
        } else {
            (self.rows - 1) * self.ld + self.cols
        };
        // SAFETY: the window is a live exclusive borrow; we hand out a
        // shared view tied to &self.
        MatrixView::new(
            unsafe { std::slice::from_raw_parts(self.ptr, len) },
            self.rows,
            self.cols,
            self.ld,
        )
    }

    /// Consumes the view, returning the sub-window at `(r0, c0)` of shape
    /// `nr × nc` with the original lifetime.
    pub fn into_sub(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'a, T> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub OOB");
        MatrixViewMut {
            // SAFETY: anchor stays inside the window for non-empty results;
            // empty windows never dereference.
            ptr: unsafe { self.ptr.add(r0 * self.ld + c0) },
            rows: nr,
            cols: nc,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Borrows the sub-window at `(r0, c0)` of shape `nr × nc`.
    pub fn sub_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_, T> {
        self.reborrow().into_sub(r0, c0, nr, nc)
    }

    /// Splits into (top `at` rows, remaining rows); the two windows are
    /// disjoint.
    pub fn split_rows_mut(self, at: usize) -> (MatrixViewMut<'a, T>, MatrixViewMut<'a, T>) {
        assert!(at <= self.rows);
        let top = MatrixViewMut {
            ptr: self.ptr,
            rows: at,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        };
        let bottom = MatrixViewMut {
            // SAFETY: `at <= rows`; empty bottom windows never dereference.
            ptr: unsafe { self.ptr.add(at * self.ld) },
            rows: self.rows - at,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Splits into (left `at` columns, remaining columns); the windows
    /// interleave by rows but cover disjoint elements.
    pub fn split_cols_mut(self, at: usize) -> (MatrixViewMut<'a, T>, MatrixViewMut<'a, T>) {
        assert!(at <= self.cols);
        let left = MatrixViewMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: at,
            ld: self.ld,
            _marker: PhantomData,
        };
        let right = MatrixViewMut {
            // SAFETY: `at <= cols`; the two windows address disjoint column
            // ranges of every row.
            ptr: unsafe { self.ptr.add(at) },
            rows: self.rows,
            cols: self.cols - at,
            ld: self.ld,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Swaps rows `a` and `b` across the full window width (DLASWP step).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(a < self.rows && b < self.rows);
        for j in 0..self.cols {
            // SAFETY: both offsets are in-bounds; a != b so they are distinct.
            unsafe {
                std::ptr::swap(self.ptr.add(a * self.ld + j), self.ptr.add(b * self.ld + j));
            }
        }
    }

    /// Copies `src` (same shape) into this window.
    pub fn copy_from(&mut self, src: &MatrixView<'_, T>) {
        assert_eq!(self.rows, src.rows());
        assert_eq!(self.cols, src.cols());
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }

    /// Fills the window with `value`.
    pub fn fill(&mut self, value: T) {
        for i in 0..self.rows {
            self.row_mut(i).fill(value);
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::Matrix;

    fn sample() -> Matrix<f64> {
        Matrix::from_fn(6, 6, |i, j| (10 * i + j) as f64)
    }

    #[test]
    fn view_at_and_row() {
        let m = sample();
        let v = m.view();
        assert_eq!(v.at(2, 3), 23.0);
        assert_eq!(v.row(1), &[10., 11., 12., 13., 14., 15.]);
    }

    #[test]
    fn sub_view_anchors_correctly() {
        let m = sample();
        let s = m.sub(2, 1, 3, 2);
        assert_eq!((s.rows(), s.cols()), (3, 2));
        assert_eq!(s.at(0, 0), 21.0);
        assert_eq!(s.at(2, 1), 42.0);
    }

    #[test]
    fn split_rows_and_cols_cover_everything() {
        let m = sample();
        let (top, bot) = m.view().split_rows(2);
        assert_eq!(top.rows(), 2);
        assert_eq!(bot.at(0, 0), 20.0);
        let (l, r) = m.view().split_cols(4);
        assert_eq!(l.cols(), 4);
        assert_eq!(r.at(0, 0), 4.0);
        assert_eq!(r.at(5, 1), 55.0);
    }

    #[test]
    fn mut_split_cols_disjoint_writes() {
        let mut m = sample();
        let (mut l, mut r) = m.view_mut().split_cols_mut(3);
        l.set(0, 0, -1.0);
        r.set(0, 0, -2.0);
        r.set(5, 2, -3.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(0, 3)], -2.0);
        assert_eq!(m[(5, 5)], -3.0);
    }

    #[test]
    fn mut_split_rows_disjoint_writes() {
        let mut m = sample();
        let (mut t, mut b) = m.view_mut().split_rows_mut(4);
        t.row_mut(3).fill(7.0);
        b.row_mut(0).fill(8.0);
        assert_eq!(m.row(3), &[7.0; 6]);
        assert_eq!(m.row(4), &[8.0; 6]);
    }

    #[test]
    fn swap_rows_in_sub_window_leaves_rest() {
        let mut m = sample();
        let mut s = m.sub_mut(1, 2, 4, 3);
        s.swap_rows(0, 3);
        // row 1 cols 2..5 swapped with row 4 cols 2..5
        assert_eq!(m[(1, 2)], 42.0);
        assert_eq!(m[(4, 4)], 14.0);
        // outside the window untouched
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m[(4, 5)], 45.0);
    }

    #[test]
    fn copy_from_and_fill() {
        let src = sample();
        let mut dst = Matrix::<f64>::zeros(6, 6);
        dst.view_mut().copy_from(&src.view());
        assert!(dst.approx_eq(&src, 0.0));
        dst.sub_mut(0, 0, 2, 2).fill(5.0);
        assert_eq!(dst[(1, 1)], 5.0);
        assert_eq!(dst[(2, 2)], 22.0);
    }

    #[test]
    fn to_matrix_copies_window() {
        let m = sample();
        let s = m.sub(3, 3, 2, 2).to_matrix();
        assert_eq!(s[(0, 0)], 33.0);
        assert_eq!(s[(1, 1)], 44.0);
    }

    #[test]
    fn empty_windows_are_fine() {
        let m = Matrix::<f64>::zeros(4, 4);
        let v = m.sub(4, 0, 0, 4);
        assert!(v.is_empty());
        let v2 = m.sub(0, 4, 4, 0);
        assert!(v2.is_empty());
    }
}
