//! Scalar abstraction over `f32`/`f64`.
//!
//! The paper optimizes both DGEMM and SGEMM with the same structure
//! (Section III-A: "While our focus is on DGEMM, we apply the same
//! optimizations to SGEMM as well"), so the kernel and packing code in
//! `phi-blas` is generic over this trait.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type usable by the dense kernels.
pub trait Scalar:
    Copy
    + Default
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon (distance from 1.0 to the next representable value).
    const EPSILON: Self;
    /// Size of one element in bytes (8 for f64, 4 for f32) — used by the
    /// bandwidth and cache-occupancy models.
    const BYTES: usize;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused (or contracted) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Widening conversion to `f64` for accumulation in norms/residuals.
    fn to_f64(self) -> f64;
    /// Narrowing conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// IEEE max that ignores NaN ordering pitfalls for our use (inputs are
    /// finite in all kernels).
    fn max(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const BYTES: usize = 8;

    fn abs(self) -> Self {
        f64::abs(self)
    }
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const BYTES: usize = 4;

    fn abs(self) -> Self {
        f32::abs(self)
    }
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Scalar>() {
        let x = T::from_f64(-2.5);
        assert_eq!(x.abs().to_f64(), 2.5);
        assert_eq!(T::ONE.to_f64(), 1.0);
        assert_eq!(T::ZERO.to_f64(), 0.0);
        let fma = T::from_f64(2.0).mul_add(T::from_f64(3.0), T::ONE);
        assert_eq!(fma.to_f64(), 7.0);
    }

    #[test]
    fn f64_impl() {
        generic_roundtrip::<f64>();
        assert_eq!(<f64 as Scalar>::BYTES, 8);
    }

    #[test]
    fn f32_impl() {
        generic_roundtrip::<f32>();
        assert_eq!(<f32 as Scalar>::BYTES, 4);
    }

    #[test]
    fn max_picks_larger() {
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::max(3.0f32, 2.0), 3.0);
    }
}
