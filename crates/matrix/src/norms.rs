//! Vector and matrix norms.
//!
//! Accumulation happens in `f64` regardless of the element type so the
//! residual test in [`crate::residual`] is meaningful for `f32` problems
//! too.

use crate::scalar::Scalar;
use crate::view::MatrixView;

/// ∞-norm of a vector: max |x_i|.
pub fn vec_norm_inf<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.to_f64().abs()).fold(0.0, f64::max)
}

/// 1-norm of a vector: Σ |x_i|.
pub fn vec_norm_one<T: Scalar>(x: &[T]) -> f64 {
    x.iter().map(|v| v.to_f64().abs()).sum()
}

/// 2-norm of a vector.
pub fn vec_norm_two<T: Scalar>(x: &[T]) -> f64 {
    x.iter()
        .map(|v| v.to_f64() * v.to_f64())
        .sum::<f64>()
        .sqrt()
}

/// ∞-norm of a matrix: max row sum of |a_ij| (the norm HPL's residual
/// formula uses).
pub fn mat_norm_inf<T: Scalar>(a: &MatrixView<'_, T>) -> f64 {
    (0..a.rows())
        .map(|i| a.row(i).iter().map(|v| v.to_f64().abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// 1-norm of a matrix: max column sum of |a_ij|.
pub fn mat_norm_one<T: Scalar>(a: &MatrixView<'_, T>) -> f64 {
    let mut sums = vec![0.0f64; a.cols()];
    for i in 0..a.rows() {
        for (j, v) in a.row(i).iter().enumerate() {
            sums[j] += v.to_f64().abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Frobenius norm of a matrix.
pub fn mat_norm_fro<T: Scalar>(a: &MatrixView<'_, T>) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..a.rows() {
        for v in a.row(i) {
            let x = v.to_f64();
            acc += x * x;
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn vector_norms() {
        let x = [3.0f64, -4.0, 1.0];
        assert_eq!(vec_norm_inf(&x), 4.0);
        assert_eq!(vec_norm_one(&x), 8.0);
        assert!((vec_norm_two(&x) - 26.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn matrix_norms_small_example() {
        // [[1, -2], [-3, 4]]
        let m = Matrix::<f64>::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(mat_norm_inf(&m.view()), 7.0); // row 1: 3+4
        assert_eq!(mat_norm_one(&m.view()), 6.0); // col 1: 2+4
        assert!((mat_norm_fro(&m.view()) - 30.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn inf_norm_of_transpose_is_one_norm() {
        let m = crate::MatGen::new(1).matrix::<f64>(9, 9);
        let t = m.transposed();
        assert!((mat_norm_inf(&m.view()) - mat_norm_one(&t.view())).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_zero() {
        let m = Matrix::<f64>::zeros(0, 0);
        assert_eq!(mat_norm_inf(&m.view()), 0.0);
        assert_eq!(vec_norm_inf::<f64>(&[]), 0.0);
    }
}
