//! Owned dense matrices.
//!
//! Storage is **row-major** with an explicit leading dimension (`ld`),
//! matching the convention of the paper's DGEMM ("Our DGEMM kernel assumes
//! that all three matrices are in row-major format", Section III-A).
//! Column-major callers convert via [`Matrix::transposed`], exactly as the
//! paper's footnote 3 derives column-major GEMM from the row-major kernel.

use crate::aligned::AlignedBuf;
use crate::scalar::Scalar;
use crate::view::{MatrixView, MatrixViewMut};

/// An owned `rows × cols` dense matrix in row-major order with leading
/// dimension `ld ≥ cols`, backed by a 64-byte-aligned buffer.
#[derive(Clone)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    ld: usize,
    buf: AlignedBuf<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a zero matrix. The leading dimension is padded up to a
    /// multiple of 8 elements so every row starts 64-byte aligned for f64
    /// (the Knights Corner vector width).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let ld = if cols == 0 { 0 } else { (cols + 7) & !7 };
        Self::zeros_with_ld(rows, cols, ld)
    }

    /// Creates a zero matrix with an explicit leading dimension.
    ///
    /// # Panics
    /// Panics if `ld < cols` (unless both are zero).
    pub fn zeros_with_ld(rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= cols, "leading dimension {ld} < cols {cols}");
        let buf = AlignedBuf::zeroed(rows.checked_mul(ld).expect("matrix size overflow"));
        Self {
            rows,
            cols,
            ld,
            buf,
        }
    }

    /// Builds a matrix from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from nested row slices. All rows must have the same
    /// length.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        assert!(
            rows.iter().all(|r| r.len() == ncols),
            "ragged rows in Matrix::from_rows"
        );
        Self::from_fn(nrows, ncols, |i, j| rows[i][j])
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { T::ONE } else { T::ZERO })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (row stride in elements).
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Borrow row `i` (only the `cols` live elements, not the padding).
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows);
        &self.buf[i * self.ld..i * self.ld + self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows);
        let (ld, cols) = (self.ld, self.cols);
        &mut self.buf[i * ld..i * ld + cols]
    }

    /// Underlying storage including padding (length `rows * ld`).
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Mutable underlying storage including padding.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf
    }

    /// Immutable view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_, T> {
        MatrixView::new(&self.buf, self.rows, self.cols, self.ld)
    }

    /// Mutable view of the whole matrix.
    pub fn view_mut(&mut self) -> MatrixViewMut<'_, T> {
        let (rows, cols, ld) = (self.rows, self.cols, self.ld);
        MatrixViewMut::new(&mut self.buf, rows, cols, ld)
    }

    /// Immutable view of the `nr × nc` sub-matrix anchored at `(r0, c0)`.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixView<'_, T> {
        self.view().sub(r0, c0, nr, nc)
    }

    /// Mutable view of the `nr × nc` sub-matrix anchored at `(r0, c0)`.
    pub fn sub_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_, T> {
        self.view_mut().into_sub(r0, c0, nr, nc)
    }

    /// Returns the transposed matrix (fresh storage).
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Fills every live element with `value` (padding untouched).
    pub fn fill(&mut self, value: T) {
        for i in 0..self.rows {
            self.row_mut(i).fill(value);
        }
    }

    /// Swaps rows `a` and `b` in full width (used by DLASWP).
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(a < self.rows && b < self.rows);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let ld = self.ld;
        let (head, tail) = self.buf.split_at_mut(hi * ld);
        head[lo * ld..lo * ld + self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Largest absolute element difference against `other`.
    ///
    /// # Panics
    /// Panics when the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for (x, y) in self.row(i).iter().zip(other.row(i)) {
                worst = worst.max((x.to_f64() - y.to_f64()).abs());
            }
        }
        worst
    }

    /// True when all elements agree within `tol` absolutely.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.max_abs_diff(other) <= tol
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) OOB");
        &self.buf[i * self.ld + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) OOB");
        &mut self.buf[i * self.ld + j]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} (ld {})", self.rows, self.cols, self.ld)?;
        if self.rows <= 12 && self.cols <= 12 {
            for i in 0..self.rows {
                write!(f, "  [")?;
                for j in 0..self.cols {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:10.4}", self[(i, j)])?;
                }
                writeln!(f, "]")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_padding() {
        let m = Matrix::<f64>::zeros(3, 5);
        assert_eq!((m.rows(), m.cols()), (3, 5));
        assert_eq!(m.ld(), 8, "ld rounds up to vector width");
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::<f64>::from_fn(4, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(3, 2)], 32.0);
        assert_eq!(m.row(2), &[20.0, 21.0, 22.0]);
    }

    #[test]
    fn identity_is_identity() {
        let id = Matrix::<f32>::identity(5);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::<f64>::from_fn(3, 7, |i, j| (i * 7 + j) as f64);
        let tt = m.transposed().transposed();
        assert!(m.approx_eq(&tt, 0.0));
    }

    #[test]
    fn swap_rows_swaps_full_width() {
        let mut m = Matrix::<f64>::from_fn(4, 4, |i, _| i as f64);
        m.swap_rows(0, 3);
        assert_eq!(m.row(0), &[3.0; 4]);
        assert_eq!(m.row(3), &[0.0; 4]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[1.0; 4]);
    }

    #[test]
    fn explicit_ld_is_respected() {
        let mut m = Matrix::<f64>::zeros_with_ld(2, 3, 10);
        m[(1, 2)] = 9.0;
        assert_eq!(m.ld(), 10);
        assert_eq!(m.as_slice()[12], 9.0);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn bad_ld_panics() {
        let _ = Matrix::<f64>::zeros_with_ld(2, 8, 4);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = Matrix::<f64>::from_fn(3, 3, |i, j| (i + j) as f64);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b[(2, 1)] += 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert!(!a.approx_eq(&b, 0.1));
        assert!(a.approx_eq(&b, 0.3));
    }

    #[test]
    fn zero_sized_matrices() {
        let m = Matrix::<f64>::zeros(0, 0);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.as_slice().len(), 0);
        let n = Matrix::<f64>::zeros(4, 0);
        assert_eq!(n.ld(), 0);
    }
}
