//! HPL-style pseudo-random matrix generation.
//!
//! The HPL benchmark fills its coefficient matrix and right-hand side with
//! a linear congruential generator so that every process in a P×Q grid can
//! generate exactly the elements it owns without communication: the LCG
//! supports O(log k) "jump-ahead" to any position in the stream
//! (HPL's `HPL_jumpit`). We reproduce that scheme with a 64-bit LCG.
//!
//! Elements are mapped to the stream in column-major order (HPL's
//! convention), and every draw is converted to a uniform value in
//! `[-0.5, 0.5)` — the distribution HPL uses to keep LU growth modest.

use crate::dense::Matrix;
use crate::scalar::Scalar;

/// Knuth's MMIX multiplier — a full-period 64-bit LCG multiplier.
const MULT: u64 = 6364136223846793005;
/// MMIX increment (any odd value gives full period with `MULT`).
const ADD: u64 = 1442695040888963407;

/// A 64-bit linear congruential generator with O(log k) jump-ahead.
///
/// `state_{n+1} = MULT * state_n + ADD (mod 2^64)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HplRng {
    state: u64,
}

impl HplRng {
    /// Creates a generator from a seed. Seeds are decorrelated by one
    /// initial step so that seed 0 and seed 1 do not produce near-identical
    /// leading values.
    pub fn new(seed: u64) -> Self {
        let mut rng = Self { state: seed };
        rng.state = rng.state.wrapping_mul(MULT).wrapping_add(ADD);
        rng
    }

    /// Advances one step and returns the raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULT).wrapping_add(ADD);
        self.state
    }

    /// Advances one step and returns a uniform value in `[-0.5, 0.5)`.
    pub fn next_value(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0,1).
        let bits = self.next_u64() >> 11;
        (bits as f64) * (1.0 / (1u64 << 53) as f64) - 0.5
    }

    /// Jumps `k` steps forward in O(log k) by exponentiating the affine map
    /// `(a, c) -> (a^2, (a+1)c)` — the same trick HPL's `HPL_jumpit` uses.
    pub fn jump(&mut self, mut k: u64) {
        let mut mult_acc: u64 = 1;
        let mut add_acc: u64 = 0;
        let mut cur_mult = MULT;
        let mut cur_add = ADD;
        while k > 0 {
            if k & 1 == 1 {
                mult_acc = mult_acc.wrapping_mul(cur_mult);
                add_acc = add_acc.wrapping_mul(cur_mult).wrapping_add(cur_add);
            }
            cur_add = cur_mult.wrapping_add(1).wrapping_mul(cur_add);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            k >>= 1;
        }
        self.state = self.state.wrapping_mul(mult_acc).wrapping_add(add_acc);
    }

    /// A generator positioned at absolute stream index `k` for `seed`.
    pub fn at(seed: u64, k: u64) -> Self {
        let mut rng = Self::new(seed);
        rng.jump(k);
        rng
    }
}

/// Deterministic generator of HPL test problems.
#[derive(Clone, Debug)]
pub struct MatGen {
    seed: u64,
}

impl MatGen {
    /// Creates a generator for a given benchmark seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The stream index of global element `(i, j)` of an `n_global`-row
    /// matrix (column-major element numbering, as in HPL).
    fn index(&self, i: usize, j: usize, n_global_rows: usize) -> u64 {
        (j as u64) * (n_global_rows as u64) + i as u64
    }

    /// Generates the full `rows × cols` matrix.
    pub fn matrix<T: Scalar>(&self, rows: usize, cols: usize) -> Matrix<T> {
        let mut m = Matrix::zeros(rows, cols);
        self.fill_window(&mut m, 0, 0, rows);
        m
    }

    /// Fills `m` with the elements the window at global offset
    /// `(row0, col0)` owns, for a matrix with `n_global_rows` global rows.
    /// Used by the multi-node path where each process generates only its
    /// local blocks.
    pub fn fill_window<T: Scalar>(
        &self,
        m: &mut Matrix<T>,
        row0: usize,
        col0: usize,
        n_global_rows: usize,
    ) {
        for j in 0..m.cols() {
            let mut rng = HplRng::at(self.seed, self.index(row0, col0 + j, n_global_rows));
            for i in 0..m.rows() {
                m[(i, j)] = T::from_f64(rng.next_value());
            }
        }
    }

    /// Generates an n-element right-hand-side vector. It draws from the
    /// column just past the matrix, the way HPL appends `b` as column
    /// `n` of the augmented matrix.
    pub fn rhs<T: Scalar>(&self, n: usize) -> Vec<T> {
        let mut rng = HplRng::at(self.seed, self.index(0, n, n));
        (0..n).map(|_| T::from_f64(rng.next_value())).collect()
    }

    /// Generates a diagonally-dominant variant used by tests that need a
    /// well-conditioned matrix without pivot growth concerns.
    pub fn matrix_dd<T: Scalar>(&self, n: usize) -> Matrix<T> {
        let mut m = self.matrix::<T>(n, n);
        for i in 0..n {
            let boost = T::from_f64(n as f64);
            let d = m[(i, i)];
            m[(i, i)] = d + if d >= T::ZERO { boost } else { -boost };
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_matches_sequential_stepping() {
        for k in [0u64, 1, 2, 3, 17, 64, 1000, 12345] {
            let mut seq = HplRng::new(42);
            for _ in 0..k {
                seq.next_u64();
            }
            let mut jmp = HplRng::new(42);
            jmp.jump(k);
            assert_eq!(seq, jmp, "jump({k})");
        }
    }

    #[test]
    fn values_are_in_range_and_nontrivial() {
        let mut rng = HplRng::new(7);
        let vals: Vec<f64> = (0..1000).map(|_| rng.next_value()).collect();
        assert!(vals.iter().all(|v| (-0.5..0.5).contains(v)));
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        let distinct: std::collections::HashSet<u64> = vals.iter().map(|v| v.to_bits()).collect();
        assert!(distinct.len() > 990);
    }

    #[test]
    fn distributed_generation_matches_global() {
        let gen = MatGen::new(99);
        let full = gen.matrix::<f64>(16, 16);
        // Generate the (8..16, 4..12) window independently.
        let mut window = Matrix::<f64>::zeros(8, 8);
        gen.fill_window(&mut window, 8, 4, 16);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(window[(i, j)], full[(8 + i, 4 + j)]);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = MatGen::new(5).matrix::<f64>(10, 10);
        let b = MatGen::new(5).matrix::<f64>(10, 10);
        let c = MatGen::new(6).matrix::<f64>(10, 10);
        assert!(a.approx_eq(&b, 0.0));
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn dd_matrix_is_diagonally_dominant() {
        let m = MatGen::new(3).matrix_dd::<f64>(32);
        for i in 0..32 {
            let off: f64 = (0..32).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            assert!(m[(i, i)].abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn rhs_is_deterministic() {
        let g = MatGen::new(11);
        assert_eq!(g.rhs::<f64>(32), g.rhs::<f64>(32));
    }
}
