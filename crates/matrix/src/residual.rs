//! The HPL solution-acceptance test.
//!
//! After solving `Ax = b`, HPL accepts the run when the scaled residual
//!
//! ```text
//! ||Ax - b||_inf / (eps * (||A||_inf * ||x||_inf + ||b||_inf) * N) < threshold
//! ```
//!
//! with `threshold = 16`. Every Linpack flavour in this workspace — native,
//! hybrid, multi-node — funnels its numeric-backend solution through this
//! check, exactly as the benchmark rules require.

use crate::norms::{mat_norm_inf, vec_norm_inf};
use crate::scalar::Scalar;
use crate::view::MatrixView;

/// HPL's acceptance threshold for the scaled residual.
pub const HPL_THRESHOLD: f64 = 16.0;

/// Outcome of the residual check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResidualReport {
    /// `||Ax - b||_inf`
    pub raw_residual: f64,
    /// The scaled residual tested against [`HPL_THRESHOLD`].
    pub scaled_residual: f64,
    /// Whether the run passes HPL's criterion.
    pub passed: bool,
}

/// Computes `y = A x` without depending on `phi-blas` (which sits above
/// this crate).
fn matvec<T: Scalar>(a: &MatrixView<'_, T>, x: &[T]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len());
    (0..a.rows())
        .map(|i| {
            a.row(i)
                .iter()
                .zip(x)
                .map(|(aij, xj)| aij.to_f64() * xj.to_f64())
                .sum()
        })
        .collect()
}

/// Evaluates the HPL scaled residual for a computed solution `x` of
/// `A x = b`, where `a` is the **original** (unfactored) matrix.
///
/// # Panics
/// Panics on shape mismatch.
pub fn hpl_residual<T: Scalar>(a: &MatrixView<'_, T>, x: &[T], b: &[T]) -> ResidualReport {
    assert_eq!(a.rows(), a.cols(), "residual requires a square system");
    assert_eq!(a.rows(), b.len());
    let n = a.rows();
    if n == 0 {
        return ResidualReport {
            raw_residual: 0.0,
            scaled_residual: 0.0,
            passed: true,
        };
    }
    let ax = matvec(a, x);
    let raw = ax
        .iter()
        .zip(b)
        .map(|(axi, bi)| (axi - bi.to_f64()).abs())
        .fold(0.0, f64::max);
    let denom =
        T::EPSILON.to_f64() * (mat_norm_inf(a) * vec_norm_inf(x) + vec_norm_inf(b)) * n as f64;
    let scaled = if denom == 0.0 {
        if raw == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        raw / denom
    };
    ResidualReport {
        raw_residual: raw,
        scaled_residual: scaled,
        passed: scaled < HPL_THRESHOLD,
    }
}

/// Convenience wrapper that also reports the achieved forward error when the
/// true solution is known (tests only; HPL itself never knows `x_true`).
pub fn solve_quality<T: Scalar>(
    a: &MatrixView<'_, T>,
    x: &[T],
    b: &[T],
    x_true: Option<&[T]>,
) -> (ResidualReport, Option<f64>) {
    let report = hpl_residual(a, x, b);
    let fwd = x_true.map(|xt| {
        x.iter()
            .zip(xt)
            .map(|(xi, ti)| (xi.to_f64() - ti.to_f64()).abs())
            .fold(0.0, f64::max)
    });
    (report, fwd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatGen, Matrix};

    #[test]
    fn exact_solution_passes_with_zero_residual() {
        let a = Matrix::<f64>::identity(8);
        let b: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let report = hpl_residual(&a.view(), &b, &b);
        assert_eq!(report.raw_residual, 0.0);
        assert!(report.passed);
    }

    #[test]
    fn garbage_solution_fails() {
        let a = MatGen::new(1).matrix_dd::<f64>(16);
        let b = MatGen::new(2).rhs::<f64>(16);
        let x = vec![1.0e6; 16];
        let report = hpl_residual(&a.view(), &x, &b);
        assert!(!report.passed);
        assert!(report.scaled_residual > HPL_THRESHOLD);
    }

    #[test]
    fn small_perturbation_still_passes() {
        // x solves I x = b exactly; perturb by a few ulps.
        let a = Matrix::<f64>::identity(32);
        let b: Vec<f64> = (0..32).map(|i| 1.0 + i as f64 / 7.0).collect();
        let x: Vec<f64> = b.iter().map(|v| v * (1.0 + 4.0 * f64::EPSILON)).collect();
        let report = hpl_residual(&a.view(), &x, &b);
        assert!(report.passed, "scaled = {}", report.scaled_residual);
    }

    #[test]
    fn zero_sized_system_passes() {
        let a = Matrix::<f64>::zeros(0, 0);
        let report = hpl_residual(&a.view(), &[], &[]);
        assert!(report.passed);
    }

    #[test]
    fn forward_error_reported() {
        let a = Matrix::<f64>::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![1.0, 2.0, 3.0, 4.5];
        let (_, fwd) = solve_quality(&a.view(), &x, &b, Some(&b));
        assert_eq!(fwd, Some(0.5));
    }
}
