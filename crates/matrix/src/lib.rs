//! Dense matrix substrate for the `phi-hpl` Linpack reproduction.
//!
//! This crate provides the storage layer shared by every other crate in the
//! workspace:
//!
//! * [`Matrix`] — an owned, row-major, 64-byte-aligned dense matrix with an
//!   explicit leading dimension, mirroring the buffers HPL operates on.
//! * [`MatrixView`] / [`MatrixViewMut`] — borrowed rectangular windows with
//!   the splitting operations LU factorization needs (panel / trailing
//!   sub-matrix decompositions).
//! * [`gen`] — the HPL-style pseudo-random matrix generator used to build
//!   reproducible right-hand sides and coefficient matrices.
//! * [`norms`] / [`residual`] — the ∞/1/Frobenius norms and the scaled
//!   residual acceptance test from the HPL benchmark driver.
//!
//! The matrices here are deliberately plain: all the architecture-specific
//! packing (Knights Corner tile formats, Fig. 3 of the paper) lives in
//! `phi-blas`, which consumes these types.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod aligned;
pub mod dense;
pub mod gen;
pub mod norms;
pub mod residual;
pub mod scalar;
pub mod view;

pub use aligned::AlignedBuf;
pub use dense::Matrix;
pub use gen::{HplRng, MatGen};
pub use residual::{hpl_residual, solve_quality, ResidualReport};
pub use scalar::Scalar;
pub use view::{MatrixView, MatrixViewMut};
