//! 64-byte-aligned heap buffers.
//!
//! Knights Corner's vector unit operates on 64-byte (512-bit) registers and
//! its L1/L2 lines are 64 bytes; the paper's DGEMM kernels assume tile
//! storage starts on a cache-line boundary so that every `vmovapd` and
//! `vprefetch` touches whole lines. [`AlignedBuf`] provides that guarantee
//! for the emulated kernels in `phi-knc` and the packed-tile buffers in
//! `phi-blas`.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line / vector-register alignment used throughout the workspace.
pub const ALIGN: usize = 64;

/// A heap allocation of `T`s guaranteed to start on a 64-byte boundary.
///
/// Unlike `Vec<T>`, the length is fixed at construction; the buffer is
/// zero-initialized. `T` must be a plain scalar (`f32`/`f64`/integers) —
/// the type is only instantiated with `Copy` types that are valid when
/// zero-filled.
pub struct AlignedBuf<T: Copy + Default> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AlignedBuf owns its allocation exclusively, like Vec<T>.
unsafe impl<T: Copy + Default + Send> Send for AlignedBuf<T> {}
unsafe impl<T: Copy + Default + Sync> Sync for AlignedBuf<T> {}

impl<T: Copy + Default> AlignedBuf<T> {
    /// Allocates a zero-filled buffer of `len` elements aligned to
    /// [`ALIGN`] bytes. A `len` of zero is allowed and performs no
    /// allocation.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is a scalar type).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        Self { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        let size = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("AlignedBuf size overflow");
        let align = ALIGN.max(std::mem::align_of::<T>());
        Layout::from_size_align(size, align).expect("invalid AlignedBuf layout")
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw pointer to the first element.
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer to the first element.
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }
}

impl<T: Copy + Default> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the same layout in `zeroed`.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl<T: Copy + Default> Deref for AlignedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: ptr/len describe a live allocation of `len` initialized Ts.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy + Default> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as above, and we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy + Default> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.copy_from_slice(self);
        out
    }
}

impl<T: Copy + Default + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .field("align", &ALIGN)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_aligned_and_zero() {
        let buf = AlignedBuf::<f64>::zeroed(123);
        assert_eq!(buf.len(), 123);
        assert_eq!(buf.as_ptr() as usize % ALIGN, 0);
        assert!(buf.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_buffer_is_usable() {
        let buf = AlignedBuf::<f32>::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(&buf[..], &[] as &[f32]);
    }

    #[test]
    fn writes_round_trip() {
        let mut buf = AlignedBuf::<f64>::zeroed(16);
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = i as f64;
        }
        assert_eq!(buf[15], 15.0);
        let cloned = buf.clone();
        assert_eq!(&cloned[..], &buf[..]);
        assert_eq!(cloned.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn many_allocations_stay_aligned() {
        for len in [1usize, 7, 8, 9, 31, 64, 1000] {
            let buf = AlignedBuf::<f32>::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % ALIGN, 0, "len={len}");
            assert_eq!(buf.len(), len);
        }
    }
}
