//! Property tests for the matrix substrate: views must be exact windows,
//! splits must tile without aliasing, the generator must be stream-stable,
//! and the residual check must accept true solutions and reject corrupted
//! ones.

use phi_matrix::{hpl_residual, HplRng, MatGen, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sub-views window the parent exactly.
    #[test]
    fn sub_views_are_exact_windows(
        rows in 1usize..24,
        cols in 1usize..24,
        frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let m = MatGen::new(seed).matrix::<f64>(rows, cols);
        let r0 = ((rows as f64) * frac * 0.5) as usize;
        let c0 = ((cols as f64) * frac * 0.3) as usize;
        let nr = rows - r0;
        let nc = cols - c0;
        let v = m.sub(r0, c0, nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                prop_assert_eq!(v.at(i, j), m[(r0 + i, c0 + j)]);
            }
        }
        let copied = v.to_matrix();
        prop_assert_eq!(copied.rows(), nr);
        for i in 0..nr {
            prop_assert_eq!(copied.row(i), v.row(i));
        }
    }

    /// Row and column splits tile the matrix: writing disjoint constants
    /// through the two halves colors every element exactly once.
    #[test]
    fn mut_splits_tile_without_aliasing(
        rows in 1usize..16,
        cols in 1usize..16,
        at_row in 0usize..16,
        at_col in 0usize..16,
    ) {
        let at_r = at_row.min(rows);
        let at_c = at_col.min(cols);

        let mut m = Matrix::<f64>::zeros(rows, cols);
        {
            let (mut top, mut bottom) = m.view_mut().split_rows_mut(at_r);
            top.fill(1.0);
            bottom.fill(2.0);
        }
        for i in 0..rows {
            for j in 0..cols {
                let expect = if i < at_r { 1.0 } else { 2.0 };
                prop_assert_eq!(m[(i, j)], expect);
            }
        }

        let mut m2 = Matrix::<f64>::zeros(rows, cols);
        {
            let (mut l, mut r) = m2.view_mut().split_cols_mut(at_c);
            l.fill(3.0);
            r.fill(4.0);
        }
        for i in 0..rows {
            for j in 0..cols {
                let expect = if j < at_c { 3.0 } else { 4.0 };
                prop_assert_eq!(m2[(i, j)], expect);
            }
        }
    }

    /// swap_rows is an involution and touches only the two rows.
    #[test]
    fn swap_rows_involution(
        rows in 2usize..16,
        cols in 1usize..12,
        a in 0usize..16,
        b in 0usize..16,
        seed in 0u64..1000,
    ) {
        let a = a % rows;
        let b = b % rows;
        let orig = MatGen::new(seed).matrix::<f64>(rows, cols);
        let mut m = orig.clone();
        m.swap_rows(a, b);
        if a != b {
            prop_assert_eq!(m.row(a), orig.row(b));
            prop_assert_eq!(m.row(b), orig.row(a));
        }
        for i in (0..rows).filter(|&i| i != a && i != b) {
            prop_assert_eq!(m.row(i), orig.row(i));
        }
        m.swap_rows(a, b);
        prop_assert!(m.approx_eq(&orig, 0.0));
    }

    /// The LCG jump is exactly k sequential steps, for random k and seeds.
    #[test]
    fn rng_jump_consistency(seed in any::<u64>(), k in 0u64..5000) {
        let mut seq = HplRng::new(seed);
        for _ in 0..k {
            seq.next_u64();
        }
        let mut jmp = HplRng::new(seed);
        jmp.jump(k);
        prop_assert_eq!(seq, jmp);
    }

    /// Distributed generation tiles the global matrix for any window.
    #[test]
    fn window_generation_matches_global(
        n in 2usize..24,
        r0 in 0usize..24,
        c0 in 0usize..24,
        seed in 0u64..1000,
    ) {
        let r0 = r0 % n;
        let c0 = c0 % n;
        let gen = MatGen::new(seed);
        let full = gen.matrix::<f64>(n, n);
        let mut win = Matrix::<f64>::zeros(n - r0, n - c0);
        gen.fill_window(&mut win, r0, c0, n);
        for i in 0..n - r0 {
            for j in 0..n - c0 {
                prop_assert_eq!(win[(i, j)], full[(r0 + i, c0 + j)]);
            }
        }
    }

    /// The residual check accepts exact identity-system solutions and
    /// rejects any solution with one sufficiently corrupted entry.
    #[test]
    fn residual_discriminates(
        n in 1usize..32,
        idx in 0usize..32,
        seed in 0u64..1000,
    ) {
        let idx = idx % n;
        let a = Matrix::<f64>::identity(n);
        let b = MatGen::new(seed).rhs::<f64>(n);
        let report = hpl_residual(&a.view(), &b, &b);
        prop_assert!(report.passed);
        prop_assert_eq!(report.raw_residual, 0.0);

        let mut bad = b.clone();
        bad[idx] += 1.0 + bad[idx].abs();
        let report = hpl_residual(&a.view(), &bad, &b);
        prop_assert!(!report.passed, "corruption must fail: {}", report.scaled_residual);
    }
}
