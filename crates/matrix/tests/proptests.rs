//! Property tests for the matrix substrate: views must be exact windows,
//! splits must tile without aliasing, the generator must be stream-stable,
//! and the residual check must accept true solutions and reject corrupted
//! ones.
//!
//! Driven by the in-repo deterministic [`HplRng`] (no external proptest
//! dependency): each property is checked over a fixed-seed sweep of
//! randomized cases, so failures are reproducible bit-identically.

use phi_matrix::{hpl_residual, HplRng, MatGen, Matrix};

/// Deterministic case generator for the sweeps below.
struct Cases(HplRng);

impl Cases {
    fn new(seed: u64) -> Self {
        Self(HplRng::new(seed))
    }
    /// Uniform integer in `[lo, hi)`.
    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.0.next_u64() % (hi - lo) as u64) as usize
    }
    /// Uniform float in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        self.0.next_value() + 0.5
    }
    fn seed(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Sub-views window the parent exactly.
#[test]
fn sub_views_are_exact_windows() {
    let mut cases = Cases::new(0xA11CE);
    for _ in 0..96 {
        let rows = cases.index(1, 24);
        let cols = cases.index(1, 24);
        let frac = cases.unit();
        let m = MatGen::new(cases.seed()).matrix::<f64>(rows, cols);
        let r0 = ((rows as f64) * frac * 0.5) as usize;
        let c0 = ((cols as f64) * frac * 0.3) as usize;
        let nr = rows - r0;
        let nc = cols - c0;
        let v = m.sub(r0, c0, nr, nc);
        for i in 0..nr {
            for j in 0..nc {
                assert_eq!(v.at(i, j), m[(r0 + i, c0 + j)]);
            }
        }
        let copied = v.to_matrix();
        assert_eq!(copied.rows(), nr);
        for i in 0..nr {
            assert_eq!(copied.row(i), v.row(i));
        }
    }
}

/// Row and column splits tile the matrix: writing disjoint constants
/// through the two halves colors every element exactly once.
#[test]
fn mut_splits_tile_without_aliasing() {
    let mut cases = Cases::new(0xB0B);
    for _ in 0..96 {
        let rows = cases.index(1, 16);
        let cols = cases.index(1, 16);
        let at_r = cases.index(0, 16).min(rows);
        let at_c = cases.index(0, 16).min(cols);

        let mut m = Matrix::<f64>::zeros(rows, cols);
        {
            let (mut top, mut bottom) = m.view_mut().split_rows_mut(at_r);
            top.fill(1.0);
            bottom.fill(2.0);
        }
        for i in 0..rows {
            for j in 0..cols {
                let expect = if i < at_r { 1.0 } else { 2.0 };
                assert_eq!(m[(i, j)], expect);
            }
        }

        let mut m2 = Matrix::<f64>::zeros(rows, cols);
        {
            let (mut l, mut r) = m2.view_mut().split_cols_mut(at_c);
            l.fill(3.0);
            r.fill(4.0);
        }
        for i in 0..rows {
            for j in 0..cols {
                let expect = if j < at_c { 3.0 } else { 4.0 };
                assert_eq!(m2[(i, j)], expect);
            }
        }
    }
}

/// swap_rows is an involution and touches only the two rows.
#[test]
fn swap_rows_involution() {
    let mut cases = Cases::new(0x5EED);
    for _ in 0..96 {
        let rows = cases.index(2, 16);
        let cols = cases.index(1, 12);
        let a = cases.index(0, 16) % rows;
        let b = cases.index(0, 16) % rows;
        let orig = MatGen::new(cases.seed()).matrix::<f64>(rows, cols);
        let mut m = orig.clone();
        m.swap_rows(a, b);
        if a != b {
            assert_eq!(m.row(a), orig.row(b));
            assert_eq!(m.row(b), orig.row(a));
        }
        for i in (0..rows).filter(|&i| i != a && i != b) {
            assert_eq!(m.row(i), orig.row(i));
        }
        m.swap_rows(a, b);
        assert!(m.approx_eq(&orig, 0.0));
    }
}

/// The LCG jump is exactly k sequential steps, for random k and seeds.
#[test]
fn rng_jump_consistency() {
    let mut cases = Cases::new(0x10C6);
    for _ in 0..96 {
        let seed = cases.seed();
        let k = cases.index(0, 5000) as u64;
        let mut seq = HplRng::new(seed);
        for _ in 0..k {
            seq.next_u64();
        }
        let mut jmp = HplRng::new(seed);
        jmp.jump(k);
        assert_eq!(seq, jmp);
    }
}

/// Distributed generation tiles the global matrix for any window.
#[test]
fn window_generation_matches_global() {
    let mut cases = Cases::new(0x71155);
    for _ in 0..96 {
        let n = cases.index(2, 24);
        let r0 = cases.index(0, 24) % n;
        let c0 = cases.index(0, 24) % n;
        let gen = MatGen::new(cases.seed());
        let full = gen.matrix::<f64>(n, n);
        let mut win = Matrix::<f64>::zeros(n - r0, n - c0);
        gen.fill_window(&mut win, r0, c0, n);
        for i in 0..n - r0 {
            for j in 0..n - c0 {
                assert_eq!(win[(i, j)], full[(r0 + i, c0 + j)]);
            }
        }
    }
}

/// The residual check accepts exact identity-system solutions and
/// rejects any solution with one sufficiently corrupted entry.
#[test]
fn residual_discriminates() {
    let mut cases = Cases::new(0xD15C);
    for _ in 0..96 {
        let n = cases.index(1, 32);
        let idx = cases.index(0, 32) % n;
        let a = Matrix::<f64>::identity(n);
        let b = MatGen::new(cases.seed()).rhs::<f64>(n);
        let report = hpl_residual(&a.view(), &b, &b);
        assert!(report.passed);
        assert_eq!(report.raw_residual, 0.0);

        let mut bad = b.clone();
        bad[idx] += 1.0 + bad[idx].abs();
        let report = hpl_residual(&a.view(), &bad, &b);
        assert!(
            !report.passed,
            "corruption must fail: {}",
            report.scaled_residual
        );
    }
}
