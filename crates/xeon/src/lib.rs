//! Sandy Bridge EP host model.
//!
//! The paper's host is a dual-socket Intel Xeon E5-2670 ("Sandy Bridge
//! EP", Table I): 2 × 8 cores × 2.6 GHz with 256-bit AVX and separate
//! multiply and add ports (4-wide DP multiply + 4-wide DP add per cycle →
//! 8 DP FLOPs/cycle/core), 128 GB DRAM at 76 GB/s STREAM, and a 6 GB/s
//! PCIe link to each coprocessor.
//!
//! In the evaluation the host only ever appears through its *throughput*
//! on a handful of kernels — MKL DGEMM (Fig. 4's bottom curve, "up to
//! 90%"), MKL SMP Linpack (Fig. 6, 277 GFLOPS = 83% at N = 30K), panel
//! factorization, DTRSM, row swapping — so the substitution for real
//! hardware is a set of calibrated throughput curves, each pinned to a
//! quoted measurement. These feed the hybrid-HPL discrete-event
//! simulation in `phi-hpl`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Hardware constants of the dual-socket host (Table I).
#[derive(Clone, Copy, Debug)]
pub struct XeonConfig {
    /// Sockets on the node (2).
    pub sockets: usize,
    /// Cores per socket (8).
    pub cores_per_socket: usize,
    /// Core clock in GHz (2.6).
    pub freq_ghz: f64,
    /// DP FLOPs per core per cycle (4-wide mul + 4-wide add = 8).
    pub dp_flops_per_cycle: f64,
    /// Achievable STREAM bandwidth, GB/s (76).
    pub stream_bw_gbs: f64,
    /// DRAM capacity in GiB (64 or 128 in Table III).
    pub dram_gib: f64,
    /// PCIe bandwidth per coprocessor link, GB/s (6 nominal).
    pub pcie_gbs: f64,
}

impl Default for XeonConfig {
    fn default() -> Self {
        Self {
            sockets: 2,
            cores_per_socket: 8,
            freq_ghz: 2.6,
            dp_flops_per_cycle: 8.0,
            stream_bw_gbs: 76.0,
            dram_gib: 64.0,
            pcie_gbs: 6.0,
        }
    }
}

impl XeonConfig {
    /// Total cores on the node.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Node peak in DP GFLOPS (Table I: 333).
    pub fn peak_gflops(&self) -> f64 {
        self.cores() as f64 * self.freq_ghz * self.dp_flops_per_cycle
    }

    /// Largest N whose f64 matrix fits in DRAM with ~10% slack — Table
    /// III's 825K runs need the 64 GB per-node memory (10×10 grid).
    pub fn max_n_per_node(&self) -> usize {
        let bytes = self.dram_gib * 1024.0 * 1024.0 * 1024.0 * 0.9;
        (bytes / 8.0).sqrt() as usize
    }
}

/// Calibrated host throughput curves.
#[derive(Clone, Copy, Debug)]
pub struct XeonModel {
    /// Hardware constants.
    pub cfg: XeonConfig,
    /// Asymptotic MKL DGEMM efficiency ("Sandy Bridge EP achieves up to
    /// 90% efficiency", Section III-B).
    pub dgemm_peak_eff: f64,
    /// Size at which DGEMM reaches half its rolloff (calibrates the small-
    /// size knee of Fig. 4's bottom curve).
    pub dgemm_knee: f64,
    /// Asymptotic MKL SMP Linpack efficiency ("277 GFLOPS which
    /// corresponds to 83%" at N = 30K, Section IV-B).
    pub hpl_peak_eff: f64,
    /// Rolloff knee for the Linpack curve (LU has more small-size
    /// overhead than DGEMM).
    pub hpl_knee: f64,
    /// Panel factorization efficiency (DGETRF is latency/bandwidth bound
    /// even on the out-of-order host, but far less than on KNC).
    pub panel_eff: f64,
    /// Serial per-column latency of host panel factorization, seconds.
    pub panel_col_latency_s: f64,
    /// DTRSM efficiency relative to peak (the NB=1200 solve is blocked
    /// and GEMM-rich, hence near-DGEMM speed; "DTRSM, which is
    /// compute-bound", Section V-A).
    pub trsm_eff: f64,
    /// Fraction of STREAM achieved by row swapping (gather/scatter).
    pub swap_bw_fraction: f64,
    /// Fraction of STREAM achieved by the pack-and-copy of offload DGEMM
    /// tiles (a streaming copy with reformatting, Section V-B step 1).
    pub pack_bw_fraction: f64,
}

impl Default for XeonModel {
    fn default() -> Self {
        Self {
            cfg: XeonConfig::default(),
            dgemm_peak_eff: 0.905,
            dgemm_knee: 160.0,
            hpl_peak_eff: 0.84,
            hpl_knee: 350.0,
            panel_eff: 0.22,
            panel_col_latency_s: 0.35e-6,
            trsm_eff: 0.6,
            swap_bw_fraction: 0.12,
            pack_bw_fraction: 0.6,
        }
    }
}

impl XeonModel {
    /// MKL DGEMM efficiency for an `n × n` problem (Fig. 4 bottom curve).
    pub fn dgemm_efficiency(&self, n: usize) -> f64 {
        let n = n as f64;
        self.dgemm_peak_eff * n / (n + self.dgemm_knee)
    }

    /// MKL DGEMM GFLOPS for an `n × n` problem.
    pub fn dgemm_gflops(&self, n: usize) -> f64 {
        self.dgemm_efficiency(n) * self.cfg.peak_gflops()
    }

    /// MKL SMP Linpack efficiency (Fig. 6 bottom curve).
    pub fn hpl_efficiency(&self, n: usize) -> f64 {
        let n = n as f64;
        self.hpl_peak_eff * n / (n + self.hpl_knee)
    }

    /// MKL SMP Linpack GFLOPS.
    pub fn hpl_gflops(&self, n: usize) -> f64 {
        self.hpl_efficiency(n) * self.cfg.peak_gflops()
    }

    /// Time of an `m × n × k` DGEMM on `cores` host cores, seconds.
    pub fn gemm_time_s(&self, m: usize, n: usize, k: usize, cores: f64) -> f64 {
        if m == 0 || n == 0 || k == 0 || cores <= 0.0 {
            return 0.0;
        }
        let eff = self.dgemm_efficiency(n.min(m).max(k / 2));
        let peak_per_core = self.freq_flops() * 1e9;
        2.0 * m as f64 * n as f64 * k as f64 / (eff.max(0.05) * peak_per_core * cores)
    }

    fn freq_flops(&self) -> f64 {
        self.cfg.freq_ghz * self.cfg.dp_flops_per_cycle
    }

    /// Host panel factorization (`m × nb`) on `cores` cores, seconds.
    pub fn panel_time_s(&self, m: usize, nb: usize, cores: f64) -> f64 {
        if m == 0 || nb == 0 {
            return 0.0;
        }
        let mf = m as f64;
        let nbf = nb as f64;
        let flops = (mf * nbf * nbf - nbf * nbf * nbf / 3.0).max(0.0);
        flops / (self.panel_eff * self.freq_flops() * 1e9 * cores.max(1.0))
            + nbf * self.panel_col_latency_s
    }

    /// DTRSM of the `nb × cols` row panel on `cores` cores, seconds.
    pub fn trsm_time_s(&self, nb: usize, cols: usize, cores: f64) -> f64 {
        let flops = nb as f64 * nb as f64 * cols as f64;
        flops / (self.trsm_eff * self.freq_flops() * 1e9 * cores.max(1.0))
    }

    /// Row swap (DLASWP) of an `nb`-deep window across `cols` columns,
    /// seconds. Bandwidth-bound on the node's DRAM; "swapping, constrained
    /// by both DRAM and interconnect bandwidth" (Section V-A).
    pub fn swap_time_s(&self, nb: usize, cols: usize) -> f64 {
        let traffic = 2.0 * 8.0 * nb as f64 * cols as f64;
        traffic / (self.cfg.stream_bw_gbs * 1e9 * self.swap_bw_fraction)
    }

    /// Pack-and-copy of an `elems`-element tile into the Knights
    /// Corner-friendly format (offload DGEMM step 1), seconds.
    pub fn pack_time_s(&self, elems: usize) -> f64 {
        let traffic = 2.0 * 8.0 * elems as f64; // read + write
        traffic / (self.cfg.stream_bw_gbs * 1e9 * self.pack_bw_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_table1() {
        let c = XeonConfig::default();
        assert_eq!(c.cores(), 16);
        assert!((c.peak_gflops() - 332.8).abs() < 0.5, "{}", c.peak_gflops());
    }

    #[test]
    fn dgemm_reaches_ninety_percent() {
        let m = XeonModel::default();
        let e = m.dgemm_efficiency(28_000);
        assert!((0.895..0.91).contains(&e), "asymptotic eff {e}");
        assert!(m.dgemm_efficiency(1_000) < e);
        // Monotone in n.
        assert!(m.dgemm_efficiency(4_000) < m.dgemm_efficiency(16_000));
    }

    #[test]
    fn hpl_30k_is_277_gflops() {
        let m = XeonModel::default();
        let gf = m.hpl_gflops(30_000);
        assert!((gf - 277.0).abs() < 3.0, "host HPL at 30K = {gf:.1}");
        let e = m.hpl_efficiency(30_000);
        assert!((e - 0.83).abs() < 0.01, "eff {e}");
    }

    #[test]
    fn hpl_trails_dgemm_by_about_seven_percent() {
        // "This is within 7% from its native DGEMM performance".
        let m = XeonModel::default();
        let gap = m.dgemm_efficiency(30_000) - m.hpl_efficiency(30_000);
        assert!((0.04..0.09).contains(&gap), "gap {gap}");
    }

    #[test]
    fn gemm_time_scales() {
        let m = XeonModel::default();
        let t1 = m.gemm_time_s(4000, 4000, 1200, 16.0);
        let t2 = m.gemm_time_s(4000, 4000, 1200, 8.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert_eq!(m.gemm_time_s(0, 10, 10, 16.0), 0.0);
    }

    #[test]
    fn panel_faster_than_knc_panel() {
        // The host's OoO cores factor panels far faster per core than KNC
        // (why hybrid HPL keeps the panel on the host, Section V).
        let m = XeonModel::default();
        let t_host = m.panel_time_s(84_000, 1200, 16.0);
        assert!(t_host > 0.0 && t_host < 10.0, "{t_host}");
    }

    #[test]
    fn swap_is_bandwidth_bound() {
        let m = XeonModel::default();
        let t = m.swap_time_s(1200, 84_000);
        // 2*8*1200*84000 bytes ≈ 1.6 GB at ~34 GB/s ≈ 47 ms.
        assert!((0.01..0.2).contains(&t), "{t}");
    }

    #[test]
    fn memory_gates_problem_size() {
        let c64 = XeonConfig::default();
        assert!(c64.max_n_per_node() > 84_000, "{}", c64.max_n_per_node());
        let c128 = XeonConfig {
            dram_gib: 128.0,
            ..XeonConfig::default()
        };
        assert!(c128.max_n_per_node() > c64.max_n_per_node());
        // Table III: N=242K on a 2x2 grid of 128 GB nodes → per-node share
        // 121K² doubles ≈ 109 GB... the paper distributes over 4 nodes:
        // (242K)²/4 * 8B ≈ 117 GB per node. Fits in 128 GB.
        let per_node = 242_000.0f64 * 242_000.0 / 4.0 * 8.0 / 1024f64.powi(3);
        assert!(per_node < 128.0 * 0.95);
    }
}
