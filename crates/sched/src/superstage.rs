//! Super-stages and thread regrouping (Section IV-A).
//!
//! A fixed thread partition creates load imbalance: "while using four
//! threads in a group may be sufficient to hide panel factorization
//! during early stages dominated by large trailing matrix updates, later
//! stages which work on smaller matrices require more threads to hide the
//! panel." The paper's extension breaks LU into **super-stages**; within
//! one, the grouping is fixed; at the boundary a (cheap, infrequent)
//! global barrier fires and groups are re-formed with more threads per
//! group.
//!
//! [`superstage_plan`] computes that schedule: given the total thread
//! count and the per-stage ratio of panel work to trailing work, it
//! doubles the group size whenever the current size can no longer hide
//! the panel.

/// One super-stage: a run of consecutive LU stages sharing a grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperStage {
    /// First stage (panel index) of the super-stage, inclusive.
    pub first_stage: usize,
    /// One past the last stage, exclusive.
    pub end_stage: usize,
    /// Threads per group within the super-stage.
    pub threads_per_group: usize,
}

impl SuperStage {
    /// Number of stages covered.
    pub fn len(&self) -> usize {
        self.end_stage - self.first_stage
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.first_stage >= self.end_stage
    }
}

/// Builds the super-stage schedule for an LU of `npanels` panels on
/// `total_threads` threads.
///
/// `panel_hide_ratio(stage, threads_per_group)` must return the ratio of
/// the stage's panel-factorization time (on one group) to the stage's
/// trailing-update time (on the whole machine); a ratio ≤ 1 means the
/// panel hides. Group sizes are drawn from the **divisor ladder** of
/// `total_threads` (so every grouping tiles the machine exactly, no
/// threads stranded), starting at `min_group` and climbing one rung
/// whenever the current size can no longer hide the panel.
pub fn superstage_plan<F>(
    npanels: usize,
    total_threads: usize,
    min_group: usize,
    panel_hide_ratio: F,
) -> Vec<SuperStage>
where
    F: Fn(usize, usize) -> f64,
{
    assert!(min_group > 0 && min_group <= total_threads);
    let ladder: Vec<usize> = (min_group..=total_threads)
        .filter(|d| total_threads.is_multiple_of(*d))
        .collect();
    assert!(
        !ladder.is_empty(),
        "min_group must not exceed total_threads"
    );
    let mut plan: Vec<SuperStage> = Vec::new();
    let mut level = 0usize;
    let mut start = 0usize;
    for stage in 0..npanels {
        // Climb while the panel is unhidden *and* the next rung actually
        // improves it: panel time is not monotone in group size (the
        // per-column synchronization grows with the cores it spans), so
        // past the sweet spot more threads make the panel slower.
        let mut needed = level;
        while needed + 1 < ladder.len()
            && panel_hide_ratio(stage, ladder[needed]) > 1.0
            && panel_hide_ratio(stage, ladder[needed + 1]) < panel_hide_ratio(stage, ladder[needed])
        {
            needed += 1;
        }
        if needed != level {
            if stage > start {
                plan.push(SuperStage {
                    first_stage: start,
                    end_stage: stage,
                    threads_per_group: ladder[level],
                });
            }
            start = stage;
            level = needed;
        }
    }
    if start < npanels {
        plan.push(SuperStage {
            first_stage: start,
            end_stage: npanels,
            threads_per_group: ladder[level],
        });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ratio_gives_single_superstage() {
        let plan = superstage_plan(100, 240, 4, |_, _| 0.5);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].first_stage, 0);
        assert_eq!(plan[0].end_stage, 100);
        assert_eq!(plan[0].threads_per_group, 4);
    }

    #[test]
    fn group_size_grows_as_matrix_shrinks() {
        // Model the real effect: trailing update shrinks quadratically
        // with stage while the panel shrinks linearly, so the hide ratio
        // grows; more threads per group reduce it.
        let npanels = 64;
        let ratio = |stage: usize, tpg: usize| {
            let remaining = (npanels - stage) as f64;
            // panel_time ∝ remaining / tpg ; update_time ∝ remaining².
            40.0 * remaining / (tpg as f64) / (remaining * remaining)
        };
        let plan = superstage_plan(npanels, 240, 4, ratio);
        assert!(plan.len() > 1, "must regroup at least once: {plan:?}");
        // Coverage: contiguous, complete, monotone group growth.
        assert_eq!(plan[0].first_stage, 0);
        assert_eq!(plan.last().unwrap().end_stage, npanels);
        for w in plan.windows(2) {
            assert_eq!(w[0].end_stage, w[1].first_stage, "contiguous");
            assert!(
                w[1].threads_per_group > w[0].threads_per_group,
                "groups only grow"
            );
        }
        // And the hide condition holds at each super-stage start (or the
        // machine is exhausted).
        for ss in &plan {
            let r = ratio(ss.first_stage, ss.threads_per_group);
            assert!(
                r <= 1.0 || ss.threads_per_group == 240,
                "stage {} unhidden: ratio {r}",
                ss.first_stage
            );
        }
    }

    #[test]
    fn group_size_caps_at_total_threads() {
        // A ratio that always exceeds 1 but improves with size climbs to
        // the top of the ladder and stops there.
        let plan = superstage_plan(10, 16, 4, |_, tpg| 100.0 / tpg as f64);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].threads_per_group, 16);
    }

    #[test]
    fn climbing_stops_at_the_panel_sweet_spot() {
        // Ratio > 1 everywhere but minimized at 8 threads: the plan must
        // not climb past the minimum even though the panel never hides.
        let plan = superstage_plan(10, 64, 4, |_, tpg| 2.0 + (tpg as f64 - 8.0).abs());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].threads_per_group, 8);
    }

    #[test]
    fn empty_lu_gives_empty_plan() {
        let plan = superstage_plan(0, 240, 4, |_, _| 0.5);
        assert!(plan.is_empty());
    }

    #[test]
    fn superstage_len_helpers() {
        let ss = SuperStage {
            first_stage: 3,
            end_stage: 7,
            threads_per_group: 8,
        };
        assert_eq!(ss.len(), 4);
        assert!(!ss.is_empty());
    }
}
