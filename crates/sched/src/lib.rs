//! The paper's scheduling machinery (Section IV-A and V-B).
//!
//! Four pieces, each usable both by the real-thread numeric backend and
//! by the discrete-event model backend in `phi-hpl`:
//!
//! * [`dag`] — the compact one-dimensional DAG of LU panels: "we
//!   represent it as a one dimensional array of the length equal to the
//!   number of panels. Each element of the array stores the current stage
//!   of the panel." `available_task` implements the look-ahead rule: a
//!   panel whose updates are complete is factored immediately, ahead of
//!   the remaining trailing updates of the previous stage.
//! * [`groups`] — fixed thread groups in which only a single **master**
//!   thread enters the critical section to fetch work, "significantly
//!   reduc\[ing\] contention" on many-core parts; plus the group-local
//!   barrier the other threads wait on.
//! * [`superstage`] — the paper's extension for load balance: LU is cut
//!   into super-stages; groups are re-formed (grown) at super-stage
//!   boundaries so later, smaller stages still hide panel factorization.
//! * [`steal`] — the two-ended tile counter of offload DGEMM: the
//!   coprocessor steals tiles forward from `C00`, the host steals
//!   backward from the last tile, "until there are no more tiles to
//!   steal" (Section V-B).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod groups;
pub mod steal;
pub mod superstage;

pub use dag::{DagScheduler, DagSnapshot, Task};
pub use groups::{run_group_scheduled, GroupPlan};
pub use steal::TileDeque;
pub use superstage::{superstage_plan, SuperStage};
