//! The compact panel DAG with dynamic look-ahead scheduling.
//!
//! The matrix is divided into `n` column panels. Two task families exist
//! (Fig. 5b):
//!
//! * `Task1(j)` — factorization of panel `j` (DGETRF);
//! * `Task2(i, j)` — the composite update of panel `j` by stage `i`:
//!   pivoting, forward solve and trailing GEMM against panel `i`'s
//!   factors.
//!
//! Dependencies: `Task2(i, j)` needs panel `i` factored and panel `j`
//! updated through stage `i - 1`; `Task1(j)` needs panel `j` updated
//! through stage `j - 1`. Storage is exactly the paper's: one counter per
//! panel (`progress[j]` = number of update stages applied) plus a
//! factored flag — the "one dimensional array of the length equal to the
//! number of panels".
//!
//! [`DagScheduler::available_task`] reproduces the scheduling policy of
//! Fig. 5c: it serves tasks from the lowest incomplete stage, *except*
//! that a panel whose updates just completed is factored immediately
//! (look-ahead), overlapping the next stage's panel factorization with
//! the remainder of the current stage's updates.

use std::sync::Mutex;

/// A schedulable unit of LU work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// Factor panel `panel` (Task1 / DGETRF).
    Factor {
        /// Panel index.
        panel: usize,
    },
    /// Apply stage `stage`'s composite update (swap + DTRSM + DGEMM) to
    /// panel `panel` (Task2).
    Update {
        /// Stage (= index of the factored source panel).
        stage: usize,
        /// Target panel (`panel > stage`).
        panel: usize,
    },
}

/// Read-only view of scheduler progress.
#[derive(Clone, Debug)]
pub struct DagSnapshot {
    /// Updates applied per panel.
    pub progress: Vec<usize>,
    /// Factored flags.
    pub factored: Vec<bool>,
    /// Tasks currently checked out.
    pub in_flight: usize,
}

#[derive(Debug)]
struct Inner {
    /// progress[j] = number of update stages applied to panel j.
    progress: Vec<usize>,
    /// factored[j] = Task1(j) committed.
    factored: Vec<bool>,
    /// busy[j] = a task targeting panel j is checked out.
    busy: Vec<bool>,
    in_flight: usize,
}

/// Thread-safe dynamic scheduler over the panel DAG.
///
/// `available_task` / `commit` form the protocol: a worker (the *master*
/// thread of its group, per Section IV-A) checks a task out, the group
/// executes it, and the master commits it — the commit "does not require
/// \[the\] critical section" in the paper because it is panel-local; here
/// the shared lock is kept for simplicity, with contention still bounded
/// by the number of groups, not threads.
#[derive(Debug)]
pub struct DagScheduler {
    inner: Mutex<Inner>,
    npanels: usize,
}

impl DagScheduler {
    /// Scheduler for `npanels` column panels.
    pub fn new(npanels: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                progress: vec![0; npanels],
                factored: vec![false; npanels],
                busy: vec![false; npanels],
                in_flight: 0,
            }),
            npanels,
        }
    }

    /// Number of panels.
    pub fn npanels(&self) -> usize {
        self.npanels
    }

    /// Fetches the next runnable task, or `None` if nothing is currently
    /// available (either done, or all runnable work is checked out).
    ///
    /// Priority order (Fig. 5c):
    /// 1. **look-ahead factorization**: the lowest unfactored panel whose
    ///    updates are complete;
    /// 2. updates from the lowest incomplete stage, left to right.
    pub fn available_task(&self) -> Option<Task> {
        self.available_task_limited(usize::MAX)
    }

    /// Like [`Self::available_task`], but only serves tasks whose stage
    /// index is below `stage_limit` — the confinement a super-stage
    /// imposes (tasks of later super-stages wait for the regrouping
    /// barrier). A task's stage index is `panel` for `Factor` and `stage`
    /// for `Update`.
    pub fn available_task_limited(&self, stage_limit: usize) -> Option<Task> {
        let mut g = self.inner.lock().unwrap();
        let n = self.npanels;

        // 1. Look-ahead: factor any panel that is fully updated.
        for j in 0..n.min(stage_limit) {
            if !g.factored[j] && !g.busy[j] && g.progress[j] == j {
                g.busy[j] = true;
                g.in_flight += 1;
                return Some(Task::Factor { panel: j });
            }
        }
        // 2. Updates: serve the lowest applicable stage per panel.
        for j in 0..n {
            if g.factored[j] || g.busy[j] {
                continue;
            }
            let i = g.progress[j]; // next stage this panel needs
            if i < j && i < stage_limit && g.factored[i] {
                g.busy[j] = true;
                g.in_flight += 1;
                return Some(Task::Update { stage: i, panel: j });
            }
        }
        None
    }

    /// True when every task with stage index below `stage_limit` has been
    /// committed: panels `< stage_limit` factored, and every panel updated
    /// through `min(panel, stage_limit)` stages. This is the super-stage
    /// completion condition checked before the regrouping barrier.
    pub fn phase_complete(&self, stage_limit: usize) -> bool {
        let g = self.inner.lock().unwrap();
        if g.in_flight > 0 {
            return false;
        }
        let n = self.npanels;
        for j in 0..n {
            if j < stage_limit && !g.factored[j] {
                return false;
            }
            if g.progress[j] < j.min(stage_limit) {
                return false;
            }
        }
        true
    }

    /// Commits a completed task, updating the panel-stage array.
    ///
    /// # Panics
    /// Panics if the commit violates the DAG (double factorization,
    /// out-of-order update) — these indicate scheduler bugs and must
    /// never be silently absorbed.
    pub fn commit(&self, task: Task) {
        let mut g = self.inner.lock().unwrap();
        match task {
            Task::Factor { panel } => {
                assert!(!g.factored[panel], "panel {panel} factored twice");
                assert_eq!(
                    g.progress[panel], panel,
                    "panel {panel} factored before its updates completed"
                );
                g.factored[panel] = true;
                g.busy[panel] = false;
            }
            Task::Update { stage, panel } => {
                assert!(g.factored[stage], "update from unfactored stage {stage}");
                assert_eq!(
                    g.progress[panel], stage,
                    "out-of-order update of panel {panel}"
                );
                g.progress[panel] = stage + 1;
                g.busy[panel] = false;
            }
        }
        // saturating: tests may commit forged tasks that were never
        // checked out, and the panic must come from the DAG assertions
        // above, not from counter underflow.
        g.in_flight = g.in_flight.saturating_sub(1);
    }

    /// True when every panel is factored.
    pub fn is_complete(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.factored.iter().all(|&f| f)
    }

    /// True when no task is runnable *and* none are checked out — used by
    /// workers to distinguish "done" from "wait for a dependency".
    pub fn is_drained(&self) -> bool {
        let g = self.inner.lock().unwrap();
        g.in_flight == 0 && g.factored.iter().all(|&f| f)
    }

    /// Progress snapshot for monitoring and tests.
    pub fn snapshot(&self) -> DagSnapshot {
        let g = self.inner.lock().unwrap();
        DagSnapshot {
            progress: g.progress.clone(),
            factored: g.factored.clone(),
            in_flight: g.in_flight,
        }
    }

    /// Total number of tasks a full run must execute:
    /// `n` factorizations + `n(n-1)/2` updates.
    pub fn total_tasks(&self) -> usize {
        self.npanels + self.npanels * (self.npanels.saturating_sub(1)) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Drains the scheduler single-threaded, checking the dependency
    /// invariants hold at every step.
    fn drain_and_check(n: usize) -> Vec<Task> {
        let dag = DagScheduler::new(n);
        let mut order = Vec::new();
        let mut factored = vec![false; n];
        let mut progress = vec![0usize; n];
        while let Some(t) = dag.available_task() {
            match t {
                Task::Factor { panel } => {
                    assert_eq!(progress[panel], panel, "deps violated for Task1({panel})");
                    factored[panel] = true;
                }
                Task::Update { stage, panel } => {
                    assert!(factored[stage]);
                    assert_eq!(progress[panel], stage);
                    progress[panel] = stage + 1;
                }
            }
            dag.commit(t);
            order.push(t);
        }
        assert!(dag.is_complete(), "n={n}");
        assert_eq!(order.len(), dag.total_tasks());
        order
    }

    #[test]
    fn single_panel_is_one_factorization() {
        let order = drain_and_check(1);
        assert_eq!(order, vec![Task::Factor { panel: 0 }]);
    }

    #[test]
    fn drains_completely_for_various_sizes() {
        for n in [2, 3, 6, 17] {
            let order = drain_and_check(n);
            // Every task unique.
            let set: HashSet<_> = order.iter().copied().collect();
            assert_eq!(set.len(), order.len());
        }
    }

    #[test]
    fn lookahead_factors_next_panel_before_stage_finishes() {
        // n = 4: after Factor(0), the first update the scheduler hands out
        // is Update(0,1); committing it must make Factor(1) available
        // immediately, even though Update(0,2) and Update(0,3) are
        // outstanding — the essence of look-ahead.
        let dag = DagScheduler::new(4);
        let t0 = dag.available_task().unwrap();
        assert_eq!(t0, Task::Factor { panel: 0 });
        dag.commit(t0);
        let t1 = dag.available_task().unwrap();
        assert_eq!(t1, Task::Update { stage: 0, panel: 1 });
        dag.commit(t1);
        let t2 = dag.available_task().unwrap();
        assert_eq!(
            t2,
            Task::Factor { panel: 1 },
            "look-ahead must prioritize the freed panel factorization"
        );
    }

    #[test]
    fn tasks_of_one_stage_run_in_parallel() {
        // After Factor(0), all Update(0, j) are simultaneously available.
        let dag = DagScheduler::new(5);
        let f = dag.available_task().unwrap();
        dag.commit(f);
        let mut checked_out = Vec::new();
        while let Some(t) = dag.available_task() {
            checked_out.push(t);
            if checked_out.len() == 4 {
                break;
            }
        }
        assert_eq!(checked_out.len(), 4, "all stage-0 updates co-available");
        for t in &checked_out {
            assert!(matches!(t, Task::Update { stage: 0, .. }));
        }
        // Nothing else is available while they're in flight.
        assert_eq!(dag.available_task(), None);
        assert!(!dag.is_drained());
    }

    #[test]
    #[should_panic(expected = "factored twice")]
    fn double_factor_commit_panics() {
        let dag = DagScheduler::new(2);
        let t = dag.available_task().unwrap();
        dag.commit(t);
        dag.commit(t);
    }

    #[test]
    #[should_panic(expected = "out-of-order update")]
    fn out_of_order_update_commit_panics() {
        let dag = DagScheduler::new(4);
        let f = dag.available_task().unwrap();
        dag.commit(f); // Factor(0)
                       // Forge an update that skips stage 0.
        dag.commit(Task::Update { stage: 0, panel: 3 });
        dag.commit(Task::Update { stage: 0, panel: 3 });
    }

    #[test]
    fn threaded_drain_respects_dependencies() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 12;
        let dag = DagScheduler::new(n);
        let executed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    match dag.available_task() {
                        Some(t) => {
                            // Simulate work.
                            std::hint::black_box(0u64);
                            dag.commit(t);
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if dag.is_drained() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(executed.load(Ordering::Relaxed), dag.total_tasks());
        assert!(dag.is_complete());
    }

    #[test]
    fn total_tasks_formula() {
        assert_eq!(DagScheduler::new(1).total_tasks(), 1);
        assert_eq!(DagScheduler::new(4).total_tasks(), 4 + 6);
        assert_eq!(DagScheduler::new(0).total_tasks(), 0);
    }
}

#[cfg(test)]
mod limited_tests {
    use super::*;

    #[test]
    fn stage_limit_confines_work() {
        let dag = DagScheduler::new(6);
        // Phase 1: stages < 2 only.
        let mut served = Vec::new();
        while let Some(t) = dag.available_task_limited(2) {
            dag.commit(t);
            served.push(t);
        }
        assert!(dag.phase_complete(2));
        assert!(!dag.phase_complete(3));
        // Everything served had stage index < 2.
        for t in &served {
            let s = match t {
                Task::Factor { panel } => *panel,
                Task::Update { stage, .. } => *stage,
            };
            assert!(s < 2, "task {t:?} beyond limit");
        }
        // Phase 2 finishes the job.
        while let Some(t) = dag.available_task() {
            dag.commit(t);
        }
        assert!(dag.is_complete());
    }

    #[test]
    fn phase_complete_requires_no_inflight() {
        let dag = DagScheduler::new(2);
        let t = dag.available_task_limited(1).unwrap();
        assert!(!dag.phase_complete(1), "task in flight");
        dag.commit(t);
        // Factor(0) done; Update(0,1) still pending under limit 1.
        assert!(!dag.phase_complete(1));
        let u = dag.available_task_limited(1).unwrap();
        assert_eq!(u, Task::Update { stage: 0, panel: 1 });
        dag.commit(u);
        assert!(dag.phase_complete(1));
    }
}
