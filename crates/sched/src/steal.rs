//! The two-ended tile counter of offload DGEMM (Section V-B).
//!
//! "Knights Corner starts with the first tile in the upper-left corner of
//! the matrix (C00), and continues forward in column-major order,
//! stealing one tile at a time. When Sandy Bridge EP ... is ready to work
//! on the trailing update, it starts with the last tile in the lower-
//! right corner (C33) and continues backwards also stealing one tile at a
//! time. Both ... continue in this fashion, until there are no more tiles
//! to steal."
//!
//! [`TileDeque`] is that structure: a lock-free range `[front, back]` of
//! tile indices; the device claims from the front, the host from the
//! back; claims are linearized by one CAS so every tile is taken exactly
//! once.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free two-ended claim counter over tiles `0..count`.
#[derive(Debug)]
pub struct TileDeque {
    /// Packed state: high 32 bits = front (next tile for the device),
    /// low 32 bits = back + 1 (one past the next tile for the host).
    /// Empty when front == back + 1 boundary crosses, i.e. front >= lo.
    state: AtomicU64,
    count: u32,
}

impl TileDeque {
    /// A deque over `count` tiles (at most `u32::MAX`).
    pub fn new(count: usize) -> Self {
        let count = u32::try_from(count).expect("tile count fits in u32");
        Self {
            state: AtomicU64::new(pack(0, count)),
            count,
        }
    }

    /// Total tiles.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Device side: claims the lowest unclaimed tile (forward order).
    pub fn steal_front(&self) -> Option<usize> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (front, lo) = unpack(cur);
            if front >= lo {
                return None;
            }
            match self.state.compare_exchange_weak(
                cur,
                pack(front + 1, lo),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(front as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Host side: claims the highest unclaimed tile (backward order).
    pub fn steal_back(&self) -> Option<usize> {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            let (front, lo) = unpack(cur);
            if front >= lo {
                return None;
            }
            match self.state.compare_exchange_weak(
                cur,
                pack(front, lo - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo - 1) as usize),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Tiles not yet claimed.
    pub fn remaining(&self) -> usize {
        let (front, lo) = unpack(self.state.load(Ordering::Acquire));
        lo.saturating_sub(front) as usize
    }

    /// True when everything is claimed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

fn pack(front: u32, lo: u32) -> u64 {
    ((front as u64) << 32) | lo as u64
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fronts_and_backs_meet_in_the_middle() {
        let d = TileDeque::new(6);
        assert_eq!(d.steal_front(), Some(0));
        assert_eq!(d.steal_back(), Some(5));
        assert_eq!(d.steal_front(), Some(1));
        assert_eq!(d.steal_back(), Some(4));
        assert_eq!(d.steal_front(), Some(2));
        assert_eq!(d.steal_back(), Some(3));
        assert_eq!(d.steal_front(), None);
        assert_eq!(d.steal_back(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_deque_yields_nothing() {
        let d = TileDeque::new(0);
        assert_eq!(d.steal_front(), None);
        assert_eq!(d.steal_back(), None);
    }

    #[test]
    fn single_tile_goes_to_exactly_one_side() {
        let d = TileDeque::new(1);
        assert_eq!(d.steal_back(), Some(0));
        assert_eq!(d.steal_front(), None);
    }

    #[test]
    fn remaining_tracks_claims() {
        let d = TileDeque::new(10);
        assert_eq!(d.remaining(), 10);
        d.steal_front();
        d.steal_back();
        assert_eq!(d.remaining(), 8);
    }

    #[test]
    fn concurrent_steals_partition_exactly() {
        let d = TileDeque::new(10_000);
        let (front_claims, back_claims) = std::thread::scope(|s| {
            let f = s.spawn(|| {
                let mut v = Vec::new();
                while let Some(t) = d.steal_front() {
                    v.push(t);
                }
                v
            });
            let b = s.spawn(|| {
                let mut v = Vec::new();
                while let Some(t) = d.steal_back() {
                    v.push(t);
                }
                v
            });
            (f.join().unwrap(), b.join().unwrap())
        });
        let mut all: Vec<usize> = front_claims.iter().chain(&back_claims).copied().collect();
        assert_eq!(all.len(), 10_000, "every tile claimed");
        let set: HashSet<_> = all.iter().copied().collect();
        assert_eq!(set.len(), 10_000, "no tile claimed twice");
        all.sort_unstable();
        assert_eq!(all[0], 0);
        assert_eq!(all[9999], 9999);
        // Front claims are ascending and contiguous from 0; back claims
        // descending from the end (the paper's column-major forward /
        // backward walk).
        assert!(front_claims.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(back_claims.windows(2).all(|w| w[1] + 1 == w[0]));
    }
}
