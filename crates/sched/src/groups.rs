//! Thread groups with a master-only critical section.
//!
//! On a 61-core, 244-thread part, letting every thread contend on the
//! scheduler lock "limits scalability" (Section IV-A). The paper's fix:
//! partition threads into groups; "only a single 'master' thread within a
//! group accesses the critical section to obtain a new task, while the
//! remaining threads wait on the local group barrier for the 'master'
//! thread to return with a new task, at which point the entire group
//! starts computing the task."
//!
//! [`run_group_scheduled`] implements exactly that protocol with real
//! threads (used by the numeric backend and by the scalability
//! ablations); the DES backend reuses the same [`crate::DagScheduler`]
//! but advances virtual time instead of running kernels.

use crate::dag::{DagScheduler, Task};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How threads are partitioned into groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupPlan {
    /// Number of groups.
    pub groups: usize,
    /// Threads per group.
    pub threads_per_group: usize,
}

impl GroupPlan {
    /// Partitions `total_threads` into groups of `threads_per_group`
    /// (the last group absorbs any remainder).
    pub fn new(total_threads: usize, threads_per_group: usize) -> Self {
        assert!(total_threads > 0 && threads_per_group > 0);
        assert!(threads_per_group <= total_threads);
        Self {
            groups: total_threads / threads_per_group,
            threads_per_group,
        }
    }

    /// Total threads in the plan.
    pub fn total_threads(&self) -> usize {
        self.groups * self.threads_per_group
    }
}

/// The group-local handoff: the master publishes either a task or the
/// shutdown signal; members wait, execute, then wait again.
struct GroupChannel {
    slot: Mutex<(u64, Option<Task>, bool)>, // (generation, task, done)
    cv: Condvar,
    /// Members that finished the current task (master waits for all).
    finished: AtomicUsize,
}

impl GroupChannel {
    fn new() -> Self {
        Self {
            slot: Mutex::new((0, None, false)),
            cv: Condvar::new(),
            finished: AtomicUsize::new(0),
        }
    }
}

/// Runs the DAG to completion on `plan.groups × plan.threads_per_group`
/// real threads with the paper's master/worker protocol.
///
/// `execute(task, member, group_size)` is called once per group member
/// per task — cooperative kernels split their work by `member`. It must
/// be safe to run members of one task concurrently (they operate on
/// disjoint slices).
pub fn run_group_scheduled<F>(dag: &DagScheduler, plan: &GroupPlan, execute: F)
where
    F: Fn(Task, usize, usize) + Sync,
{
    let channels: Vec<Arc<GroupChannel>> = (0..plan.groups)
        .map(|_| Arc::new(GroupChannel::new()))
        .collect();
    let execute = &execute;

    std::thread::scope(|s| {
        for ch in channels.iter().take(plan.groups) {
            let ch = ch.clone();
            let size = plan.threads_per_group;
            // Master thread of group g.
            s.spawn(move || {
                // Spawn the group's member threads.
                for member in 1..size {
                    let ch = ch.clone();
                    s.spawn(move || {
                        let mut seen = 0u64;
                        loop {
                            let (task, done) = {
                                let mut slot = ch.slot.lock().unwrap();
                                while slot.0 == seen {
                                    slot = ch.cv.wait(slot).unwrap();
                                }
                                seen = slot.0;
                                (slot.1, slot.2)
                            };
                            if done {
                                return;
                            }
                            if let Some(t) = task {
                                execute(t, member, size);
                            }
                            ch.finished.fetch_add(1, Ordering::AcqRel);
                        }
                    });
                }

                // Master loop: fetch → broadcast → cooperate → commit.
                loop {
                    match dag.available_task() {
                        Some(task) => {
                            ch.finished.store(0, Ordering::Release);
                            {
                                let mut slot = ch.slot.lock().unwrap();
                                slot.0 += 1;
                                slot.1 = Some(task);
                                ch.cv.notify_all();
                            }
                            // Master participates as member 0.
                            execute(task, 0, size);
                            // Local group barrier: wait for members.
                            while ch.finished.load(Ordering::Acquire) < size - 1 {
                                std::hint::spin_loop();
                            }
                            dag.commit(task);
                        }
                        None => {
                            if dag.is_drained() {
                                // Broadcast shutdown.
                                let mut slot = ch.slot.lock().unwrap();
                                slot.0 += 1;
                                slot.1 = None;
                                slot.2 = true;
                                ch.cv.notify_all();
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn plan_partitioning() {
        let p = GroupPlan::new(240, 4);
        assert_eq!(p.groups, 60);
        assert_eq!(p.total_threads(), 240);
    }

    #[test]
    fn group_protocol_executes_every_task_once_per_member() {
        let n = 8;
        let dag = DagScheduler::new(n);
        let plan = GroupPlan::new(6, 3);
        let counts: StdMutex<HashMap<(Task, usize), usize>> = StdMutex::new(HashMap::new());
        run_group_scheduled(&dag, &plan, |task, member, size| {
            assert_eq!(size, 3);
            assert!(member < 3);
            *counts.lock().unwrap().entry((task, member)).or_insert(0) += 1;
        });
        assert!(dag.is_complete());
        let counts = counts.into_inner().unwrap();
        let total_tasks = n + n * (n - 1) / 2;
        assert_eq!(counts.len(), total_tasks * 3, "each task × each member");
        assert!(counts.values().all(|&c| c == 1), "no duplicate execution");
    }

    #[test]
    fn dependencies_hold_under_group_execution() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let n = 10;
        let dag = DagScheduler::new(n);
        let plan = GroupPlan::new(8, 2);
        // factored_mask bit j set when Factor(j) ran; every Update(i, j)
        // must observe bit i already set.
        let factored_mask = AtomicU64::new(0);
        run_group_scheduled(&dag, &plan, |task, member, _| {
            if member != 0 {
                return; // check once per task
            }
            match task {
                Task::Factor { panel } => {
                    factored_mask.fetch_or(1 << panel, Ordering::SeqCst);
                }
                Task::Update { stage, .. } => {
                    let mask = factored_mask.load(Ordering::SeqCst);
                    assert!(
                        mask & (1 << stage) != 0,
                        "update observed unfactored stage {stage}"
                    );
                }
            }
        });
        assert!(dag.is_complete());
    }

    #[test]
    fn single_thread_groups_degenerate_to_plain_workers() {
        let dag = DagScheduler::new(5);
        let plan = GroupPlan::new(4, 1);
        let executed = AtomicUsize::new(0);
        run_group_scheduled(&dag, &plan, |_, member, size| {
            assert_eq!(member, 0);
            assert_eq!(size, 1);
            executed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(executed.load(Ordering::Relaxed), dag.total_tasks());
    }
}
