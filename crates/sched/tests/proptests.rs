//! Property tests for the scheduling structures: any interleaving of
//! fetch/commit must respect the LU dependency DAG, tile deques must
//! partition exactly, and super-stage plans must tile the stage range.
//!
//! Driven by a local deterministic LCG (no external proptest dependency):
//! each property runs over a fixed-seed sweep of randomized cases.

use phi_sched::{superstage_plan, DagScheduler, Task, TileDeque};

/// Minimal LCG (same constants as phi-matrix's HplRng) for case sweeps.
struct Cases(u64);

impl Cases {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Any greedy drain order (randomized by a per-step choice of how
/// many tasks to batch before committing) executes every task exactly
/// once and never violates a dependency.
#[test]
fn dag_valid_under_random_batching() {
    let mut cases = Cases(0xDA6);
    for _ in 0..64 {
        let npanels = cases.index(1, 14);
        let nbatches = cases.index(0, 200);
        let batch_seq: Vec<usize> = (0..nbatches).map(|_| cases.index(1, 5)).collect();
        let dag = DagScheduler::new(npanels);
        let mut factored = vec![false; npanels];
        let mut progress = vec![0usize; npanels];
        let mut executed = 0usize;
        let mut pending: Vec<Task> = Vec::new();
        let mut batches = batch_seq.into_iter().cycle();

        while !dag.is_drained() {
            let take = batches.next().unwrap_or(1);
            for _ in 0..take {
                if let Some(t) = dag.available_task() {
                    pending.push(t);
                } else {
                    break;
                }
            }
            if pending.is_empty() {
                // Nothing fetchable and nothing in flight would deadlock;
                // the scheduler must never reach that state mid-run.
                assert!(dag.is_drained(), "live-lock at {executed} tasks");
                break;
            }
            // Commit in reverse order (worst case for any accidental
            // ordering assumption inside the scheduler).
            while let Some(t) = pending.pop() {
                match t {
                    Task::Factor { panel } => {
                        assert_eq!(progress[panel], panel);
                        assert!(!factored[panel]);
                        factored[panel] = true;
                    }
                    Task::Update { stage, panel } => {
                        assert!(factored[stage]);
                        assert_eq!(progress[panel], stage);
                        progress[panel] = stage + 1;
                    }
                }
                dag.commit(t);
                executed += 1;
            }
        }
        assert_eq!(executed, dag.total_tasks());
        assert!(dag.is_complete());
    }
}

/// Stage-limited draining then full draining always completes, for
/// any split point.
#[test]
fn dag_phase_split_completes() {
    let mut cases = Cases(0x5917);
    for _ in 0..64 {
        let npanels = cases.index(1, 14);
        let split_frac = cases.unit();
        let dag = DagScheduler::new(npanels);
        let split = ((npanels as f64 * split_frac) as usize).min(npanels);
        while let Some(t) = dag.available_task_limited(split) {
            dag.commit(t);
        }
        assert!(dag.phase_complete(split));
        while let Some(t) = dag.available_task() {
            dag.commit(t);
        }
        assert!(dag.is_complete());
    }
}

/// Front/back stealing in any interleaving claims each tile exactly
/// once, fronts ascending, backs descending.
#[test]
fn tile_deque_partitions() {
    let mut cases = Cases(0x7113);
    for _ in 0..64 {
        let count = cases.index(0, 200);
        let ncoins = cases.index(0, 256);
        let coin: Vec<bool> = (0..ncoins).map(|_| cases.flag()).collect();
        let d = TileDeque::new(count);
        let mut fronts = Vec::new();
        let mut backs = Vec::new();
        let mut coins = coin.into_iter().cycle();
        loop {
            let take_front = coins.next().unwrap_or(true);
            let got = if take_front {
                d.steal_front()
            } else {
                d.steal_back()
            };
            match got {
                Some(t) if take_front => fronts.push(t),
                Some(t) => backs.push(t),
                None => {
                    // The other side must also be empty.
                    assert!(d.steal_front().is_none());
                    assert!(d.steal_back().is_none());
                    break;
                }
            }
        }
        assert_eq!(fronts.len() + backs.len(), count);
        assert!(fronts.windows(2).all(|w| w[1] == w[0] + 1));
        assert!(backs.windows(2).all(|w| w[1] + 1 == w[0]));
        if let (Some(&fmax), Some(&bmin)) = (fronts.last(), backs.last()) {
            assert!(fmax < bmin, "front {fmax} crossed back {bmin}");
        }
    }
}

/// Super-stage plans tile `0..npanels` contiguously with group sizes
/// from the divisor ladder, whatever the ratio function does.
#[test]
fn superstage_plan_tiles_the_range() {
    let mut cases = Cases(0x57A6E);
    for _ in 0..64 {
        let npanels = cases.index(0, 80);
        let total = [16usize, 60, 240][cases.index(0, 3)];
        let nnoise = cases.index(1, 40);
        let noise: Vec<f64> = (0..nnoise).map(|_| cases.unit() * 3.0).collect();
        let plan = superstage_plan(npanels, total, 4, |stage, tpg| {
            noise[stage % noise.len()] * 8.0 / tpg as f64
        });
        if npanels == 0 {
            assert!(plan.is_empty());
            continue;
        }
        assert_eq!(plan[0].first_stage, 0);
        assert_eq!(plan.last().unwrap().end_stage, npanels);
        for w in plan.windows(2) {
            assert_eq!(w[0].end_stage, w[1].first_stage);
            assert!(w[1].threads_per_group > w[0].threads_per_group);
        }
        for ss in &plan {
            assert!(!ss.is_empty());
            assert_eq!(total % ss.threads_per_group, 0, "ladder divisor");
            assert!(ss.threads_per_group >= 4);
        }
    }
}
