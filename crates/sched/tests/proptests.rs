//! Property tests for the scheduling structures: any interleaving of
//! fetch/commit must respect the LU dependency DAG, tile deques must
//! partition exactly, and super-stage plans must tile the stage range.

use phi_sched::{superstage_plan, DagScheduler, Task, TileDeque};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any greedy drain order (randomized by a per-step choice of how
    /// many tasks to batch before committing) executes every task exactly
    /// once and never violates a dependency.
    #[test]
    fn dag_valid_under_random_batching(
        npanels in 1usize..14,
        batch_seq in prop::collection::vec(1usize..5, 0..200),
    ) {
        let dag = DagScheduler::new(npanels);
        let mut factored = vec![false; npanels];
        let mut progress = vec![0usize; npanels];
        let mut executed = 0usize;
        let mut pending: Vec<Task> = Vec::new();
        let mut batches = batch_seq.into_iter().cycle();

        while !dag.is_drained() {
            let take = batches.next().unwrap_or(1);
            for _ in 0..take {
                if let Some(t) = dag.available_task() {
                    pending.push(t);
                } else {
                    break;
                }
            }
            if pending.is_empty() {
                // Nothing fetchable and nothing in flight would deadlock;
                // the scheduler must never reach that state mid-run.
                prop_assert!(dag.is_drained(), "live-lock at {executed} tasks");
                break;
            }
            // Commit in reverse order (worst case for any accidental
            // ordering assumption inside the scheduler).
            while let Some(t) = pending.pop() {
                match t {
                    Task::Factor { panel } => {
                        prop_assert_eq!(progress[panel], panel);
                        prop_assert!(!factored[panel]);
                        factored[panel] = true;
                    }
                    Task::Update { stage, panel } => {
                        prop_assert!(factored[stage]);
                        prop_assert_eq!(progress[panel], stage);
                        progress[panel] = stage + 1;
                    }
                }
                dag.commit(t);
                executed += 1;
            }
        }
        prop_assert_eq!(executed, dag.total_tasks());
        prop_assert!(dag.is_complete());
    }

    /// Stage-limited draining then full draining always completes, for
    /// any split point.
    #[test]
    fn dag_phase_split_completes(
        npanels in 1usize..14,
        split_frac in 0.0f64..1.0,
    ) {
        let dag = DagScheduler::new(npanels);
        let split = ((npanels as f64 * split_frac) as usize).min(npanels);
        while let Some(t) = dag.available_task_limited(split) {
            dag.commit(t);
        }
        prop_assert!(dag.phase_complete(split));
        while let Some(t) = dag.available_task() {
            dag.commit(t);
        }
        prop_assert!(dag.is_complete());
    }

    /// Front/back stealing in any interleaving claims each tile exactly
    /// once, fronts ascending, backs descending.
    #[test]
    fn tile_deque_partitions(
        count in 0usize..200,
        coin in prop::collection::vec(any::<bool>(), 0..256),
    ) {
        let d = TileDeque::new(count);
        let mut fronts = Vec::new();
        let mut backs = Vec::new();
        let mut coins = coin.into_iter().cycle();
        loop {
            let take_front = coins.next().unwrap_or(true);
            let got = if take_front { d.steal_front() } else { d.steal_back() };
            match got {
                Some(t) if take_front => fronts.push(t),
                Some(t) => backs.push(t),
                None => {
                    // The other side must also be empty.
                    prop_assert!(d.steal_front().is_none());
                    prop_assert!(d.steal_back().is_none());
                    break;
                }
            }
        }
        prop_assert_eq!(fronts.len() + backs.len(), count);
        prop_assert!(fronts.windows(2).all(|w| w[1] == w[0] + 1));
        prop_assert!(backs.windows(2).all(|w| w[1] + 1 == w[0]));
        if let (Some(&fmax), Some(&bmin)) = (fronts.last(), backs.last()) {
            prop_assert!(fmax < bmin, "front {fmax} crossed back {bmin}");
        }
    }

    /// Super-stage plans tile `0..npanels` contiguously with group sizes
    /// from the divisor ladder, whatever the ratio function does.
    #[test]
    fn superstage_plan_tiles_the_range(
        npanels in 0usize..80,
        total in prop::sample::select(vec![16usize, 60, 240]),
        noise in prop::collection::vec(0.0f64..3.0, 1..40),
    ) {
        let plan = superstage_plan(npanels, total, 4, |stage, tpg| {
            noise[stage % noise.len()] * 8.0 / tpg as f64
        });
        if npanels == 0 {
            prop_assert!(plan.is_empty());
            return Ok(());
        }
        prop_assert_eq!(plan[0].first_stage, 0);
        prop_assert_eq!(plan.last().unwrap().end_stage, npanels);
        for w in plan.windows(2) {
            prop_assert_eq!(w[0].end_stage, w[1].first_stage);
            prop_assert!(w[1].threads_per_group > w[0].threads_per_group);
        }
        for ss in &plan {
            prop_assert!(!ss.is_empty());
            prop_assert_eq!(total % ss.threads_per_group, 0, "ladder divisor");
            prop_assert!(ss.threads_per_group >= 4);
        }
    }
}
