//! Serialized bandwidth × latency channels.
//!
//! Models the communication resources of the paper's test-bed: the
//! 6 GB/s PCIe link to each coprocessor (≈4 GB/s effective when copying
//! and swapping compete for host memory bandwidth — footnote 4) and the
//! FDR InfiniBand rail between nodes. Transfers on one link serialize:
//! each begins when the link frees up and occupies it for
//! `latency + bytes/bandwidth` seconds — the standard postal model.

/// A serialized, full-duplex-unaware point-to-point channel.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
    busy_until: f64,
    bytes_moved: f64,
}

impl Link {
    /// A link with the given bandwidth (bytes/s) and latency (s).
    pub fn new(bandwidth: f64, latency: f64) -> Self {
        assert!(bandwidth > 0.0 && latency >= 0.0);
        Self {
            bandwidth,
            latency,
            busy_until: 0.0,
            bytes_moved: 0.0,
        }
    }

    /// Books a transfer of `bytes` starting no earlier than `now`.
    /// Returns `(start, end)`: the transfer occupies the link on
    /// `[start, end)`.
    ///
    /// # Panics
    /// Panics on a negative byte count; use [`Link::try_transfer`] when
    /// the size comes from untrusted input (e.g. a fault plan).
    pub fn transfer(&mut self, now: f64, bytes: f64) -> (f64, f64) {
        self.try_transfer(now, bytes)
            .expect("negative transfer size")
    }

    /// Fallible [`Link::transfer`]: rejects negative sizes as a typed
    /// error instead of panicking.
    pub fn try_transfer(&mut self, now: f64, bytes: f64) -> Result<(f64, f64), crate::ModelError> {
        if bytes < 0.0 {
            return Err(crate::ModelError::NegativeBytes { bytes });
        }
        let start = now.max(self.busy_until);
        let end = start + self.latency + bytes / self.bandwidth;
        self.busy_until = end;
        self.bytes_moved += bytes;
        Ok((start, end))
    }

    /// Pure query: when would a transfer of `bytes` finish if issued at
    /// `now`? Does not book the link.
    pub fn estimate(&self, now: f64, bytes: f64) -> f64 {
        now.max(self.busy_until) + self.latency + bytes / self.bandwidth
    }

    /// Time at which the link becomes free.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Total payload bytes moved over the link so far.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }

    /// Link occupancy over `[0, horizon]` — used for utilization reports.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.bytes_moved / self.bandwidth / horizon).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time() {
        let mut l = Link::new(4e9, 10e-6);
        let (s, e) = l.transfer(0.0, 4e9); // 1 GB... 4e9 bytes at 4 GB/s
        assert_eq!(s, 0.0);
        assert!((e - (1.0 + 10e-6)).abs() < 1e-12);
    }

    #[test]
    fn transfers_serialize() {
        let mut l = Link::new(1e9, 0.0);
        let (_, e1) = l.transfer(0.0, 1e9); // busy until 1.0
        let (s2, e2) = l.transfer(0.5, 1e9); // must wait
        assert_eq!(e1, 1.0);
        assert_eq!(s2, 1.0);
        assert_eq!(e2, 2.0);
    }

    #[test]
    fn idle_gap_respected() {
        let mut l = Link::new(1e9, 0.0);
        l.transfer(0.0, 1e9);
        let (s, _) = l.transfer(5.0, 1e9); // link idle since t=1
        assert_eq!(s, 5.0);
    }

    #[test]
    fn estimate_does_not_book() {
        let mut l = Link::new(1e9, 1e-3);
        let est = l.estimate(0.0, 1e9);
        assert!((est - 1.001).abs() < 1e-12);
        assert_eq!(l.busy_until(), 0.0);
        l.transfer(0.0, 1e9);
        assert!(l.busy_until() > 0.0);
    }

    #[test]
    fn accounting() {
        let mut l = Link::new(2e9, 0.0);
        l.transfer(0.0, 1e9);
        l.transfer(0.0, 3e9);
        assert_eq!(l.bytes_moved(), 4e9);
        // 4e9 bytes at 2 GB/s = 2s of occupancy over a 4s horizon.
        assert!((l.utilization(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_bytes_surface_as_typed_error() {
        let mut l = Link::new(1e9, 0.0);
        let err = l.try_transfer(0.0, -1.0).unwrap_err();
        assert_eq!(err, crate::ModelError::NegativeBytes { bytes: -1.0 });
        // The failed call books nothing.
        assert_eq!(l.busy_until(), 0.0);
        assert_eq!(l.bytes_moved(), 0.0);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let mut l = Link::new(1e9, 7e-6);
        let (s, e) = l.transfer(1.0, 0.0);
        assert_eq!(s, 1.0);
        assert!((e - 1.0 - 7e-6).abs() < 1e-15);
    }
}
