//! Deterministic parallel DES: rank-partitioned conservative lookahead.
//!
//! The sequential [`crate::Sim`] drives closures over one global heap —
//! perfect for a single node, a wall-clock floor for cluster-scale
//! campaigns. This module partitions a simulation into *ranks* (logical
//! processes), each with its own event heap and clock, and executes them
//! window-by-window under the classic conservative contract:
//!
//! * every cross-rank message must arrive at least `lookahead` after it
//!   is sent (in the cluster models the network latency bounds every
//!   broadcast/swap hop from below, so the horizon is real physics, not
//!   a tuning knob);
//! * a window processes, on every rank in parallel, exactly the events
//!   strictly before `floor + lookahead`, where `floor` is the earliest
//!   pending event anywhere — no message generated this window can land
//!   inside it;
//! * messages are exchanged at the barrier and enqueued under the total
//!   [`EventKey`] order `(time, source rank, source seq)`.
//!
//! Because each rank consumes its events in total key order and the
//! windows advance monotonically, the execution is **byte-identical at
//! any thread count** — the per-rank digests (and therefore the merged
//! digest) cannot observe how ranks were assigned to workers. The tests
//! pin this by comparing 1/2/8-thread runs and a windowless sequential
//! reference executor event-for-event.

use crate::EventKey;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv_fold(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One rank of a partitioned simulation: owns its state, reacts to
/// timestamped messages, and emits new ones through the [`Mailbox`].
pub trait LogicalProcess: Send {
    /// The message/event payload type.
    type Msg: Send;
    /// Handles one event at simulated time `now`.
    fn handle(&mut self, now: f64, msg: Self::Msg, out: &mut Mailbox<Self::Msg>);
}

/// The outbox handed to [`LogicalProcess::handle`]: self-schedules and
/// cross-rank sends.
pub struct Mailbox<M> {
    rank: u32,
    now: f64,
    lookahead: f64,
    local: Vec<(f64, M)>,
    remote: Vec<(u32, f64, M)>,
}

impl<M> Mailbox<M> {
    /// This rank's index.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules a message to this rank `delay` seconds from now. Self
    /// messages are exempt from the lookahead contract (they never cross
    /// the partition boundary), so any non-negative delay is legal.
    pub fn schedule(&mut self, delay: f64, msg: M) {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "invalid self-schedule delay {delay}"
        );
        self.local.push((self.now + delay, msg));
    }

    /// Sends a message to rank `dst`, arriving `delay` seconds from now.
    ///
    /// # Panics
    /// Panics when `delay < lookahead` — a message that could land inside
    /// the current window would break the conservative contract (and with
    /// it, determinism). Model the sub-lookahead part of a link as local
    /// processing time instead.
    pub fn send(&mut self, dst: u32, delay: f64, msg: M) {
        assert!(
            delay.is_finite() && delay >= self.lookahead,
            "cross-rank delay {delay} violates conservative lookahead {}",
            self.lookahead
        );
        self.remote.push((dst, self.now + delay, msg));
    }
}

/// A routed cross-rank message awaiting delivery at a window barrier:
/// `(source rank, destination rank, arrival time, payload)`.
type Routed<M> = (u32, u32, f64, M);

/// Heap entry ordered by [`EventKey`] alone (payloads are opaque).
struct Ev<M> {
    key: EventKey,
    msg: M,
}

impl<M> PartialEq for Ev<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for Ev<M> {}
impl<M> PartialOrd for Ev<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Ev<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inversion: smallest key pops first.
        other.key.cmp(&self.key)
    }
}

/// Per-rank execution state.
struct Rank<P: LogicalProcess> {
    proc: P,
    heap: BinaryHeap<Ev<P::Msg>>,
    seq: u64,
    now: f64,
    fired: u64,
    digest: u64,
}

impl<P: LogicalProcess> Rank<P> {
    /// Processes every pending event strictly before `horizon`; returns
    /// the cross-rank messages produced.
    fn process_window(
        &mut self,
        rank: u32,
        horizon: f64,
        lookahead: f64,
    ) -> Vec<(u32, f64, P::Msg)> {
        let mut outbox = Vec::new();
        while let Some(ev) = self.heap.peek() {
            if ev.key.at >= horizon {
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            self.now = ev.key.at;
            self.fired += 1;
            self.digest = fnv_fold(self.digest, ev.key.at.to_bits());
            self.digest = fnv_fold(self.digest, ev.key.rank as u64);
            self.digest = fnv_fold(self.digest, ev.key.seq);
            let mut mb = Mailbox {
                rank,
                now: self.now,
                lookahead,
                local: Vec::new(),
                remote: Vec::new(),
            };
            self.proc.handle(self.now, ev.msg, &mut mb);
            for (at, msg) in mb.local {
                self.seq += 1;
                self.heap.push(Ev {
                    key: EventKey::new(at, rank, self.seq),
                    msg,
                });
            }
            outbox.extend(mb.remote);
        }
        outbox
    }
}

/// Summary of a parallel (or sequential reference) run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParallelReport {
    /// Total events processed across all ranks.
    pub events: u64,
    /// Synchronization windows executed (0 for the sequential reference).
    pub windows: u64,
    /// Latest rank clock at drain — the simulation's end time.
    pub end_time: f64,
    /// FNV-1a digest folding every rank's processed-event key stream in
    /// rank order: byte-identical across thread counts by construction.
    pub digest: u64,
}

/// The rank-partitioned conservative-lookahead engine.
pub struct ParallelDes<P: LogicalProcess> {
    ranks: Vec<Rank<P>>,
    lookahead: f64,
}

impl<P: LogicalProcess> ParallelDes<P> {
    /// Builds an engine over `procs` (one rank each) with the given
    /// conservative lookahead (must be positive and finite).
    pub fn new(procs: Vec<P>, lookahead: f64) -> Self {
        assert!(
            lookahead > 0.0 && lookahead.is_finite(),
            "lookahead must be positive, got {lookahead}"
        );
        Self {
            ranks: procs
                .into_iter()
                .map(|proc| Rank {
                    proc,
                    heap: BinaryHeap::new(),
                    seq: 0,
                    now: 0.0,
                    fired: 0,
                    digest: FNV_OFFSET,
                })
                .collect(),
            lookahead,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Seeds an initial event on `rank` at absolute time `at`.
    pub fn seed(&mut self, rank: usize, at: f64, msg: P::Msg) {
        assert!(at >= 0.0 && at.is_finite(), "invalid seed time {at}");
        let r = &mut self.ranks[rank];
        r.seq += 1;
        r.heap.push(Ev {
            key: EventKey::new(at, rank as u32, r.seq),
            msg,
        });
    }

    /// A reference to rank `i`'s process (inspect final state after a
    /// run).
    pub fn process(&self, i: usize) -> &P {
        &self.ranks[i].proc
    }

    fn floor(&self) -> Option<f64> {
        self.ranks
            .iter()
            .filter_map(|r| r.heap.peek().map(|e| e.key.at))
            .min_by(f64::total_cmp)
    }

    fn deliver(&mut self, outbox: Vec<Routed<P::Msg>>) {
        for (src, dst, at, msg) in outbox {
            let s = &mut self.ranks[src as usize];
            s.seq += 1;
            let key = EventKey::new(at, src, s.seq);
            self.ranks[dst as usize].heap.push(Ev { key, msg });
        }
    }

    fn report(&self, windows: u64) -> ParallelReport {
        let mut digest = FNV_OFFSET;
        for r in &self.ranks {
            digest = fnv_fold(digest, r.digest);
        }
        ParallelReport {
            events: self.ranks.iter().map(|r| r.fired).sum(),
            windows,
            end_time: self
                .ranks
                .iter()
                .map(|r| r.now)
                .fold(0.0, |a, b| if b > a { b } else { a }),
            digest,
        }
    }

    /// Runs every rank to drain on `threads` worker threads (1 runs
    /// inline). The result — process states, digests, event counts — is
    /// byte-identical for every `threads` value.
    pub fn run(&mut self, threads: usize) -> ParallelReport {
        let threads = threads.max(1);
        let mut windows = 0u64;
        while let Some(floor) = self.floor() {
            let horizon = floor + self.lookahead;
            windows += 1;
            let lookahead = self.lookahead;
            let nranks = self.ranks.len();
            let mut outbox: Vec<Routed<P::Msg>> = Vec::new();
            if threads == 1 || nranks <= 1 {
                for (i, r) in self.ranks.iter_mut().enumerate() {
                    for (dst, at, msg) in r.process_window(i as u32, horizon, lookahead) {
                        outbox.push((i as u32, dst, at, msg));
                    }
                }
            } else {
                // Contiguous chunks over ranks; the chunk→worker mapping
                // cannot affect results because ranks share no state and
                // the outbox is merged back in rank order.
                let chunk = nranks.div_ceil(threads);
                let mut per_chunk: Vec<Vec<Routed<P::Msg>>> = Vec::new();
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (ci, ranks) in self.ranks.chunks_mut(chunk).enumerate() {
                        handles.push(scope.spawn(move || {
                            let base = ci * chunk;
                            let mut out = Vec::new();
                            for (off, r) in ranks.iter_mut().enumerate() {
                                let i = (base + off) as u32;
                                for (dst, at, msg) in r.process_window(i, horizon, lookahead) {
                                    out.push((i, dst, at, msg));
                                }
                            }
                            out
                        }));
                    }
                    for h in handles {
                        per_chunk.push(h.join().expect("parallel DES worker panicked"));
                    }
                });
                for v in per_chunk {
                    outbox.extend(v);
                }
            }
            self.deliver(outbox);
        }
        self.report(windows)
    }

    /// Windowless reference executor: one event at a time in global
    /// [`EventKey`] order, messages delivered immediately. Exists to
    /// prove the windowed parallel run changes nothing — its report must
    /// equal [`Self::run`]'s except for the window count.
    pub fn run_sequential(&mut self) -> ParallelReport {
        loop {
            let next = self
                .ranks
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.heap.peek().map(|e| (e.key, i)))
                .min_by(|a, b| a.0.cmp(&b.0));
            let Some((_, i)) = next else { break };
            let horizon = self.ranks[i].heap.peek().expect("peeked").key.at;
            // Process exactly one event: a horizon just past it.
            let r = &mut self.ranks[i];
            let ev = r.heap.pop().expect("peeked");
            r.now = ev.key.at;
            r.fired += 1;
            r.digest = fnv_fold(r.digest, ev.key.at.to_bits());
            r.digest = fnv_fold(r.digest, ev.key.rank as u64);
            r.digest = fnv_fold(r.digest, ev.key.seq);
            let mut mb = Mailbox {
                rank: i as u32,
                now: r.now,
                lookahead: self.lookahead,
                local: Vec::new(),
                remote: Vec::new(),
            };
            r.proc.handle(r.now, ev.msg, &mut mb);
            for (at, msg) in mb.local {
                r.seq += 1;
                r.heap.push(Ev {
                    key: EventKey::new(at, i as u32, r.seq),
                    msg,
                });
            }
            let remote: Vec<Routed<P::Msg>> = mb
                .remote
                .into_iter()
                .map(|(dst, at, msg)| (i as u32, dst, at, msg))
                .collect();
            self.deliver(remote);
            let _ = horizon;
        }
        self.report(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rank that fires `hops` messages around a ring, recording every
    /// (time, payload) it sees.
    struct RingNode {
        n: u32,
        hops: u32,
        seen: Vec<(u64, u32)>,
    }

    #[derive(Clone)]
    struct Hop {
        left: u32,
        tag: u32,
    }

    impl LogicalProcess for RingNode {
        type Msg = Hop;
        fn handle(&mut self, now: f64, msg: Hop, out: &mut Mailbox<Hop>) {
            self.seen.push((now.to_bits(), msg.tag));
            if msg.left > 0 {
                let dst = (out.rank() + 1) % self.n;
                out.send(
                    dst,
                    1e-3 + (msg.tag % 3) as f64 * 1e-4,
                    Hop {
                        left: msg.left - 1,
                        tag: msg.tag,
                    },
                );
            }
            let _ = self.hops;
        }
    }

    fn ring(n: u32, hops: u32) -> ParallelDes<RingNode> {
        let procs = (0..n)
            .map(|_| RingNode {
                n,
                hops,
                seen: Vec::new(),
            })
            .collect();
        let mut des = ParallelDes::new(procs, 1e-3);
        for r in 0..n {
            des.seed(r as usize, 0.0, Hop { left: hops, tag: r });
        }
        des
    }

    #[test]
    fn ring_drains_with_expected_event_count() {
        let mut des = ring(8, 20);
        let rep = des.run(1);
        // Each of the 8 seeds fires once plus 20 hops.
        assert_eq!(rep.events, 8 * 21);
        assert!(rep.end_time > 0.0);
        assert!(rep.windows > 0);
    }

    #[test]
    fn thread_count_cannot_change_anything() {
        let base = ring(13, 37).run(1);
        for threads in [2, 3, 8, 16] {
            let rep = ring(13, 37).run(threads);
            assert_eq!(rep.events, base.events, "threads={threads}");
            assert_eq!(rep.digest, base.digest, "threads={threads}");
            assert_eq!(
                rep.end_time.to_bits(),
                base.end_time.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn windowed_run_matches_sequential_reference() {
        let par = ring(11, 25).run(4);
        let seq = ring(11, 25).run_sequential();
        assert_eq!(par.events, seq.events);
        assert_eq!(par.digest, seq.digest);
        assert_eq!(par.end_time.to_bits(), seq.end_time.to_bits());
        // And the per-rank observation logs agree message-for-message.
        let mut a = ring(5, 9);
        let mut b = ring(5, 9);
        a.run(8);
        b.run_sequential();
        for i in 0..5 {
            assert_eq!(a.process(i).seen, b.process(i).seen, "rank {i} log");
        }
    }

    #[test]
    #[should_panic(expected = "conservative lookahead")]
    fn sub_lookahead_send_is_rejected() {
        struct Bad;
        impl LogicalProcess for Bad {
            type Msg = ();
            fn handle(&mut self, _now: f64, _msg: (), out: &mut Mailbox<()>) {
                out.send(1, 1e-9, ()); // below the 1e-3 lookahead
            }
        }
        let mut des = ParallelDes::new(vec![Bad, Bad], 1e-3);
        des.seed(0, 0.0, ());
        des.run(1);
    }

    #[test]
    fn zero_delay_self_schedule_is_legal_and_ordered() {
        struct Chain {
            log: Vec<u32>,
        }
        impl LogicalProcess for Chain {
            type Msg = u32;
            fn handle(&mut self, _now: f64, msg: u32, out: &mut Mailbox<u32>) {
                self.log.push(msg);
                if msg < 5 {
                    out.schedule(0.0, msg + 1);
                }
            }
        }
        let mut des = ParallelDes::new(vec![Chain { log: Vec::new() }], 1.0);
        des.seed(0, 0.0, 0);
        let rep = des.run(1);
        assert_eq!(rep.events, 6);
        assert_eq!(des.process(0).log, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rep.end_time, 0.0);
    }

    #[test]
    fn same_time_cross_rank_messages_order_by_source_rank() {
        // Ranks 1 and 2 both message rank 0 to arrive at the same
        // instant; rank 0 must see them ordered by source rank, however
        // the windows happened to batch them.
        struct Node {
            log: Vec<u32>,
        }
        #[derive(Clone)]
        enum M {
            Kick,
            Tagged(u32),
        }
        impl LogicalProcess for Node {
            type Msg = M;
            fn handle(&mut self, _now: f64, msg: M, out: &mut Mailbox<M>) {
                match msg {
                    M::Kick => out.send(0, 0.5, M::Tagged(out.rank())),
                    M::Tagged(src) => self.log.push(src),
                }
            }
        }
        for seed_order in [[2usize, 1], [1, 2]] {
            let mut des = ParallelDes::new((0..3).map(|_| Node { log: Vec::new() }).collect(), 0.5);
            for &r in &seed_order {
                des.seed(r, 0.0, M::Kick);
            }
            des.run(3);
            assert_eq!(des.process(0).log, vec![1, 2], "seeds {seed_order:?}");
        }
    }
}
