//! A small deterministic discrete-event simulation (DES) engine.
//!
//! The Linpack experiments in this workspace run at paper scale — up to
//! N = 825,000 on a hundred simulated nodes — where holding the matrix is
//! impossible (5.4 TB) and real threads would be pointless on the build
//! machine. Instead, the *actual scheduling algorithms* (the DAG dynamic
//! scheduler, the look-ahead pipelines, work stealing) execute over
//! virtual time: every kernel invocation becomes a scheduled completion
//! event whose duration comes from the calibrated machine models in
//! `phi-knc` / `phi-xeon`.
//!
//! Design choices:
//!
//! * **Single-threaded, deterministic.** Events at equal timestamps fire
//!   in schedule order (a monotone sequence number breaks ties), so every
//!   simulation is exactly reproducible.
//! * **Callback style.** An event is a `FnOnce(&mut Sim)`; shared
//!   scheduler state lives in `Rc<RefCell<…>>` captured by the closures.
//!   The scheduler data structures themselves (in `phi-sched`) are plain
//!   and synchronous, so the same code drives both the DES backend and
//!   the real-thread numeric backend.
//! * **Mechanism-free resources.** [`Link`] models a serialized
//!   bandwidth×latency channel (PCIe, InfiniBand); [`trace::Trace`]
//!   records per-lane spans for the Gantt charts of Fig. 7 / Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod parallel;
pub mod shared;
pub mod trace;

pub use link::Link;
pub use parallel::{LogicalProcess, Mailbox, ParallelDes, ParallelReport};
pub use shared::SharedChannel;
pub use trace::{to_chrome_json, Kind, Span, Trace};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The total event-ordering key shared by the sequential executive and
/// the rank-partitioned parallel engine: events fire by `(time, rank,
/// seq)`. Because every `(rank, seq)` pair is unique, the order is
/// *total* — no two distinct events compare equal — so pop order cannot
/// depend on heap internals or insertion order.
#[derive(Clone, Copy, Debug)]
pub struct EventKey {
    /// Firing time in simulated seconds.
    pub at: f64,
    /// Originating rank (0 for single-partition simulations).
    pub rank: u32,
    /// Monotone per-rank sequence number.
    pub seq: u64,
}

impl EventKey {
    /// Builds a key.
    pub fn new(at: f64, rank: u32, seq: u64) -> Self {
        Self { at, rank, seq }
    }
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for EventKey {}
impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.rank.cmp(&other.rank))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Recoverable misuse of the timing models, surfaced as a value instead
/// of a panic. The panicking entry points (`Link::transfer`,
/// `SharedChannel::start`) remain for internal call sites whose inputs
/// are invariants; fault-injection and other externally-driven callers
/// should prefer the `try_*` variants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModelError {
    /// A transfer was requested with a negative byte count.
    NegativeBytes {
        /// The offending byte count.
        bytes: f64,
    },
    /// A submission arrived before the channel's clock — the fluid model
    /// cannot rewind.
    OutOfOrder {
        /// Requested submit time.
        at: f64,
        /// The channel's current clock.
        now: f64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NegativeBytes { bytes } => {
                write!(f, "negative transfer size {bytes} bytes")
            }
            ModelError::OutOfOrder { at, now } => {
                write!(f, "submission at t={at} precedes channel clock t={now}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A scheduled event: fires by its [`EventKey`] — time order, rank and
/// FIFO sequence breaking ties.
struct Scheduled {
    key: EventKey,
    cb: Box<dyn FnOnce(&mut Sim)>,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

/// The simulation executive: virtual clock plus event queue.
#[derive(Default)]
pub struct Sim {
    now: f64,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    trace: Trace,
    events_fired: u64,
}

impl Sim {
    /// Fresh simulation at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Schedules `cb` to fire `delay` seconds from now.
    ///
    /// # Panics
    /// Panics on negative or NaN delays — an event cannot fire in the
    /// past.
    pub fn schedule<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: f64, cb: F) {
        assert!(
            delay >= 0.0 && delay.is_finite(),
            "invalid event delay {delay}"
        );
        self.schedule_at(self.now + delay, cb);
    }

    /// Schedules `cb` at absolute time `at` (must not be in the past).
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: f64, cb: F) {
        self.schedule_at_ranked(at, 0, cb);
    }

    /// Schedules `cb` at absolute time `at`, tagged with an explicit
    /// `rank` for the tie-break key. Events at the same timestamp fire
    /// by ascending `(rank, seq)`; single-partition callers use
    /// [`Self::schedule`]/[`Self::schedule_at`] (rank 0), which keeps
    /// their tie-break pure schedule-order FIFO.
    pub fn schedule_at_ranked<F: FnOnce(&mut Sim) + 'static>(&mut self, at: f64, rank: u32, cb: F) {
        assert!(
            at >= self.now && at.is_finite(),
            "event at {at} is before now {}",
            self.now
        );
        self.seq += 1;
        self.queue.push(Scheduled {
            key: EventKey::new(at, rank, self.seq),
            cb: Box::new(cb),
        });
    }

    /// Runs until the event queue drains. Returns the final time.
    pub fn run(&mut self) -> f64 {
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.key.at >= self.now, "time went backwards");
            self.now = ev.key.at;
            self.events_fired += 1;
            (ev.cb)(self);
        }
        self.now
    }

    /// Runs until the queue drains or the next event lies beyond
    /// `deadline`; later events stay queued.
    pub fn run_until(&mut self, deadline: f64) -> f64 {
        while let Some(ev) = self.queue.peek() {
            if ev.key.at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.key.at;
            self.events_fired += 1;
            (ev.cb)(self);
        }
        self.now
    }

    /// The span trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (record spans / enable / clear).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for (delay, tag) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            let order = order.clone();
            sim.schedule(delay, move |s| {
                order.borrow_mut().push((tag, s.now()));
            });
        }
        sim.run();
        let got = order.borrow().clone();
        assert_eq!(got, vec![('a', 1.0), ('b', 2.0), ('c', 3.0)]);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let order = Rc::new(RefCell::new(String::new()));
        let mut sim = Sim::new();
        for tag in ['x', 'y', 'z'] {
            let order = order.clone();
            sim.schedule(5.0, move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), "xyz");
    }

    #[test]
    fn events_can_schedule_events() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Sim::new();
        // A chain of 10 events, each 0.5s after its parent.
        fn chain(sim: &mut Sim, hits: Rc<RefCell<u32>>, left: u32) {
            if left == 0 {
                return;
            }
            sim.schedule(0.5, move |s| {
                *hits.borrow_mut() += 1;
                chain(s, hits, left - 1);
            });
        }
        chain(&mut sim, hits.clone(), 10);
        let end = sim.run();
        assert_eq!(*hits.borrow(), 10);
        assert!((end - 5.0).abs() < 1e-12);
        assert_eq!(sim.events_fired(), 10);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let hits = Rc::new(RefCell::new(0u32));
        let mut sim = Sim::new();
        for i in 1..=10 {
            let hits = hits.clone();
            sim.schedule(i as f64, move |_| *hits.borrow_mut() += 1);
        }
        sim.run_until(4.5);
        assert_eq!(*hits.borrow(), 4);
        sim.run();
        assert_eq!(*hits.borrow(), 10);
    }

    #[test]
    #[should_panic(expected = "invalid event delay")]
    fn negative_delay_rejected() {
        Sim::new().schedule(-1.0, |_| {});
    }

    #[test]
    fn zero_delay_fires_after_current_timestamp_peers() {
        let order = Rc::new(RefCell::new(String::new()));
        let mut sim = Sim::new();
        {
            let order = order.clone();
            sim.schedule(1.0, move |s| {
                order.borrow_mut().push('a');
                let o2 = order.clone();
                s.schedule(0.0, move |_| o2.borrow_mut().push('b'));
            });
        }
        {
            let order = order.clone();
            sim.schedule(1.0, move |_| order.borrow_mut().push('c'));
        }
        sim.run();
        // 'c' was scheduled first at t=1; 'b' lands behind it (same time,
        // later sequence number).
        assert_eq!(*order.borrow(), "acb");
    }

    #[test]
    fn event_key_order_is_total() {
        // Every pair of distinct keys compares strictly — the heap can
        // never see Ordering::Equal for two different events.
        let keys = [
            EventKey::new(0.0, 0, 0),
            EventKey::new(0.0, 0, 1),
            EventKey::new(0.0, 1, 0),
            EventKey::new(1.0, 0, 0),
            EventKey::new(-0.0, 0, 2), // total_cmp: -0.0 < +0.0
            EventKey::new(1.0, 2, 7),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                if i == j {
                    assert_eq!(a.cmp(b), Ordering::Equal);
                } else {
                    assert_ne!(a.cmp(b), Ordering::Equal, "keys {i} and {j} tied");
                    assert_eq!(a.cmp(b), b.cmp(a).reverse(), "antisymmetry {i},{j}");
                }
            }
        }
        // Lexicographic component priority: time, then rank, then seq.
        assert!(EventKey::new(1.0, 9, 9) < EventKey::new(2.0, 0, 0));
        assert!(EventKey::new(1.0, 0, 9) < EventKey::new(1.0, 1, 0));
        assert!(EventKey::new(1.0, 1, 0) < EventKey::new(1.0, 1, 1));
    }

    #[test]
    fn ranked_pop_order_is_insertion_order_independent() {
        // The same set of (time, rank) events must fire in the same
        // order no matter how they are inserted. Ranks make the key
        // unique, so the per-permutation seq numbers never decide.
        let events: Vec<(f64, u32, char)> = vec![
            (2.0, 1, 'd'),
            (1.0, 2, 'b'),
            (1.0, 0, 'a'),
            (2.0, 0, 'c'),
            (1.0, 7, 'z'),
        ];
        let mut orders = Vec::new();
        // Six distinct insertion orders (rotations + reversals).
        for perm in 0..6 {
            let mut evs = events.clone();
            let n = evs.len();
            evs.rotate_left(perm % n);
            if perm >= 3 {
                evs.reverse();
            }
            let order = Rc::new(RefCell::new(String::new()));
            let mut sim = Sim::new();
            for (at, rank, tag) in evs {
                let order = order.clone();
                sim.schedule_at_ranked(at, rank, move |_| order.borrow_mut().push(tag));
            }
            sim.run();
            orders.push(order.borrow().clone());
        }
        for o in &orders {
            assert_eq!(o, "abzcd", "pop order must be (time, rank): {orders:?}");
        }
    }

    #[test]
    fn rank_breaks_ties_before_seq() {
        // Two events at the same instant: the lower rank fires first even
        // though it was scheduled later (higher seq).
        let order = Rc::new(RefCell::new(String::new()));
        let mut sim = Sim::new();
        {
            let order = order.clone();
            sim.schedule_at_ranked(5.0, 3, move |_| order.borrow_mut().push('h'));
        }
        {
            let order = order.clone();
            sim.schedule_at_ranked(5.0, 1, move |_| order.borrow_mut().push('l'));
        }
        sim.run();
        assert_eq!(*order.borrow(), "lh");
    }
}
