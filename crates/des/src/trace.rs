//! Execution tracing for Gantt charts and time-breakdown profiles.
//!
//! Fig. 7 of the paper is a Gantt chart of the native LU execution
//! (light blue: DLASWP, orange: DTRSM, violet: DGETRF, green: DGEMM,
//! white: barrier); Fig. 9 is a stacked per-iteration breakdown of hybrid
//! HPL. Both regenerators record [`Span`]s here and render them as ASCII
//! charts / CSV series.

/// What a span of time was spent on — the palette of Fig. 7 / Fig. 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Panel factorization (DGETRF) — violet in Fig. 7.
    Panel,
    /// Row swapping (DLASWP) — light blue.
    Swap,
    /// Triangular solve (DTRSM) — orange.
    Trsm,
    /// Trailing-matrix product (DGEMM) — green.
    Gemm,
    /// Barrier / idle wait — white.
    Barrier,
    /// Communication (PCIe DMA, network broadcast).
    Comm,
    /// Packing / copying tiles.
    Pack,
    /// An injected fault window (degraded link, straggler, dead card).
    Fault,
    /// Fault-recovery work (checkpoint restore, §V re-division).
    Recovery,
    /// Anything else.
    Other,
}

impl Kind {
    /// One-character code for ASCII Gantt rendering.
    pub fn glyph(self) -> char {
        match self {
            Kind::Panel => 'P',
            Kind::Swap => 'S',
            Kind::Trsm => 'T',
            Kind::Gemm => 'G',
            Kind::Barrier => '.',
            Kind::Comm => 'C',
            Kind::Pack => 'K',
            Kind::Fault => 'F',
            Kind::Recovery => 'R',
            Kind::Other => '?',
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Panel => "DGETRF",
            Kind::Swap => "DLASWP",
            Kind::Trsm => "DTRSM",
            Kind::Gemm => "DGEMM",
            Kind::Barrier => "barrier",
            Kind::Comm => "comm",
            Kind::Pack => "pack",
            Kind::Fault => "fault",
            Kind::Recovery => "recovery",
            Kind::Other => "other",
        }
    }

    /// All kinds, for iteration in reports.
    pub const ALL: [Kind; 10] = [
        Kind::Panel,
        Kind::Swap,
        Kind::Trsm,
        Kind::Gemm,
        Kind::Barrier,
        Kind::Comm,
        Kind::Pack,
        Kind::Fault,
        Kind::Recovery,
        Kind::Other,
    ];
}

/// One traced activity on one lane (a thread group, a device, a node).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// Lane index (rendering row).
    pub lane: u32,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Activity class.
    pub kind: Kind,
}

/// A collection of spans, recording-disabled by default to keep the big
/// sweeps allocation-free.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    spans: Vec<Span>,
    enabled: bool,
}

impl Trace {
    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a span when enabled; zero-length spans are dropped.
    pub fn record(&mut self, lane: u32, start: f64, end: f64, kind: Kind) {
        debug_assert!(end >= start, "span ends before it starts");
        if self.enabled && end > start {
            self.spans.push(Span {
                lane,
                start,
                end,
                kind,
            });
        }
    }

    /// All recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Clears recorded spans (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Total time per activity kind across all lanes.
    pub fn totals(&self) -> Vec<(Kind, f64)> {
        Kind::ALL
            .iter()
            .map(|&k| {
                (
                    k,
                    self.spans
                        .iter()
                        .filter(|s| s.kind == k)
                        .map(|s| s.end - s.start)
                        .sum(),
                )
            })
            .filter(|&(_, t)| t > 0.0)
            .collect()
    }

    /// Busy fraction of a lane over `[0, horizon]`.
    pub fn lane_busy_fraction(&self, lane: u32, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .filter(|s| s.lane == lane && s.kind != Kind::Barrier)
            .map(|s| s.end - s.start)
            .sum();
        (busy / horizon).min(1.0)
    }

    /// Renders an ASCII Gantt chart: one row per lane, `width` columns
    /// spanning `[0, horizon]`. Later spans overwrite earlier ones within
    /// a cell; empty cells are spaces.
    pub fn gantt_ascii(&self, width: usize, horizon: f64) -> String {
        assert!(width > 0);
        if self.spans.is_empty() || horizon <= 0.0 {
            return String::new();
        }
        let lanes = self.spans.iter().map(|s| s.lane).max().unwrap() as usize + 1;
        let mut grid = vec![vec![' '; width]; lanes];
        for s in &self.spans {
            let c0 = ((s.start / horizon) * width as f64).floor() as usize;
            let c1 = (((s.end / horizon) * width as f64).ceil() as usize).min(width);
            for cell in grid[s.lane as usize]
                .iter_mut()
                .take(c1.max(c0 + 1).min(width))
                .skip(c0.min(width - 1))
            {
                *cell = s.kind.glyph();
            }
        }
        let mut out = String::new();
        for (lane, row) in grid.iter().enumerate() {
            out.push_str(&format!("{lane:>4} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }

    /// CSV export: `lane,start,end,kind`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lane,start,end,kind\n");
        for s in &self.spans {
            out.push_str(&format!(
                "{},{:.9},{:.9},{}\n",
                s.lane,
                s.start,
                s.end,
                s.kind.label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.record(0, 0.0, 1.0, Kind::Gemm);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn totals_by_kind() {
        let mut t = Trace::default();
        t.enable();
        t.record(0, 0.0, 1.0, Kind::Gemm);
        t.record(1, 0.0, 2.0, Kind::Gemm);
        t.record(0, 1.0, 1.5, Kind::Panel);
        t.record(0, 2.0, 2.0, Kind::Swap); // zero-length → dropped
        let totals = t.totals();
        assert!(totals.contains(&(Kind::Gemm, 3.0)));
        assert!(totals.contains(&(Kind::Panel, 0.5)));
        assert_eq!(totals.iter().filter(|(k, _)| *k == Kind::Swap).count(), 0);
    }

    #[test]
    fn busy_fraction_excludes_barriers() {
        let mut t = Trace::default();
        t.enable();
        t.record(2, 0.0, 4.0, Kind::Gemm);
        t.record(2, 4.0, 10.0, Kind::Barrier);
        assert!((t.lane_busy_fraction(2, 10.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut t = Trace::default();
        t.enable();
        t.record(0, 0.0, 5.0, Kind::Panel);
        t.record(1, 5.0, 10.0, Kind::Gemm);
        let g = t.gantt_ascii(10, 10.0);
        let rows: Vec<&str> = g.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains("PPPPP"));
        assert!(rows[1].ends_with("GGGGG"));
    }

    #[test]
    fn csv_roundtrip_fields() {
        let mut t = Trace::default();
        t.enable();
        t.record(3, 0.25, 0.75, Kind::Trsm);
        let csv = t.to_csv();
        assert!(csv.starts_with("lane,start,end,kind\n"));
        assert!(csv.contains("3,0.250000000,0.750000000,DTRSM"));
    }

    #[test]
    fn clear_retains_enabled() {
        let mut t = Trace::default();
        t.enable();
        t.record(0, 0.0, 1.0, Kind::Comm);
        t.clear();
        assert!(t.spans().is_empty());
        t.record(0, 0.0, 1.0, Kind::Comm);
        assert_eq!(t.spans().len(), 1);
    }
}

/// Chrome-tracing ("about://tracing" / Perfetto) JSON export: one
/// complete event per span, lanes as thread ids. Load the output in a
/// trace viewer for an interactive version of Fig. 7.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    for (i, s) in trace.spans().iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        // Times in microseconds, as the format expects.
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"cat\": \"lu\", \"ph\": \"X\", \"ts\": {:.3}, \
             \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
            s.kind.label(),
            s.start * 1e6,
            (s.end - s.start) * 1e6,
            s.lane
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod chrome_tests {
    use super::*;

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::default();
        t.enable();
        t.record(0, 0.0, 1e-3, Kind::Panel);
        t.record(1, 1e-3, 2e-3, Kind::Gemm);
        let json = to_chrome_json(&t);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        assert!(json.contains("\"name\": \"DGETRF\""));
        assert!(json.contains("\"dur\": 1000.000"));
    }

    #[test]
    fn empty_trace_gives_empty_array() {
        let json = to_chrome_json(&Trace::default());
        assert_eq!(json, "[\n\n]\n");
    }
}
