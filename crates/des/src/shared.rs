//! Fair-sharing channel: concurrent transfers split the bandwidth.
//!
//! [`crate::Link`] serializes transfers — correct for a DMA engine that
//! processes one descriptor at a time. A PCIe link carrying *independent*
//! DMA streams (e.g. two sockets pushing tiles to two cards through a
//! shared root complex, or pack traffic competing with swap traffic —
//! the contention behind the paper's "≈4 GB/s effective" footnote)
//! behaves closer to **processor sharing**: `k` active transfers each
//! progress at `bandwidth / k`.
//!
//! [`SharedChannel`] implements exact max-min processor sharing for equal
//! weights: completion times are computed by event-stepping between
//! transfer arrivals/departures.

/// One in-flight transfer.
#[derive(Clone, Copy, Debug)]
struct Flow {
    /// Remaining payload bytes.
    remaining: f64,
    /// Caller's identifier.
    id: u64,
}

/// A processor-sharing channel.
///
/// Usage: [`SharedChannel::start`] transfers at their submit times (in
/// any order of calls, but submit times must be non-decreasing), then
/// [`SharedChannel::drain`] returns every completion time.
#[derive(Clone, Debug)]
pub struct SharedChannel {
    bandwidth: f64,
    now: f64,
    active: Vec<Flow>,
    completed: Vec<(u64, f64)>,
}

impl SharedChannel {
    /// A channel with `bandwidth` bytes/second.
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0);
        Self {
            bandwidth,
            now: 0.0,
            active: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Advances the fluid model to absolute time `t`, retiring flows that
    /// finish on the way.
    fn advance_to(&mut self, t: f64) {
        while !self.active.is_empty() && self.now < t {
            let share = self.bandwidth / self.active.len() as f64;
            // Earliest finisher under the current share.
            let min_remaining = self
                .active
                .iter()
                .map(|f| f.remaining)
                .fold(f64::INFINITY, f64::min);
            let finish_dt = min_remaining / share;
            let step = finish_dt.min(t - self.now);
            for f in &mut self.active {
                f.remaining -= share * step;
            }
            self.now += step;
            let now = self.now;
            let completed = &mut self.completed;
            self.active.retain(|f| {
                if f.remaining <= 1e-9 {
                    completed.push((f.id, now));
                    false
                } else {
                    true
                }
            });
        }
        self.now = self.now.max(t);
    }

    /// Begins a transfer of `bytes` with caller-chosen `id` at time `at`
    /// (must be ≥ every earlier `at`).
    ///
    /// # Panics
    /// Panics on out-of-order submission or negative size; use
    /// [`SharedChannel::try_start`] for untrusted inputs.
    pub fn start(&mut self, at: f64, id: u64, bytes: f64) {
        self.try_start(at, id, bytes)
            .expect("submissions must be time-ordered with non-negative sizes");
    }

    /// Fallible [`SharedChannel::start`]: out-of-order submissions and
    /// negative sizes come back as typed errors, leaving the channel
    /// untouched.
    pub fn try_start(&mut self, at: f64, id: u64, bytes: f64) -> Result<(), crate::ModelError> {
        if at < self.now - 1e-12 {
            return Err(crate::ModelError::OutOfOrder { at, now: self.now });
        }
        if bytes < 0.0 {
            return Err(crate::ModelError::NegativeBytes { bytes });
        }
        self.advance_to(at);
        if bytes == 0.0 {
            self.completed.push((id, at));
        } else {
            self.active.push(Flow {
                remaining: bytes,
                id,
            });
        }
        Ok(())
    }

    /// Runs every remaining flow to completion and returns all
    /// completions as `(id, finish_time)` sorted by time.
    pub fn drain(mut self) -> Vec<(u64, f64)> {
        while !self.active.is_empty() {
            let horizon = self.now
                + self.active.iter().map(|f| f.remaining).fold(0.0, f64::max)
                    / (self.bandwidth / self.active.len() as f64)
                + 1.0;
            self.advance_to(horizon);
        }
        let mut done = self.completed;
        done.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_of(done: &[(u64, f64)], id: u64) -> f64 {
        done.iter().find(|(i, _)| *i == id).expect("completed").1
    }

    #[test]
    fn lone_transfer_gets_full_bandwidth() {
        let mut ch = SharedChannel::new(4e9);
        ch.start(0.0, 1, 4e9);
        let done = ch.drain();
        assert!((finish_of(&done, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_simultaneous_transfers_halve_the_rate() {
        let mut ch = SharedChannel::new(1e9);
        ch.start(0.0, 1, 1e9);
        ch.start(0.0, 2, 1e9);
        let done = ch.drain();
        // Each gets 0.5 GB/s → both finish at t = 2.
        assert!((finish_of(&done, 1) - 2.0).abs() < 1e-9);
        assert!((finish_of(&done, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_flow_finishes_first_and_releases_bandwidth() {
        let mut ch = SharedChannel::new(1e9);
        ch.start(0.0, 1, 2e9); // long
        ch.start(0.0, 2, 0.5e9); // short
        let done = ch.drain();
        // Shared until the short one finishes at t=1 (0.5 GB at 0.5 GB/s);
        // the long one then has 1.5 GB left at full rate → t = 2.5.
        assert!((finish_of(&done, 2) - 1.0).abs() < 1e-9);
        assert!((finish_of(&done, 1) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_shares_only_while_overlapping() {
        let mut ch = SharedChannel::new(1e9);
        ch.start(0.0, 1, 1e9);
        ch.start(0.5, 2, 1e9);
        let done = ch.drain();
        // Flow 1: 0.5 GB alone (t=0.5), then shares: 0.5 GB left at
        // 0.5 GB/s → t = 1.5. Flow 2: 0.5 GB shared (t=1.5), then 0.5 GB
        // alone → t = 2.0.
        assert!((finish_of(&done, 1) - 1.5).abs() < 1e-9);
        assert!((finish_of(&done, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conserves_total_service() {
        // Whatever the arrival pattern, the last completion equals total
        // bytes / bandwidth when the channel never idles.
        let mut ch = SharedChannel::new(2e9);
        let sizes = [1e9, 3e9, 0.5e9, 2.5e9];
        for (i, &s) in sizes.iter().enumerate() {
            ch.start(0.1 * i as f64, i as u64, s);
        }
        let done = ch.drain();
        let total: f64 = sizes.iter().sum();
        let last = done.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        assert!((last - total / 2e9).abs() < 1e-9, "{last}");
    }

    #[test]
    fn out_of_order_submission_is_a_typed_error() {
        let mut ch = SharedChannel::new(1e9);
        ch.start(2.0, 1, 1e9);
        let err = ch.try_start(1.0, 2, 1e9).unwrap_err();
        assert!(matches!(err, crate::ModelError::OutOfOrder { .. }));
        assert!(ch.try_start(2.5, 3, -4.0).is_err());
        // The channel still drains the one valid flow.
        let done = ch.drain();
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn zero_byte_flow_completes_instantly() {
        let mut ch = SharedChannel::new(1e9);
        ch.start(3.0, 7, 0.0);
        let done = ch.drain();
        assert_eq!(done, vec![(7, 3.0)]);
    }
}
