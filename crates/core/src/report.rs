//! Result types shared by all Linpack flavours.

use phi_des::Kind;

/// The FLOP count HPL credits a solved `N × N` system with:
/// `2/3 N³ + 3/2 N²` (factorization plus solve).
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 1.5 * n * n
}

/// A performance result with its efficiency denominator.
#[derive(Clone, Debug)]
pub struct GigaflopsReport {
    /// Problem size.
    pub n: usize,
    /// Wall (virtual) time in seconds.
    pub time_s: f64,
    /// Achieved GFLOPS (HPL convention).
    pub gflops: f64,
    /// Peak GFLOPS the efficiency is measured against.
    pub peak_gflops: f64,
    /// Time per activity kind, when the run was traced.
    pub breakdown: Vec<(Kind, f64)>,
}

impl GigaflopsReport {
    /// Builds a report from a timed run.
    pub fn new(n: usize, time_s: f64, peak_gflops: f64) -> Self {
        assert!(time_s > 0.0, "non-positive run time");
        Self {
            n,
            time_s,
            gflops: hpl_flops(n) / time_s / 1e9,
            peak_gflops,
            breakdown: Vec::new(),
        }
    }

    /// Efficiency in `[0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.gflops / self.peak_gflops
    }

    /// Attaches a time breakdown.
    pub fn with_breakdown(mut self, breakdown: Vec<(Kind, f64)>) -> Self {
        self.breakdown = breakdown;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_convention() {
        // 2/3 N³ dominates; the N² term matters at small N.
        let f = hpl_flops(30_000);
        assert!((f - (2.0 / 3.0 * 2.7e13 + 1.5 * 9e8)).abs() / f < 1e-12);
    }

    #[test]
    fn report_efficiency() {
        let r = GigaflopsReport::new(30_000, 21.63, 1056.0);
        // 2/3·30000³/21.63s ≈ 832 GFLOPS ≈ 78.8% — the paper's native
        // headline.
        assert!((r.gflops - 832.0).abs() < 2.0, "{}", r.gflops);
        assert!((r.efficiency() - 0.788).abs() < 0.003);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_time_rejected() {
        GigaflopsReport::new(10, 0.0, 1.0);
    }
}
