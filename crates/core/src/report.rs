//! Result types shared by all Linpack flavours.

use phi_des::Kind;
use phi_fabric::RemapStrategy;

/// The FLOP count HPL credits a solved `N × N` system with:
/// `2/3 N³ + 3/2 N²` (factorization plus solve).
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 1.5 * n * n
}

/// Fault/recovery accounting attached to a run executed under a
/// [`phi_faults::FaultPlan`]-driven simulation — the degraded-vs-healthy
/// comparison the fault campaign reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSummary {
    /// Fingerprint of the plan that drove the run (replay identity).
    pub plan_fingerprint: u64,
    /// Scheduled fault events.
    pub events: usize,
    /// Coprocessors permanently lost during the run.
    pub cards_lost: usize,
    /// Host ranks permanently lost during the run.
    pub hosts_lost: usize,
    /// Grid the survivors re-formed after the last host death — only
    /// under a wholesale reshape (`(p, q)` of the fallback grid). A
    /// locality-preserving patch keeps the original grid and reports
    /// `None`.
    pub fallback_grid: Option<(usize, usize)>,
    /// Recovery remapping strategy the run was configured with.
    pub remap: RemapStrategy,
    /// Total `nb × nb` trailing blocks redistributed across all host
    /// deaths (the paper-table "redistribution volume" — a patch remap
    /// moves only the dead ranks' block-cyclic share, a wholesale
    /// reshape moves the whole trailing matrix).
    pub blocks_moved: usize,
    /// Total panel-checkpoint time paid, seconds.
    pub checkpoint_s: f64,
    /// Total recovery time (restore + §V re-division), seconds.
    pub recovery_s: f64,
    /// Stages executed with fewer cards than configured.
    pub degraded_stages: usize,
    /// Wall time of the identical configuration with no faults, seconds.
    pub healthy_time_s: f64,
    /// GFLOPS of the identical configuration with no faults.
    pub healthy_gflops: f64,
}

impl FaultSummary {
    /// Fractional slowdown versus the healthy run:
    /// `degraded_time / healthy_time - 1`.
    pub fn overhead_fraction(&self, degraded_time_s: f64) -> f64 {
        degraded_time_s / self.healthy_time_s - 1.0
    }
}

/// A performance result with its efficiency denominator.
#[derive(Clone, Debug)]
pub struct GigaflopsReport {
    /// Problem size.
    pub n: usize,
    /// Wall (virtual) time in seconds.
    pub time_s: f64,
    /// Achieved GFLOPS (HPL convention).
    pub gflops: f64,
    /// Peak GFLOPS the efficiency is measured against.
    pub peak_gflops: f64,
    /// Time per activity kind, when the run was traced.
    pub breakdown: Vec<(Kind, f64)>,
    /// Fault/recovery accounting, when the run was fault-injected.
    pub faults: Option<FaultSummary>,
}

impl GigaflopsReport {
    /// Builds a report from a timed run.
    pub fn new(n: usize, time_s: f64, peak_gflops: f64) -> Self {
        assert!(time_s > 0.0, "non-positive run time");
        Self {
            n,
            time_s,
            gflops: hpl_flops(n) / time_s / 1e9,
            peak_gflops,
            breakdown: Vec::new(),
            faults: None,
        }
    }

    /// Efficiency in `[0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.gflops / self.peak_gflops
    }

    /// Attaches a time breakdown.
    pub fn with_breakdown(mut self, breakdown: Vec<(Kind, f64)>) -> Self {
        self.breakdown = breakdown;
        self
    }

    /// Attaches fault accounting.
    pub fn with_faults(mut self, faults: FaultSummary) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Efficiency lost to faults: healthy efficiency minus achieved
    /// efficiency, `None` for a run without fault accounting.
    pub fn fault_efficiency_loss(&self) -> Option<f64> {
        self.faults
            .map(|f| (f.healthy_gflops - self.gflops) / self.peak_gflops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_count_convention() {
        // 2/3 N³ dominates; the N² term matters at small N.
        let f = hpl_flops(30_000);
        assert!((f - (2.0 / 3.0 * 2.7e13 + 1.5 * 9e8)).abs() / f < 1e-12);
    }

    #[test]
    fn report_efficiency() {
        let r = GigaflopsReport::new(30_000, 21.63, 1056.0);
        // 2/3·30000³/21.63s ≈ 832 GFLOPS ≈ 78.8% — the paper's native
        // headline.
        assert!((r.gflops - 832.0).abs() < 2.0, "{}", r.gflops);
        assert!((r.efficiency() - 0.788).abs() < 0.003);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_time_rejected() {
        GigaflopsReport::new(10, 0.0, 1.0);
    }

    #[test]
    fn fault_summary_accounting() {
        let healthy = GigaflopsReport::new(30_000, 20.0, 1056.0);
        let degraded = GigaflopsReport::new(30_000, 25.0, 1056.0).with_faults(FaultSummary {
            plan_fingerprint: 0xABCD,
            events: 3,
            cards_lost: 1,
            hosts_lost: 0,
            fallback_grid: None,
            remap: RemapStrategy::default(),
            blocks_moved: 0,
            checkpoint_s: 0.5,
            recovery_s: 1.0,
            degraded_stages: 7,
            healthy_time_s: healthy.time_s,
            healthy_gflops: healthy.gflops,
        });
        let f = degraded.faults.unwrap();
        assert!((f.overhead_fraction(degraded.time_s) - 0.25).abs() < 1e-12);
        let loss = degraded.fault_efficiency_loss().unwrap();
        assert!(loss > 0.0 && loss < 1.0);
        assert!(healthy.faults.is_none());
        assert_eq!(healthy.fault_efficiency_loss(), None);
    }
}
