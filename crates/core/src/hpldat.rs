//! `HPL.dat` — the standard input file of High Performance Linpack.
//!
//! The paper's hybrid implementation "is based on the standard
//! open-source implementation, High Performance Linpack (HPL)", which is
//! configured through the venerable fixed-layout `HPL.dat` file: a value
//! (or list of values) at the start of each line, description text after
//! it. This module parses the subset of that format our flavours consume
//! — problem sizes, block sizes, process grids, look-ahead depth — and
//! expands it into the cross-product of runs HPL would execute.

use crate::hybrid::{HybridConfig, Lookahead};
use phi_fabric::ProcessGrid;

/// The parsed, expanded benchmark plan.
#[derive(Clone, Debug, PartialEq)]
pub struct HplDat {
    /// Problem sizes (`N`s line).
    pub ns: Vec<usize>,
    /// Block sizes (`NB`s line).
    pub nbs: Vec<usize>,
    /// Process grids (`P`s × `Q`s, zipped as HPL does).
    pub grids: Vec<(usize, usize)>,
    /// Look-ahead depth (0 = none, 1 = basic; we map ≥2 to pipelined).
    pub depth: usize,
}

/// A parse failure with its line number (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HPL.dat line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_count_then_list(
    lines: &[(usize, &str)],
    idx: usize,
    what: &str,
) -> Result<(Vec<usize>, usize), ParseError> {
    let (ln, count_line) = lines.get(idx).ok_or(ParseError {
        line: 0,
        message: format!("missing '# of {what}' line"),
    })?;
    let count: usize = first_token(count_line).parse().map_err(|_| ParseError {
        line: *ln,
        message: format!("expected a count of {what}, got '{count_line}'"),
    })?;
    let (ln2, list_line) = lines.get(idx + 1).ok_or(ParseError {
        line: 0,
        message: format!("missing {what} list line"),
    })?;
    let values: Vec<usize> = list_line
        .split_whitespace()
        .take(count)
        .map(|t| {
            t.parse().map_err(|_| ParseError {
                line: *ln2,
                message: format!("bad {what} value '{t}'"),
            })
        })
        .collect::<Result<_, _>>()?;
    if values.len() < count {
        return Err(ParseError {
            line: *ln2,
            message: format!("{what} list has {} values, expected {count}", values.len()),
        });
    }
    if values.is_empty() {
        return Err(ParseError {
            line: *ln,
            message: format!("at least one {what} value required"),
        });
    }
    Ok((values, idx + 2))
}

fn first_token(line: &str) -> &str {
    line.split_whitespace().next().unwrap_or("")
}

impl HplDat {
    /// Parses the standard layout:
    ///
    /// ```text
    /// <title line>
    /// <output line>                 (ignored)
    /// <device line>                 (ignored)
    /// 2        # of problems sizes (N)
    /// 84000 168000   Ns
    /// 1        # of NBs
    /// 1200     NBs
    /// 0        PMAP ...             (ignored)
    /// 2        # of process grids (P x Q)
    /// 1 2      Ps
    /// 1 2      Qs
    /// 16.0     threshold            (ignored)
    /// ...      (remaining algorithmic lines optional)
    /// 1        DEPTHs (0=none, 1=basic, >=2 pipelined)   [optional]
    /// ```
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        if lines.len() < 9 {
            return Err(ParseError {
                line: lines.len(),
                message: "file too short for the HPL.dat layout".into(),
            });
        }
        // Lines 0..3 are title/output/device headers.
        let (ns, idx) = parse_count_then_list(&lines, 3, "problem sizes")?;
        let (nbs, idx) = parse_count_then_list(&lines, idx, "NBs")?;
        // PMAP line (ignored).
        let idx = idx + 1;
        let (ln, count_line) = lines.get(idx).ok_or(ParseError {
            line: 0,
            message: "missing process-grid count".into(),
        })?;
        let ngrids: usize = first_token(count_line).parse().map_err(|_| ParseError {
            line: *ln,
            message: format!("expected grid count, got '{count_line}'"),
        })?;
        let parse_dim = |offset: usize, what: &str| -> Result<Vec<usize>, ParseError> {
            let (ln, line) = lines.get(idx + offset).ok_or(ParseError {
                line: 0,
                message: format!("missing {what} line"),
            })?;
            line.split_whitespace()
                .take(ngrids)
                .map(|t| {
                    t.parse().map_err(|_| ParseError {
                        line: *ln,
                        message: format!("bad {what} value '{t}'"),
                    })
                })
                .collect()
        };
        let ps = parse_dim(1, "Ps")?;
        let qs = parse_dim(2, "Qs")?;
        if ps.len() != ngrids || qs.len() != ngrids {
            return Err(ParseError {
                line: lines[idx].0,
                message: format!("expected {ngrids} P and Q values"),
            });
        }
        let grids: Vec<(usize, usize)> = ps.into_iter().zip(qs).collect();
        if grids.iter().any(|&(p, q)| p == 0 || q == 0) {
            return Err(ParseError {
                line: lines[idx].0,
                message: "process grid dimensions must be positive".into(),
            });
        }

        // Look for an optional DEPTHs line: a "# of lookahead depth" count
        // followed by the depth values (we take the first).
        let mut depth = 1usize;
        for w in lines.windows(2) {
            let label = w[0].1.to_ascii_lowercase();
            if label.contains("lookahead depth") {
                if let Ok(d) = first_token(w[1].1).parse() {
                    depth = d;
                }
            }
        }
        Ok(Self {
            ns,
            nbs,
            grids,
            depth,
        })
    }

    /// The look-ahead scheme HPL's DEPTH maps to in our implementation.
    pub fn lookahead(&self) -> Lookahead {
        match self.depth {
            0 => Lookahead::None,
            1 => Lookahead::Basic,
            _ => Lookahead::Pipelined,
        }
    }

    /// Emits the plan in the canonical fixed layout [`parse`](Self::parse)
    /// reads. The emitter is a pure function of the four plan fields, so
    /// `render → parse → render` is byte-identical — the property that
    /// lets the tuner hand its winning configuration back through the
    /// standard HPL input format.
    pub fn render(&self) -> String {
        fn line(value: &str, desc: &str) -> String {
            format!("{value:<12} {desc}\n")
        }
        fn list(values: &[usize]) -> String {
            values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        }
        let ps: Vec<usize> = self.grids.iter().map(|&(p, _)| p).collect();
        let qs: Vec<usize> = self.grids.iter().map(|&(_, q)| q).collect();
        let mut out = String::new();
        out.push_str("HPLinpack benchmark input file (linpack-phi reproduction)\n");
        out.push_str(&line("HPL.out", "output file name (if any)"));
        out.push_str(&line("6", "device out (6=stdout)"));
        out.push_str(&line(&self.ns.len().to_string(), "# of problems sizes (N)"));
        out.push_str(&line(&list(&self.ns), "Ns"));
        out.push_str(&line(&self.nbs.len().to_string(), "# of NBs"));
        out.push_str(&line(&list(&self.nbs), "NBs"));
        out.push_str(&line("0", "PMAP process mapping (0=Row-,1=Column-major)"));
        out.push_str(&line(
            &self.grids.len().to_string(),
            "# of process grids (P x Q)",
        ));
        out.push_str(&line(&list(&ps), "Ps"));
        out.push_str(&line(&list(&qs), "Qs"));
        out.push_str(&line("16.0", "threshold"));
        out.push_str(&line("1", "# of lookahead depth"));
        out.push_str(&line(
            &self.depth.to_string(),
            "DEPTHs (0=none, 1=basic, >=2 pipelined)",
        ));
        out
    }

    /// Expands the cross-product of (N, NB, grid) into run configurations,
    /// in HPL's nesting order (grids outermost, then N, then NB).
    pub fn expand(&self, cards_per_node: usize, host_mem_gib: f64) -> Vec<HybridConfig> {
        let mut out = Vec::new();
        for &(p, q) in &self.grids {
            for &n in &self.ns {
                for &nb in &self.nbs {
                    let mut cfg = HybridConfig::new(n, ProcessGrid::new(p, q), cards_per_node);
                    cfg.nb = nb;
                    cfg.lookahead = self.lookahead();
                    cfg.host_mem_gib = host_mem_gib;
                    out.push(cfg);
                }
            }
        }
        out
    }
}

/// A ready-made HPL.dat reproducing the paper's Table III pipelined
/// single-card column.
pub fn paper_table3_dat() -> &'static str {
    "HPLinpack benchmark input file (linpack-phi reproduction)\n\
     HPL.out      output file name (if any)\n\
     6            device out (6=stdout)\n\
     3            # of problems sizes (N)\n\
     84000 168000 825000  Ns\n\
     1            # of NBs\n\
     1200         NBs\n\
     0            PMAP process mapping (0=Row-,1=Column-major)\n\
     3            # of process grids (P x Q)\n\
     1 2 10       Ps\n\
     1 2 10       Qs\n\
     16.0         threshold\n\
     1            # of lookahead depth\n\
     2            DEPTHs (>=2 selects the pipelined scheme)\n"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_plan() {
        let dat = HplDat::parse(paper_table3_dat()).unwrap();
        assert_eq!(dat.ns, vec![84_000, 168_000, 825_000]);
        assert_eq!(dat.nbs, vec![1200]);
        assert_eq!(dat.grids, vec![(1, 1), (2, 2), (10, 10)]);
        assert_eq!(dat.depth, 2);
        assert_eq!(dat.lookahead(), Lookahead::Pipelined);
    }

    #[test]
    fn expansion_order_and_count() {
        let dat = HplDat::parse(paper_table3_dat()).unwrap();
        let runs = dat.expand(1, 64.0);
        assert_eq!(runs.len(), 9, "3 grids x 3 Ns x 1 NB");
        // Grid outermost.
        assert_eq!(runs[0].grid.p, 1);
        assert_eq!(runs[0].n, 84_000);
        assert_eq!(runs[3].grid.p, 2);
        assert_eq!(runs[8].grid.p, 10);
        assert_eq!(runs[8].n, 825_000);
        assert!(runs.iter().all(|c| c.nb == 1200));
    }

    #[test]
    fn depth_zero_and_one_map_to_schemes() {
        let base = paper_table3_dat().replace(
            "2            DEPTHs (>=2 selects the pipelined scheme)",
            "0   DEPTHs",
        );
        assert_eq!(HplDat::parse(&base).unwrap().lookahead(), Lookahead::None);
        let one = paper_table3_dat().replace(
            "2            DEPTHs (>=2 selects the pipelined scheme)",
            "1   DEPTHs",
        );
        assert_eq!(HplDat::parse(&one).unwrap().lookahead(), Lookahead::Basic);
    }

    #[test]
    fn missing_depth_defaults_to_basic() {
        let truncated: String = paper_table3_dat()
            .lines()
            .take(12)
            .collect::<Vec<_>>()
            .join("\n");
        let dat = HplDat::parse(&truncated).unwrap();
        assert_eq!(dat.depth, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = paper_table3_dat().replace("84000 168000 825000  Ns", "84000 xyz 825000 Ns");
        let err = HplDat::parse(&bad).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("xyz"));

        let short = "just\ntwo lines";
        assert!(HplDat::parse(short).is_err());

        let zero_grid = paper_table3_dat().replace("1 2 10       Ps", "0 2 10 Ps");
        assert!(HplDat::parse(&zero_grid).is_err());
    }

    #[test]
    fn render_parse_render_is_byte_identical_for_paper_tables() {
        // Table II single-node setup and Table III multi-node plan.
        let table2 = HplDat {
            ns: vec![84_000],
            nbs: vec![1200],
            grids: vec![(1, 1)],
            depth: 2,
        };
        let table3 = HplDat::parse(paper_table3_dat()).unwrap();
        for dat in [table2, table3] {
            let first = dat.render();
            let reparsed = HplDat::parse(&first).unwrap();
            assert_eq!(reparsed, dat, "parse must invert render");
            let second = reparsed.render();
            assert_eq!(first.as_bytes(), second.as_bytes(), "round-trip bytes");
        }
    }

    #[test]
    fn rendered_depth_survives_all_schemes() {
        for depth in [0usize, 1, 2, 4] {
            let dat = HplDat {
                ns: vec![10_000, 20_000],
                nbs: vec![960, 1200],
                grids: vec![(2, 4), (1, 8)],
                depth,
            };
            let back = HplDat::parse(&dat.render()).unwrap();
            assert_eq!(back, dat);
            assert_eq!(back.lookahead(), dat.lookahead());
        }
    }

    #[test]
    fn count_truncates_extra_values() {
        let extra = paper_table3_dat().replace("1            # of NBs", "1  # of NBs");
        let dat = HplDat::parse(&extra).unwrap();
        assert_eq!(dat.nbs.len(), 1);
    }
}
