//! Energy-efficiency analysis of the hybrid vs native designs.
//!
//! The paper's conclusion makes a quantitative argument it never tables:
//! "the fact that Sandy Bridge EP is several times slower than Knights
//! Corner, but consumes comparable power, makes \[the\] hybrid
//! implementation less energy efficient compared to the fully-native
//! multi-node implementation that only uses Knights Corners" (with CPU
//! cores "put into a deep sleep state"). This module carries that
//! argument to numbers: node power models for the three system shapes
//! and GFLOPS/W for the corresponding Linpack results.

use crate::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use crate::native::cluster::{simulate_native_cluster, NativeClusterConfig};
use phi_fabric::ProcessGrid;

/// Node power model (watts), era-appropriate values.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Dual-socket Sandy Bridge EP node under load (2 × 115 W TDP plus
    /// DRAM, board, fans).
    pub host_active_w: f64,
    /// The same node with CPU packages in a deep sleep state.
    pub host_sleep_w: f64,
    /// One Knights Corner card under load (300 W TDP class, sustained).
    pub card_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            host_active_w: 350.0,
            host_sleep_w: 80.0,
            card_w: 245.0,
        }
    }
}

impl PowerModel {
    /// Power of a hybrid node with `cards` coprocessors (host active).
    pub fn hybrid_node_w(&self, cards: usize) -> f64 {
        self.host_active_w + cards as f64 * self.card_w
    }

    /// Power of a native node: card at full tilt, host asleep.
    pub fn native_node_w(&self) -> f64 {
        self.host_sleep_w + self.card_w
    }

    /// Power of a CPU-only node.
    pub fn cpu_node_w(&self) -> f64 {
        self.host_active_w
    }
}

/// GFLOPS/W of one system shape on its Linpack sweet spot.
#[derive(Clone, Copy, Debug)]
pub struct EnergyPoint {
    /// Achieved GFLOPS (whole machine).
    pub gflops: f64,
    /// Total power, watts.
    pub watts: f64,
}

impl EnergyPoint {
    /// The metric.
    pub fn gflops_per_watt(&self) -> f64 {
        self.gflops / self.watts
    }
}

/// Evaluates the three designs on comparable per-device loads.
///
/// `nodes` must be a perfect square (a √nodes × √nodes grid is used).
pub fn compare_designs(
    nodes: usize,
    power: &PowerModel,
) -> (EnergyPoint, EnergyPoint, EnergyPoint) {
    let side = (nodes as f64).sqrt() as usize;
    assert_eq!(side * side, nodes, "nodes must be a perfect square");
    let grid = ProcessGrid::new(side, side);

    // CPU-only: big-memory problem.
    let cpu = {
        let mut cfg = HybridConfig::new(84_000 * side, grid, 0);
        cfg.lookahead = Lookahead::Basic;
        let r = simulate_cluster(&cfg, false);
        EnergyPoint {
            gflops: r.report.gflops,
            watts: nodes as f64 * power.cpu_node_w(),
        }
    };

    // Hybrid: one card per node, pipelined look-ahead, big-memory problem.
    let hybrid = {
        let cfg = HybridConfig::new(84_000 * side, grid, 1);
        let r = simulate_cluster(&cfg, false);
        EnergyPoint {
            gflops: r.report.gflops,
            watts: nodes as f64 * power.hybrid_node_w(1),
        }
    };

    // Native: GDDR-sized problem (30K per card), host asleep.
    let native = {
        let cfg = NativeClusterConfig::new(30_000 * side, side, side);
        let r = simulate_native_cluster(&cfg);
        EnergyPoint {
            gflops: r.gflops,
            watts: nodes as f64 * power.native_node_w(),
        }
    };

    (cpu, hybrid, native)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_model_shapes() {
        let p = PowerModel::default();
        assert!(p.hybrid_node_w(1) > p.native_node_w());
        assert!(p.hybrid_node_w(2) > p.hybrid_node_w(1));
        assert!(p.native_node_w() < p.cpu_node_w());
    }

    #[test]
    fn native_is_most_energy_efficient() {
        // The conclusion's claim, on a 2×2 cluster.
        let (cpu, hybrid, native) = compare_designs(4, &PowerModel::default());
        assert!(
            hybrid.gflops_per_watt() > cpu.gflops_per_watt(),
            "adding a card must improve GF/W: {:.3} vs {:.3}",
            hybrid.gflops_per_watt(),
            cpu.gflops_per_watt()
        );
        assert!(
            native.gflops_per_watt() > hybrid.gflops_per_watt(),
            "native (host asleep) must beat hybrid: {:.3} vs {:.3}",
            native.gflops_per_watt(),
            hybrid.gflops_per_watt()
        );
    }

    #[test]
    fn hybrid_still_wins_raw_performance() {
        // The trade the paper describes: hybrid gives up GF/W to gain
        // problem size and absolute GFLOPS per node pair.
        let (_, hybrid, native) = compare_designs(1, &PowerModel::default());
        assert!(hybrid.gflops > native.gflops);
    }
}
