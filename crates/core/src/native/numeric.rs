//! Numeric backend: DAG-scheduled LU on a real matrix with real threads.
//!
//! This is the Fig. 5 algorithm executing actual arithmetic: thread
//! groups pull `Factor` / `Update` tasks from the shared
//! [`DagScheduler`], panels are factored with `phi-blas::getf2`, and the
//! composite `Task2` applies pivoting, the forward solve and the trailing
//! GEMM — with the GEMM rows split cooperatively across the group's
//! member threads.
//!
//! # Safety architecture
//!
//! The matrix is shared mutably across threads through a `SharedMatrix`
//! cell.
//! Exclusivity is guaranteed by the DAG discipline, not the borrow
//! checker:
//!
//! * at most one task targets a panel at a time (the scheduler's `busy`
//!   flag);
//! * `Update { stage: i, panel: j }` *writes* only panel `j` and *reads*
//!   panel `i`, which is factored and never written again;
//! * members of one task write disjoint row ranges of panel `j`.
//!
//! After the DAG drains, the left-of-panel row swaps are applied in one
//! sequential fixup pass, which makes the stored factors identical to the
//! sequential `getrf` reference (tested).

use phi_blas::gemm::{gemm_with, BlockSizes};
use phi_blas::lu::{getf2, LuError, LuFactors};
use phi_blas::trsm::trsm_left_lower_unit;
use phi_matrix::{Matrix, MatrixViewMut};
use phi_sched::{run_group_scheduled, DagScheduler, GroupPlan, Task};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A matrix shared across worker threads; see the module docs for the
/// aliasing discipline.
struct SharedMatrix {
    cell: UnsafeCell<Matrix<f64>>,
}

// SAFETY: concurrent access is restricted to disjoint windows by the DAG
// discipline documented above.
unsafe impl Sync for SharedMatrix {}

impl SharedMatrix {
    fn new(m: Matrix<f64>) -> Self {
        Self {
            cell: UnsafeCell::new(m),
        }
    }

    /// Returns a mutable window; caller must guarantee disjointness.
    #[allow(clippy::mut_from_ref)]
    unsafe fn window(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_, f64> {
        // SAFETY: the caller guarantees no other live window overlaps
        // [r0, r0+nr) × [c0, c0+nc) — the DAG discipline orders all
        // accesses to a region, so the exclusive reborrow is unique.
        let m = unsafe { &mut *self.cell.get() };
        m.sub_mut(r0, c0, nr, nc)
    }

    fn into_inner(self) -> Matrix<f64> {
        self.cell.into_inner()
    }
}

/// An `UnsafeCell` that may be shared across the worker threads; all
/// accesses are ordered by the DAG discipline (closures capture fields
/// precisely in Rust 2021, so the `Sync` assertion must live on the cell
/// itself, not on a containing struct).
struct SyncCell<T>(UnsafeCell<T>);
unsafe impl<T> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn new(v: T) -> Self {
        Self(UnsafeCell::new(v))
    }
    fn get(&self) -> *mut T {
        self.0.get()
    }
    fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

/// Per-panel pivot storage: written once by the factoring group's master,
/// read by later update tasks (ordering guaranteed by the DAG).
struct PivotStore {
    pivots: Vec<SyncCell<Vec<usize>>>,
    /// `ready[j]` = latest stage whose swap+TRSM finished on panel `j`
    /// plus one; members spin on it before starting their GEMM share.
    ready: Vec<AtomicUsize>,
}

/// Factorizes `a` in place with `groups × threads_per_group` real
/// threads using the paper's dynamic DAG scheduling. Returns the global
/// pivot vector. The factors are identical to sequential `getrf`.
pub fn factorize_parallel(
    a: &mut Matrix<f64>,
    nb: usize,
    plan: &GroupPlan,
) -> Result<Vec<usize>, LuError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square matrices only");
    assert!(nb > 0);
    if n == 0 {
        return Ok(Vec::new());
    }
    let npanels = n.div_ceil(nb);
    let dag = DagScheduler::new(npanels);
    let shared = SharedMatrix::new(std::mem::replace(a, Matrix::zeros(0, 0)));
    let store = PivotStore {
        pivots: (0..npanels).map(|_| SyncCell::new(Vec::new())).collect(),
        ready: (0..npanels).map(|_| AtomicUsize::new(0)).collect(),
    };
    let bs = BlockSizes::default();
    let failed = AtomicUsize::new(usize::MAX);

    let panel_cols = |j: usize| -> (usize, usize) {
        let c0 = j * nb;
        (c0, nb.min(n - c0))
    };

    run_group_scheduled(&dag, plan, |task, member, size| {
        if failed.load(Ordering::Acquire) != usize::MAX {
            return; // abort quickly after a singularity
        }
        match task {
            Task::Factor { panel } => {
                if member != 0 {
                    return; // panel factorization is master-only
                }
                let (c0, w) = panel_cols(panel);
                let r0 = panel * nb;
                // SAFETY: sole task targeting this panel; rows r0.. of
                // cols c0..c0+w.
                let mut win = unsafe { shared.window(r0, c0, n - r0, w) };
                let piv = unsafe { &mut *store.pivots[panel].get() };
                if getf2(&mut win, piv, c0).is_err() {
                    failed.store(panel, Ordering::Release);
                }
            }
            Task::Update { stage, panel } => {
                let (c0, w) = panel_cols(panel);
                let r0 = stage * nb; // top row of the update window
                let (_, pw) = panel_cols(stage);
                let gen = stage + 1;
                if member == 0 {
                    // 1. Apply stage's pivots to this panel's columns.
                    // SAFETY: sole task writing panel `panel`.
                    let mut win = unsafe { shared.window(r0, c0, n - r0, w) };
                    let piv = unsafe { &*store.pivots[stage].get() };
                    phi_blas::laswp::laswp_forward(&mut win, piv);
                    // 2. Forward solve: U12 = L11⁻¹ A12. L11 is the unit
                    // lower pw×pw block of the factored stage panel
                    // (read-only).
                    let l11 = unsafe { shared.window(r0, stage * nb, pw, pw) };
                    let mut u12 = unsafe { shared.window(r0, c0, pw, w) };
                    trsm_left_lower_unit(&l11.as_view(), &mut u12);
                    store.ready[panel].store(gen, Ordering::Release);
                } else {
                    while store.ready[panel].load(Ordering::Acquire) != gen {
                        std::hint::spin_loop();
                    }
                }
                // 3. Trailing GEMM: A22 -= L21 · U12, rows split across
                // members.
                let m_trail = n - (r0 + pw);
                if m_trail == 0 {
                    return;
                }
                let chunk = m_trail.div_ceil(size);
                let my0 = member * chunk;
                if my0 >= m_trail {
                    return;
                }
                let my_rows = chunk.min(m_trail - my0);
                // SAFETY: members write disjoint row ranges of panel
                // `panel`; L21/U12 are read-only here.
                let l21 = unsafe { shared.window(r0 + pw + my0, stage * nb, my_rows, pw) };
                let u12 = unsafe { shared.window(r0, c0, pw, w) };
                let mut a22 = unsafe { shared.window(r0 + pw + my0, c0, my_rows, w) };
                gemm_with(-1.0, &l21.as_view(), &u12.as_view(), 1.0, &mut a22, &bs);
            }
        }
    });

    let mut m = shared.into_inner();
    let fail_panel = failed.load(Ordering::Acquire);
    if fail_panel != usize::MAX {
        *a = m;
        return Err(LuError::Singular {
            col: fail_panel * nb,
        });
    }

    // Left-swap fixup: apply each stage's pivots to the columns left of
    // its panel, making the packed factors identical to sequential getrf.
    let mut ipiv = Vec::with_capacity(n);
    for (j, cell) in store.pivots.into_iter().enumerate() {
        let piv = cell.into_inner();
        let r0 = j * nb;
        if r0 > 0 && !piv.is_empty() {
            let mut left = m.sub_mut(r0, 0, n - r0, r0);
            phi_blas::laswp::laswp_forward(&mut left, &piv);
        }
        ipiv.extend(piv.iter().map(|&p| r0 + p));
    }
    *a = m;
    Ok(ipiv)
}

/// Solves `A x = b` with the parallel factorization; callers check the
/// HPL residual themselves.
pub fn solve_parallel(
    a: &Matrix<f64>,
    b: &[f64],
    nb: usize,
    plan: &GroupPlan,
) -> Result<Vec<f64>, LuError> {
    let mut lu = a.clone();
    let ipiv = factorize_parallel(&mut lu, nb, plan)?;
    Ok(LuFactors { lu, ipiv }.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_blas::gemm::BlockSizes;
    use phi_blas::lu::getrf;
    use phi_matrix::{hpl_residual, MatGen};

    #[test]
    fn parallel_factors_match_sequential() {
        for (n, nb, threads, tpg) in [(64, 8, 4, 2), (96, 16, 6, 3), (100, 12, 4, 1)] {
            let a0 = MatGen::new(42).matrix::<f64>(n, n);
            let mut par = a0.clone();
            let plan = GroupPlan::new(threads, tpg);
            let piv_par = factorize_parallel(&mut par, nb, &plan).unwrap();

            let mut seq = a0.clone();
            let piv_seq = getrf(&mut seq.view_mut(), nb, &BlockSizes::default()).unwrap();

            assert_eq!(piv_par, piv_seq, "pivots n={n} nb={nb}");
            let diff = par.max_abs_diff(&seq);
            assert!(diff < 1e-10, "factors differ by {diff} (n={n}, nb={nb})");
        }
    }

    #[test]
    fn parallel_solve_passes_hpl_residual() {
        let n = 128;
        let a = MatGen::new(7).matrix::<f64>(n, n);
        let b = MatGen::new(8).rhs::<f64>(n);
        let plan = GroupPlan::new(4, 2);
        let x = solve_parallel(&a, &b, 16, &plan).unwrap();
        let report = hpl_residual(&a.view(), &x, &b);
        assert!(report.passed, "scaled residual {}", report.scaled_residual);
    }

    #[test]
    fn singular_matrix_reported() {
        let n = 32;
        let mut a = MatGen::new(3).matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, 5)] = 0.0;
        }
        let plan = GroupPlan::new(2, 1);
        let err = factorize_parallel(&mut a.clone(), 8, &plan).unwrap_err();
        assert!(matches!(err, LuError::Singular { .. }));
    }

    #[test]
    fn ragged_last_panel() {
        // n not a multiple of nb exercises the partial-panel paths.
        let n = 70;
        let a0 = MatGen::new(9).matrix::<f64>(n, n);
        let mut par = a0.clone();
        let plan = GroupPlan::new(3, 1);
        let piv = factorize_parallel(&mut par, 16, &plan).unwrap();
        let mut seq = a0.clone();
        let piv_seq = getrf(&mut seq.view_mut(), 16, &BlockSizes::default()).unwrap();
        assert_eq!(piv, piv_seq);
        assert!(par.max_abs_diff(&seq) < 1e-10);
    }
}
