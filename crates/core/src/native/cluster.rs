//! Fully-native multi-node Linpack — the paper's stated future work.
//!
//! The conclusion (Section VII) motivates "running the Linpack directly
//! on a cluster of Knights Corners, while CPU cores are put into a deep
//! sleep state": the host is several times slower than the card but
//! consumes comparable power, so a hybrid node is energy-inefficient.
//! This module implements that future system on the timed backend: a
//! P × Q grid of coprocessor-only nodes running the dynamic-scheduling
//! native LU per node, with panel broadcast, long swap and U broadcast
//! over the InfiniBand fabric (the card's NIC path adds a PCIe-like
//! store-and-forward hop).
//!
//! The 8 GB GDDR per card gates the problem size — the constraint the
//! hybrid design exists to escape — so this flavour trades problem size
//! for energy efficiency; see [`crate::energy`] for that comparison.

use crate::report::GigaflopsReport;
use phi_fabric::{NetModel, PatchRemap, ProcessGrid, RemapStrategy, ScheduleShape};
use phi_knc::{KncChip, LuTaskModel, Precision};

/// Configuration of a native multi-node run.
#[derive(Clone, Copy, Debug)]
pub struct NativeClusterConfig {
    /// Global problem size.
    pub n: usize,
    /// Block size (native LU uses smaller panels than hybrid; default 256).
    pub nb: usize,
    /// Process grid (one card per process).
    pub grid: ProcessGrid,
    /// Card task models.
    pub tasks: LuTaskModel,
    /// Inter-node network.
    pub net: NetModel,
    /// Extra store-and-forward latency per network operation: without a
    /// host, the card reaches the NIC over PCIe (seconds).
    pub nic_hop_s: f64,
    /// Utilization of the per-card dynamic DAG scheduler (panel
    /// displacement, wave tails, super-stage barriers) on top of the
    /// task model's own group-sync drag; calibrated so a 1x1 "cluster"
    /// matches the event-driven single-card simulation at N = 30K.
    pub dag_utilization: f64,
}

impl NativeClusterConfig {
    /// Defaults for an `n`-sized problem on a `p × q` grid.
    pub fn new(n: usize, p: usize, q: usize) -> Self {
        Self {
            n,
            nb: 256,
            grid: ProcessGrid::new(p, q),
            tasks: LuTaskModel::default(),
            net: NetModel::default(),
            nic_hop_s: 8e-6,
            dag_utilization: 0.99,
        }
    }

    /// Per-card matrix bytes.
    pub fn bytes_per_card(&self) -> f64 {
        (self.n as f64 / self.grid.p as f64) * (self.n as f64 / self.grid.q as f64) * 8.0
    }

    /// Largest N that fits the grid's aggregate GDDR (with 10% slack).
    pub fn max_n(&self) -> usize {
        let per_card = self.tasks.gemm.chip.memory_gib * 1.073741824e9 * 0.9;
        ((per_card * self.grid.size() as f64) / 8.0).sqrt() as usize
    }
}

/// Simulates the native cluster run.
///
/// # Panics
/// Panics when the per-card share exceeds the 8 GB GDDR.
pub fn simulate_native_cluster(cfg: &NativeClusterConfig) -> GigaflopsReport {
    let chip = cfg.tasks.gemm.chip;
    assert!(
        cfg.bytes_per_card() <= chip.memory_gib * 1.073741824e9 * 0.9,
        "N = {} does not fit {} GiB of GDDR per card on a {}x{} grid",
        cfg.n,
        chip.memory_gib,
        cfg.grid.p,
        cfg.grid.q
    );
    let s = cfg.n.div_ceil(cfg.nb);
    let (p, q) = (cfg.grid.p, cfg.grid.q);
    let t = &cfg.tasks;
    let cores = chip.cores_compute as f64;

    let mut total = 0.0f64;
    for stage in 0..s {
        let nb = cfg.nb.min(cfg.n - stage * cfg.nb);
        let rows_loc = (0..p)
            .map(|r| cfg.grid.trailing_blocks_row(r, stage + 1, s))
            .max()
            .unwrap_or(0)
            * cfg.nb;
        let cols_loc = (0..q)
            .map(|c| cfg.grid.trailing_blocks_col(c, stage + 1, s))
            .max()
            .unwrap_or(0)
            * cfg.nb;

        // Panel on the owning card column (a quarter of the card's cores
        // suffice — the rest continue the previous trailing update, which
        // we approximate with the dynamic scheduler's steady overlap).
        let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);
        let panel = t.panel_time_s(m_panel_loc, nb, cores / 4.0);
        let pbcast = cfg.net.ring_bcast(8.0 * (m_panel_loc * nb) as f64, q)
            + cfg.nic_hop_s * (q.saturating_sub(1)) as f64;

        // Swap and U broadcast down the columns.
        let swap = t.swap_time_s(nb, cols_loc, cores) + cfg.net.long_swap(nb, cols_loc, p);
        let trsm = t.trsm_time_s(nb, cols_loc, cores);
        let ubcast =
            cfg.net.u_bcast(nb, cols_loc, p) + cfg.nic_hop_s * (p.saturating_sub(1)) as f64;

        // Trailing update on the whole card (DAG scheduling hides the
        // panel under it, as in the single-card native flavour).
        let update = if rows_loc > 0 && cols_loc > 0 {
            t.update_time_s(rows_loc, cols_loc, nb, cores) / cfg.dag_utilization
        } else {
            0.0
        };

        // Dynamic scheduling overlaps the panel and its broadcast with the
        // update; swap/trsm/ubcast partially pipeline (the native code
        // reuses the hybrid's strip pipeline, minus the host).
        let three_exposed = (swap + trsm + ubcast) / 6.0;
        total += update.max(panel + pbcast) + three_exposed;
    }
    total += 2.0 * (cfg.n as f64 / p as f64) * (cfg.n as f64 / q as f64) * 8.0
        / (chip.stream_bw_gbs * 1e9);

    let peak = cfg.grid.size() as f64 * chip.native_peak_gflops(Precision::F64);
    GigaflopsReport::new(cfg.n, total, peak)
}

/// The largest square problem a single 8 GB card can hold (paper: 30K).
pub fn single_card_max_n() -> usize {
    KncChip::default().max_native_n()
}

/// Fault-tolerant native cluster run under an injected
/// [`phi_faults::FaultPlan`]: panel-granular diskless checkpointing
/// (each factored panel is mirrored to a ring neighbor's GDDR over the
/// fabric) and graceful degradation on node death — the dead card's
/// block-cyclic share is re-divided among the survivors, scaling the
/// per-stage compute by `size / survivors` after a checkpoint restore.
/// A node here *is* a card, so [`phi_faults::FaultKind::HostDeath`]
/// and card death both cost a whole node; the re-division keeps the
/// original grid shape (no fallback grid), which the summary reports
/// as `fallback_grid: None`.
///
/// `remap` prices how the dead nodes' trailing blocks reach their new
/// owners over the fabric: [`RemapStrategy::Patch`] ships only the
/// dead ranks' block-cyclic share ([`ProcessGrid::patch_remap`]),
/// [`RemapStrategy::Wholesale`] re-ships the whole trailing matrix.
/// Either volume is reported as
/// [`crate::report::FaultSummary::blocks_moved`].
///
/// With an empty plan and `checkpoint: false` this is bit-identical to
/// [`simulate_native_cluster`]; the returned report carries a
/// [`crate::report::FaultSummary`] either way.
///
/// # Panics
/// Panics when the per-card share exceeds GDDR, as the unfaulted entry
/// point does.
pub fn simulate_native_cluster_ft(
    cfg: &NativeClusterConfig,
    plan: &phi_faults::FaultPlan,
    checkpoint: bool,
    remap: RemapStrategy,
) -> GigaflopsReport {
    let chip = cfg.tasks.gemm.chip;
    assert!(
        cfg.bytes_per_card() <= chip.memory_gib * 1.073741824e9 * 0.9,
        "N = {} does not fit {} GiB of GDDR per card on a {}x{} grid",
        cfg.n,
        chip.memory_gib,
        cfg.grid.p,
        cfg.grid.q
    );
    let s = cfg.n.div_ceil(cfg.nb);
    let p = cfg.grid.p;
    let size = cfg.grid.size();

    let mut total = 0.0f64;
    let mut nodes_lost = 0usize;
    let mut hosts_seen = 0usize;
    let mut degraded_stages = 0usize;
    let mut checkpoint_s = 0.0f64;
    let mut recovery_s = 0.0f64;
    let mut prev_stage = 0.0f64;
    let mut blocks_moved = 0usize;
    let mut patched_dead: Vec<usize> = Vec::new();

    for stage in 0..s {
        let nb = cfg.nb.min(cfg.n - stage * cfg.nb);
        let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);

        // Node deaths surface at panel boundaries; survivors re-divide
        // the dead node's share after restoring its mirrored panels and
        // pulling its trailing blocks over the fabric (`remap` decides
        // whether only that share moves or the whole trailing matrix is
        // re-shipped).
        let e_now = plan.effects_at(total);
        let lost_now = (e_now.cards_lost + e_now.hosts_lost).min(size - 1);
        hosts_seen = hosts_seen.max(e_now.hosts_lost.min(lost_now));
        if lost_now > nodes_lost {
            let newly = lost_now - nodes_lost;
            let survivors = size - lost_now;
            let restore = if checkpoint {
                cfg.net.p2p(8.0 * (m_panel_loc * nb) as f64) + cfg.nic_hop_s
            } else {
                prev_stage
            };
            let redistribution = match remap {
                RemapStrategy::Patch => {
                    let dead_nodes = plan.node_death_ranks(size);
                    let mut moved_elems = 0.0f64;
                    for &node in &dead_nodes[nodes_lost..lost_now] {
                        if patched_dead.contains(&node) {
                            continue;
                        }
                        let r = cfg.grid.patch_remap(node);
                        blocks_moved += r.moved_trailing_blocks(stage, s);
                        moved_elems += r.moved_trailing_elements(stage, s, cfg.nb, cfg.n);
                        patched_dead.push(node);
                    }
                    8.0 * moved_elems / (survivors as f64 * cfg.net.bandwidth)
                }
                RemapStrategy::Wholesale => {
                    blocks_moved += PatchRemap::wholesale_trailing_blocks(stage, s);
                    let trailing = (cfg.n - (stage * cfg.nb).min(cfg.n)) as f64;
                    8.0 * trailing * trailing / (survivors as f64 * cfg.net.bandwidth)
                }
            };
            let cost = newly as f64 * restore + redistribution;
            recovery_s += cost;
            total += cost;
            nodes_lost = lost_now;
        }
        let survivors = size - nodes_lost;
        // Survivors absorb the dead nodes' block-cyclic share.
        let redivide = size as f64 / survivors as f64;
        if nodes_lost > 0 {
            degraded_stages += 1;
        }

        // Transient fault state averaged over the stage (two-pass, as in
        // the hybrid flavour: healthy estimate, then perturbed compute).
        let est = native_stage_time(cfg, stage, s, 1.0, &cfg.net, 1.0);
        let eff = plan.effects_over(total, total + est);
        let net = cfg.net.degraded(eff.net_bw_factor, eff.extra_latency_s);
        let stage_time = native_stage_time(cfg, stage, s, redivide, &net, eff.compute_slowdown);
        total += stage_time;
        prev_stage = stage_time;

        if checkpoint {
            // Mirror the factored panel to the ring neighbor's GDDR.
            let ckpt = cfg.net.p2p(8.0 * (m_panel_loc * nb) as f64) + cfg.nic_hop_s;
            total += ckpt;
            checkpoint_s += ckpt;
        }
    }
    total += 2.0 * (cfg.n as f64 / p as f64) * (cfg.n as f64 / cfg.grid.q as f64) * 8.0
        / (chip.stream_bw_gbs * 1e9);

    let healthy = simulate_native_cluster(cfg);
    let peak = cfg.grid.size() as f64 * chip.native_peak_gflops(Precision::F64);
    GigaflopsReport::new(cfg.n, total, peak).with_faults(crate::report::FaultSummary {
        plan_fingerprint: plan.fingerprint(),
        events: plan.events().len(),
        cards_lost: nodes_lost - hosts_seen,
        hosts_lost: hosts_seen,
        fallback_grid: None,
        remap,
        blocks_moved,
        checkpoint_s,
        recovery_s,
        degraded_stages,
        healthy_time_s: healthy.time_s,
        healthy_gflops: healthy.gflops,
    })
}

/// Every communication-grid regime [`simulate_native_cluster_ft`] can
/// route through under `plan`: the healthy grid, then one
/// [`ScheduleShape`] per applied node death. The native flavour never
/// reshapes — the grid keeps its coordinates and survivors route around
/// the dead ranks — so every shape sits on the original grid with an
/// accumulating dead set, regardless of [`RemapStrategy`] (the strategy
/// only prices how the blocks travel, not who talks to whom). Deaths
/// replay one per boundary, the finest batching the simulator can see;
/// verifying each shape proves any coarser batching safe.
pub fn native_recovery_regimes(
    cfg: &NativeClusterConfig,
    plan: &phi_faults::FaultPlan,
) -> Vec<ScheduleShape> {
    let size = cfg.grid.size();
    let mut shapes = vec![ScheduleShape::healthy(cfg.grid)];
    let mut dead: Vec<usize> = Vec::new();
    // The simulator caps deaths at `size - 1`: a survivor remains.
    for rank in plan
        .node_death_ranks(size)
        .into_iter()
        .take(size.saturating_sub(1))
    {
        if !dead.contains(&rank) {
            dead.push(rank);
            shapes.push(ScheduleShape {
                grid: cfg.grid,
                dead_ranks: dead.clone(),
                reshaped: false,
            });
        }
    }
    shapes
}

/// One stage of the native-cluster loop — the same arithmetic as the
/// body of [`simulate_native_cluster`], with the compute terms scaled by
/// `redivide × slowdown` and the network terms taken from `net`. Both
/// scale factors at `1.0` and the configured net reproduce the
/// unfaulted stage bit-identically.
fn native_stage_time(
    cfg: &NativeClusterConfig,
    stage: usize,
    s: usize,
    redivide: f64,
    net: &NetModel,
    slowdown: f64,
) -> f64 {
    let chip = cfg.tasks.gemm.chip;
    let (p, q) = (cfg.grid.p, cfg.grid.q);
    let t = &cfg.tasks;
    let cores = chip.cores_compute as f64;
    let nb = cfg.nb.min(cfg.n - stage * cfg.nb);
    let rows_loc = (0..p)
        .map(|r| cfg.grid.trailing_blocks_row(r, stage + 1, s))
        .max()
        .unwrap_or(0)
        * cfg.nb;
    let cols_loc = (0..q)
        .map(|c| cfg.grid.trailing_blocks_col(c, stage + 1, s))
        .max()
        .unwrap_or(0)
        * cfg.nb;

    let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);
    let panel = t.panel_time_s(m_panel_loc, nb, cores / 4.0) * redivide * slowdown;
    let pbcast = net.ring_bcast(8.0 * (m_panel_loc * nb) as f64, q)
        + cfg.nic_hop_s * (q.saturating_sub(1)) as f64;

    let swap =
        t.swap_time_s(nb, cols_loc, cores) * redivide * slowdown + net.long_swap(nb, cols_loc, p);
    let trsm = t.trsm_time_s(nb, cols_loc, cores) * redivide * slowdown;
    let ubcast = net.u_bcast(nb, cols_loc, p) + cfg.nic_hop_s * (p.saturating_sub(1)) as f64;

    let update = if rows_loc > 0 && cols_loc > 0 {
        t.update_time_s(rows_loc, cols_loc, nb, cores) / cfg.dag_utilization * redivide * slowdown
    } else {
        0.0
    };

    let three_exposed = (swap + trsm + ubcast) / 6.0;
    update.max(panel + pbcast) + three_exposed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_matches_native_flavour() {
        // A 1×1 "cluster" must land near the single-card native result
        // (no network terms).
        let cfg = NativeClusterConfig::new(30_720, 1, 1);
        let r = simulate_native_cluster(&cfg);
        assert!(
            (r.efficiency() - 0.788).abs() < 0.04,
            "1x1 native cluster eff {:.3}",
            r.efficiency()
        );
    }

    #[test]
    fn memory_gate_enforced() {
        // 60K² × 8 = 28.8 GB ≫ 8 GB per card on 1×1.
        let cfg = NativeClusterConfig::new(60_000, 1, 1);
        assert!(std::panic::catch_unwind(|| simulate_native_cluster(&cfg)).is_err());
        // But a 2×2 grid holds it (28.8/4 = 7.2 GB/card).
        let cfg4 = NativeClusterConfig::new(60_000, 2, 2);
        let r = simulate_native_cluster(&cfg4);
        assert!(r.gflops > 0.0);
    }

    #[test]
    fn scales_with_modest_degradation() {
        // Same per-card load: 30K on 1 card vs 60K on 4 vs 120K on 16.
        let e1 = simulate_native_cluster(&NativeClusterConfig::new(30_000, 1, 1)).efficiency();
        let e4 = simulate_native_cluster(&NativeClusterConfig::new(60_000, 2, 2)).efficiency();
        let e16 = simulate_native_cluster(&NativeClusterConfig::new(120_000, 4, 4)).efficiency();
        assert!(e4 < e1, "network costs something: {e4:.3} vs {e1:.3}");
        assert!(e16 < e4 + 0.01);
        assert!(e1 - e16 < 0.10, "degradation bounded: {:.3}", e1 - e16);
    }

    #[test]
    fn ft_zero_fault_no_checkpoint_is_bit_identical() {
        let cfg = NativeClusterConfig::new(60_000, 2, 2);
        let base = simulate_native_cluster(&cfg);
        let ft = simulate_native_cluster_ft(
            &cfg,
            &phi_faults::FaultPlan::none(),
            false,
            RemapStrategy::default(),
        );
        assert_eq!(ft.time_s.to_bits(), base.time_s.to_bits());
        assert_eq!(ft.gflops.to_bits(), base.gflops.to_bits());
        let f = ft.faults.unwrap();
        assert_eq!((f.events, f.cards_lost), (0, 0));
    }

    #[test]
    fn ft_node_death_redivides_and_completes() {
        use phi_faults::{FaultKind, FaultPlan};
        let cfg = NativeClusterConfig::new(60_000, 2, 2);
        let base = simulate_native_cluster(&cfg);
        let plan =
            FaultPlan::none().with_event(base.time_s / 2.0, FaultKind::CardDeath { card: 0 });
        let ft = simulate_native_cluster_ft(&cfg, &plan, true, RemapStrategy::Patch);
        let f = ft.faults.unwrap();
        assert_eq!(f.cards_lost, 1);
        assert!(f.degraded_stages > 0);
        assert!(f.checkpoint_s > 0.0 && f.recovery_s > 0.0);
        assert!(f.blocks_moved > 0, "the dead node's share must move");
        // Survivors carry 4/3 of the work for the tail: slower, but done.
        assert!(ft.time_s > base.time_s);
        assert!(f.overhead_fraction(ft.time_s) > 0.0);
        // Wholesale re-ships the whole trailing matrix: strictly more
        // volume, and recovery at least as slow.
        let whole = simulate_native_cluster_ft(&cfg, &plan, true, RemapStrategy::Wholesale);
        let fw = whole.faults.unwrap();
        assert!(fw.blocks_moved > f.blocks_moved);
        assert!(fw.recovery_s >= f.recovery_s);
    }

    #[test]
    fn ft_host_death_costs_a_whole_node() {
        use phi_faults::{FaultKind, FaultPlan};
        let cfg = NativeClusterConfig::new(60_000, 2, 2);
        let base = simulate_native_cluster(&cfg);
        let plan =
            FaultPlan::none().with_event(base.time_s / 2.0, FaultKind::HostDeath { rank: 2 });
        let ft = simulate_native_cluster_ft(&cfg, &plan, true, RemapStrategy::Patch);
        let f = ft.faults.unwrap();
        assert_eq!((f.cards_lost, f.hosts_lost), (0, 1));
        assert_eq!(f.fallback_grid, None);
        assert!(f.degraded_stages > 0);
        assert!(ft.time_s > base.time_s);
    }

    #[test]
    fn ft_storm_fanout_kills_every_card_in_one_batch() {
        use phi_faults::{ChildSpec, Escalation, FaultKind, FaultPlan, Scope};
        // A host-wide PCIe storm fans out to a correlated set of nodes
        // (a node here *is* a card): the whole set dies at one onset
        // and the simulator recovers it in a single boundary batch.
        let cfg = NativeClusterConfig::new(90_000, 3, 3);
        let base = simulate_native_cluster(&cfg);
        let t = base.time_s;
        let plan = FaultPlan::none()
            .with_cascade(
                t / 3.0,
                FaultKind::PcieCrcStorm {
                    stall_s: 200e-6,
                    duration_s: t / 10.0,
                },
                Escalation::fan(vec![ChildSpec::new(
                    FaultKind::CardDeath { card: 0 },
                    t / 20.0,
                    1.0,
                )
                .with_scope(Scope::SameHost { cards: 3 })]),
            )
            .resolved(0xFA, t * 2.0);
        assert_eq!(plan.total_card_deaths(), 3);
        let ft = simulate_native_cluster_ft(&cfg, &plan, true, RemapStrategy::Patch);
        let f = ft.faults.unwrap();
        assert_eq!(f.cards_lost, 3, "the whole correlated set dies");
        assert!(f.blocks_moved > 0);
        assert!(ft.time_s > base.time_s);
        // Deterministic per seed: bit-identical replay.
        let again = simulate_native_cluster_ft(&cfg, &plan, true, RemapStrategy::Patch);
        assert_eq!(ft.time_s.to_bits(), again.time_s.to_bits());
        assert_eq!(f.plan_fingerprint, again.faults.unwrap().plan_fingerprint);
    }

    #[test]
    fn native_regimes_keep_the_grid_and_accumulate_deaths() {
        use phi_faults::{FaultKind, FaultPlan};
        let cfg = NativeClusterConfig::new(50_000, 2, 3);
        assert_eq!(native_recovery_regimes(&cfg, &FaultPlan::none()).len(), 1);
        let plan = FaultPlan::none()
            .with_event(1.0, FaultKind::CardDeath { card: 4 })
            .with_event(2.0, FaultKind::HostDeath { rank: 1 })
            .with_event(3.0, FaultKind::CardDeath { card: 4 });
        let shapes = native_recovery_regimes(&cfg, &plan);
        // Healthy, then {4}, then {4,1}; the duplicate adds nothing.
        assert_eq!(shapes.len(), 3);
        assert!(shapes.iter().all(|s| !s.reshaped && s.grid == cfg.grid));
        assert_eq!(shapes[2].dead_ranks, vec![4, 1]);
    }

    #[test]
    fn max_n_formula() {
        let cfg = NativeClusterConfig::new(1000, 2, 2);
        let max = cfg.max_n();
        // 4 cards × 7.2 GiB usable ≈ 60-62K.
        assert!((58_000..66_000).contains(&max), "{max}");
        assert!(single_card_max_n() >= 30_000);
    }
}
