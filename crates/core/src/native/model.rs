//! Timed backend: dynamic DAG scheduling over virtual time.
//!
//! The same [`DagScheduler`] that drives the real threads in
//! [`super::numeric`] is driven here by the discrete-event engine: each
//! worker lane is one thread *group*; fetching a task costs the dispatch
//! overhead (the master's critical section + group wake-up), executing it
//! advances virtual time by the `LuTaskModel` duration. Super-stage
//! boundaries insert the global barrier and regroup threads, exactly as
//! Section IV-A describes.
//!
//! The output is the Fig. 6 "dynamic scheduling" curve; with tracing
//! enabled, the spans reproduce the Fig. 7b Gantt chart.

use super::NativeConfig;
use crate::report::GigaflopsReport;
use phi_des::{Kind, Sim};
use phi_knc::Precision;
use phi_sched::{superstage_plan, DagScheduler, Task};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared state of one super-stage phase.
struct Phase {
    dag: DagScheduler,
    cfg: NativeConfig,
    stage_limit: usize,
    cores_per_group: f64,
    /// Lanes (groups) currently idle, waiting for a dependency.
    waiting: Vec<u32>,
    /// Lanes that have retired for this phase.
    retired: usize,
    groups: usize,
}

impl Phase {
    /// Duration of a task in seconds.
    fn duration(&self, task: Task) -> f64 {
        let cfg = &self.cfg;
        let t = &cfg.tasks;
        let cores = self.cores_per_group;
        match task {
            Task::Factor { panel } => {
                let m = cfg.rows_at(panel);
                t.panel_time_s(m, cfg.panel_width(panel), cores)
            }
            Task::Update { stage, panel } => {
                let w = cfg.panel_width(panel);
                let nbs = cfg.panel_width(stage);
                let m_trail = cfg.rows_at(stage + 1);
                t.swap_time_s(nbs, w, cores)
                    + t.trsm_time_s(nbs, w, cores)
                    + t.update_time_s(m_trail, w, nbs, cores)
            }
        }
    }

    fn kind(task: Task) -> Kind {
        match task {
            Task::Factor { .. } => Kind::Panel,
            Task::Update { .. } => Kind::Gemm,
        }
    }
}

/// One lane becomes free: fetch and execute the next task, or park.
fn lane_free(sim: &mut Sim, ph: Rc<RefCell<Phase>>, lane: u32) {
    let task = {
        let p = ph.borrow();
        p.dag.available_task_limited(p.stage_limit)
    };
    match task {
        Some(task) => {
            let (dur, overhead) = {
                let p = ph.borrow();
                (p.duration(task), p.cfg.dispatch_overhead_s)
            };
            let start = sim.now();
            let end = start + overhead + dur;
            sim.trace_mut()
                .record(lane, start + overhead, end, Phase::kind(task));
            let ph2 = ph.clone();
            sim.schedule(overhead + dur, move |s| {
                let wakeups: Vec<u32> = {
                    let mut p = ph2.borrow_mut();
                    p.dag.commit(task);
                    std::mem::take(&mut p.waiting)
                };
                // A commit may unblock parked lanes.
                for w in wakeups {
                    let ph3 = ph2.clone();
                    s.schedule(0.0, move |s2| lane_free(s2, ph3, w));
                }
                lane_free(s, ph2, lane);
            });
        }
        None => {
            let mut p = ph.borrow_mut();
            if p.dag.phase_complete(p.stage_limit) {
                p.retired += 1;
            } else {
                p.waiting.push(lane);
            }
        }
    }
}

/// Simulates a native Linpack run with dynamic DAG scheduling and
/// super-stage regrouping. With `trace`, the report carries the per-kind
/// breakdown and the simulation's spans can be rendered as Fig. 7b.
pub fn simulate_dynamic(cfg: &NativeConfig, trace: bool) -> GigaflopsReport {
    let (report, _) = simulate_dynamic_traced(cfg, trace);
    report
}

/// Like [`simulate_dynamic`] but also returns the trace (Gantt source).
pub fn simulate_dynamic_traced(
    cfg: &NativeConfig,
    trace: bool,
) -> (GigaflopsReport, phi_des::Trace) {
    let npanels = cfg.npanels();
    assert!(npanels > 0, "empty problem");
    let peak = cfg.tasks.gemm.chip.native_peak_gflops(Precision::F64);

    // Plan super-stages: the group size must keep each stage's panel
    // hidden under that stage's trailing update on the rest of the chip.
    // The ablation hook replaces the plan with one fixed grouping.
    let plan = if let Some(tpg) = cfg.fixed_group_threads {
        vec![phi_sched::SuperStage {
            first_stage: 0,
            end_stage: npanels,
            threads_per_group: tpg.clamp(4, cfg.total_threads),
        }]
    } else {
        superstage_plan(
            npanels,
            cfg.total_threads,
            cfg.min_group_threads,
            |stage, tpg| {
                let m_next = cfg.rows_at(stage + 1);
                if m_next == 0 {
                    return 0.0;
                }
                let panel = cfg.tasks.panel_time_s(m_next, cfg.nb, tpg as f64 / 4.0);
                let chip_cores = cfg.total_threads as f64 / 4.0;
                let update = cfg
                    .tasks
                    .update_time_s(m_next, m_next, cfg.nb, chip_cores)
                    .max(1e-12);
                panel / update
            },
        )
    };

    let mut sim = Sim::new();
    if trace {
        sim.trace_mut().enable();
    }
    let dag = DagScheduler::new(npanels);
    let mut dag = Some(dag);

    for (idx, ss) in plan.iter().enumerate() {
        let groups = (cfg.total_threads / ss.threads_per_group).max(1);
        let ph = Rc::new(RefCell::new(Phase {
            dag: dag.take().expect("dag handed over between phases"),
            cfg: *cfg,
            stage_limit: ss.end_stage,
            cores_per_group: ss.threads_per_group as f64 / 4.0,
            waiting: Vec::new(),
            retired: 0,
            groups,
        }));
        for lane in 0..groups as u32 {
            let ph2 = ph.clone();
            sim.schedule(0.0, move |s| lane_free(s, ph2, lane));
        }
        let phase_start = sim.now();
        sim.run();
        {
            let p = ph.borrow();
            assert!(
                p.dag.phase_complete(p.stage_limit),
                "phase {idx} did not drain (limit {})",
                p.stage_limit
            );
            assert_eq!(p.retired + p.waiting.len(), p.groups);
            if std::env::var_os("PHI_HPL_PHASE_DEBUG").is_some() {
                eprintln!(
                    "phase {idx}: stages {}..{} tpg={} groups={} dur={:.4}s",
                    ss.first_stage,
                    ss.end_stage,
                    ss.threads_per_group,
                    groups,
                    sim.now() - phase_start.min(sim.now())
                );
            }
        }
        // Global barrier + regroup between super-stages (amortized: the
        // barrier "is executed infrequently, at the end of the
        // super-stage").
        let barrier = cfg.tasks.barrier_s;
        let t = sim.now();
        sim.trace_mut().record(0, t, t + barrier, Kind::Barrier);
        sim.schedule(barrier, |_| {});
        sim.run();
        dag = Some(
            Rc::try_unwrap(ph)
                .ok()
                .expect("phase released")
                .into_inner()
                .dag,
        );
    }

    let dag = dag.expect("dag returned");
    assert!(dag.is_complete(), "LU did not complete");
    let total = sim.now();
    let breakdown = sim.trace().totals();
    let report = GigaflopsReport::new(cfg.n, total, peak).with_breakdown(breakdown);
    (report, sim.trace().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeConfig;

    #[test]
    fn completes_and_is_deterministic() {
        let cfg = NativeConfig::new(5120);
        let a = simulate_dynamic(&cfg, false);
        let b = simulate_dynamic(&cfg, false);
        assert_eq!(a.time_s, b.time_s, "DES must be deterministic");
        assert!(a.gflops > 0.0);
        assert!(a.efficiency() < 1.0);
    }

    #[test]
    fn efficiency_grows_with_problem_size() {
        let small = simulate_dynamic(&NativeConfig::new(2048), false);
        let mid = simulate_dynamic(&NativeConfig::new(8192), false);
        let large = simulate_dynamic(&NativeConfig::new(20480), false);
        assert!(small.efficiency() < mid.efficiency());
        assert!(mid.efficiency() < large.efficiency());
    }

    #[test]
    fn headline_30k_efficiency_near_79_percent() {
        // Fig. 6: "For the 30K problem, both schemes achieve 832 GFLOPS,
        // which corresponds to ≈79% efficiency."
        let cfg = NativeConfig::new(30_720);
        let r = simulate_dynamic(&cfg, false);
        assert!(
            (r.efficiency() - 0.788).abs() < 0.02,
            "30K dynamic eff = {:.3} ({} GFLOPS)",
            r.efficiency(),
            r.gflops
        );
    }

    #[test]
    fn trace_contains_panels_and_updates() {
        let cfg = NativeConfig::new(2048);
        let (report, trace) = simulate_dynamic_traced(&cfg, true);
        assert!(!report.breakdown.is_empty());
        let kinds: Vec<_> = trace.spans().iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&phi_des::Kind::Panel));
        assert!(kinds.contains(&phi_des::Kind::Gemm));
    }
}
