//! Native Linpack: LU factorization running entirely on the coprocessor
//! (Section IV).
//!
//! * [`numeric`] — the real-arithmetic backend: the DAG-scheduled blocked
//!   LU of Fig. 5 executed by real thread groups over a shared matrix,
//!   validated against the sequential reference and the HPL residual.
//! * [`model`] — the timed backend: the *same* `DagScheduler` driven over
//!   `phi-des` virtual time with task durations from the KNC machine
//!   model, including super-stages with thread regrouping (the Fig. 6
//!   "dynamic scheduling" curve and the Fig. 7b Gantt chart).
//! * [`static_la`] — the static look-ahead baseline (Deisher et al.):
//!   per-stage thread partitioning with a global barrier between stages
//!   (the other Fig. 6 curve and Fig. 7a).

pub mod cluster;
pub mod model;
pub mod numeric;
pub mod static_la;

pub use cluster::{
    native_recovery_regimes, simulate_native_cluster, simulate_native_cluster_ft,
    NativeClusterConfig,
};
pub use model::simulate_dynamic;
pub use numeric::{factorize_parallel, solve_parallel};
pub use static_la::simulate_static;

use phi_knc::LuTaskModel;

/// Which native scheduling scheme to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeScheme {
    /// Global barrier between stages, static thread partitioning with
    /// minimal panel groups (Fig. 7a).
    StaticLookahead,
    /// DAG dynamic scheduling with super-stages and regrouping (Fig. 7b).
    DynamicScheduling,
}

/// Configuration of a native Linpack run (model backend).
#[derive(Clone, Copy, Debug)]
pub struct NativeConfig {
    /// Problem size.
    pub n: usize,
    /// Panel width (the LU block size; also the GEMM inner dimension).
    pub nb: usize,
    /// Task duration models.
    pub tasks: LuTaskModel,
    /// Total hardware threads (240 = 60 compute cores × 4).
    pub total_threads: usize,
    /// Initial (smallest) threads per group.
    pub min_group_threads: usize,
    /// Per-task dispatch overhead (critical section + group wakeup),
    /// seconds.
    pub dispatch_overhead_s: f64,
    /// Ablation hook: when set, disables super-stage regrouping and uses
    /// this fixed threads-per-group for the whole factorization (the
    /// "original implementation" of Buttari et al. that Section IV-A
    /// extends).
    pub fixed_group_threads: Option<usize>,
}

impl NativeConfig {
    /// Defaults for a given problem size: NB = 256, 60 × 4 threads,
    /// 16-thread (4-core) initial groups.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            nb: 256,
            tasks: LuTaskModel::default(),
            total_threads: 240,
            min_group_threads: 16,
            dispatch_overhead_s: 3e-6,
            fixed_group_threads: None,
        }
    }

    /// Number of column panels.
    pub fn npanels(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Rows remaining at the start of stage `i`.
    pub fn rows_at(&self, stage: usize) -> usize {
        self.n.saturating_sub(stage * self.nb)
    }

    /// Width of panel `j` (the last panel may be ragged).
    pub fn panel_width(&self, j: usize) -> usize {
        self.nb.min(self.n - (j * self.nb).min(self.n))
    }

    /// Runs the configured simulation for a scheme.
    pub fn simulate(&self, scheme: NativeScheme) -> crate::report::GigaflopsReport {
        match scheme {
            NativeScheme::StaticLookahead => simulate_static(self, false),
            NativeScheme::DynamicScheduling => simulate_dynamic(self, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let c = NativeConfig::new(5120);
        assert_eq!(c.npanels(), 20);
        assert_eq!(c.rows_at(0), 5120);
        assert_eq!(c.rows_at(19), 256);
        assert_eq!(c.panel_width(19), 256);
        let ragged = NativeConfig {
            n: 5000,
            ..NativeConfig::new(5000)
        };
        assert_eq!(ragged.npanels(), 20);
        assert_eq!(ragged.panel_width(19), 5000 - 19 * 256);
    }
}
