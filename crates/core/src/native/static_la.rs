//! Static look-ahead baseline (Fig. 6/7a).
//!
//! The scheme of Deisher et al. that the paper compares against: at each
//! stage a **fixed** partition assigns the minimum number of threads to
//! the next panel factorization (to hide it under the trailing update
//! executed by the remaining threads), and a **global barrier**
//! synchronizes all threads between stages. For small problems the panel
//! and the barrier dominate (Fig. 7a), which is exactly where dynamic
//! scheduling wins; for large problems the two schemes converge.

use super::NativeConfig;
use crate::report::GigaflopsReport;
use phi_des::{Kind, Sim};
use phi_knc::Precision;

/// Simulates the static look-ahead scheme. With `trace`, spans land on
/// lane 0 (update side) and lane 1 (panel side) for the Fig. 7a chart.
pub fn simulate_static(cfg: &NativeConfig, trace: bool) -> GigaflopsReport {
    let (r, _) = simulate_static_traced(cfg, trace);
    r
}

/// Like [`simulate_static`] but returning the trace.
pub fn simulate_static_traced(
    cfg: &NativeConfig,
    trace: bool,
) -> (GigaflopsReport, phi_des::Trace) {
    let npanels = cfg.npanels();
    assert!(npanels > 0, "empty problem");
    let t = &cfg.tasks;
    let total_threads = cfg.total_threads as f64;
    let chip_cores = total_threads / 4.0;
    let peak = t.gemm.chip.native_peak_gflops(Precision::F64);

    let mut sim = Sim::new();
    if trace {
        sim.trace_mut().enable();
    }
    let mut now = 0.0f64;

    // Stage -1: the first panel is factored by everyone, unoverlapped.
    {
        let dur = t.panel_time_s(cfg.n, cfg.panel_width(0), chip_cores);
        sim.trace_mut().record(1, now, now + dur, Kind::Panel);
        now += dur;
    }

    for stage in 0..npanels {
        let nbs = cfg.panel_width(stage);
        let trail_cols: usize = (stage + 1..npanels).map(|j| cfg.panel_width(j)).sum();
        let m_trail = cfg.rows_at(stage + 1);

        // The update side also executes group-granular per-panel tasks
        // (the fixed partition of Section IV-A's "original implementation"),
        // but the global barrier forces every stage's last wave of tasks
        // to complete before anything else starts — wave quantization that
        // dynamic scheduling escapes by blurring stage boundaries.
        let group_threads = 16usize;
        let staged_update = |rest_threads: f64| -> f64 {
            let tasks = npanels - stage - 1;
            if tasks == 0 || m_trail == 0 {
                return 0.0;
            }
            let groups = ((rest_threads / group_threads as f64).floor() as usize).max(1);
            let waves = tasks.div_ceil(groups) as f64;
            let per_task = t.swap_time_s(nbs, cfg.nb, group_threads as f64 / 4.0)
                + t.trsm_time_s(nbs, cfg.nb, group_threads as f64 / 4.0)
                + t.update_time_s(m_trail, cfg.nb, nbs, group_threads as f64 / 4.0);
            waves * per_task
        };

        // Pick the minimal panel-group size (in threads, multiples of 4)
        // that hides the *next* panel under this stage's update.
        let mut panel_threads = 0usize;
        let mut update_time = 0.0;
        let mut panel_time = 0.0;
        if stage + 1 < npanels && m_trail > 0 {
            // Times as a function of the split.
            let next_m = cfg.rows_at(stage + 1);
            let next_w = cfg.panel_width(stage + 1);
            let mut chosen = None;
            let mut threads = 4usize;
            while threads <= cfg.total_threads - 4 {
                let p = t.panel_time_s(next_m, next_w, threads as f64 / 4.0);
                let u = staged_update(total_threads - threads as f64);
                if p <= u {
                    chosen = Some((threads, p, u));
                    break;
                }
                threads *= 2;
            }
            let (pt, p, u) = chosen.unwrap_or_else(|| {
                // Cannot hide: give the panel half the machine.
                let threads = cfg.total_threads / 2;
                let p = t.panel_time_s(next_m, next_w, threads as f64 / 4.0);
                let u = staged_update(total_threads - threads as f64);
                (threads, p, u)
            });
            panel_threads = pt;
            panel_time = p;
            update_time = u;
        } else if m_trail > 0 && trail_cols > 0 {
            // Last update has no panel to overlap.
            update_time = staged_update(total_threads);
        }
        let _ = panel_threads;

        let stage_time = update_time.max(panel_time);
        if trace {
            sim.trace_mut()
                .record(0, now, now + update_time, Kind::Gemm);
            if panel_time > 0.0 {
                sim.trace_mut()
                    .record(1, now, now + panel_time, Kind::Panel);
            }
            // Whoever finishes early waits at the global barrier.
            let slack_lane = if update_time < panel_time { 0 } else { 1 };
            sim.trace_mut().record(
                slack_lane,
                now + update_time.min(panel_time),
                now + stage_time,
                Kind::Barrier,
            );
        }
        now += stage_time + t.barrier_s;
        if trace {
            sim.trace_mut()
                .record(0, now - t.barrier_s, now, Kind::Barrier);
        }
    }

    let report = GigaflopsReport::new(cfg.n, now, peak).with_breakdown(sim.trace().totals());
    (report, sim.trace().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::model::simulate_dynamic;
    use crate::native::NativeConfig;

    #[test]
    fn static_converges_to_dynamic_at_30k() {
        let cfg = NativeConfig::new(30_720);
        let st = simulate_static(&cfg, false);
        let dy = simulate_dynamic(&cfg, false);
        // "For the 30K problem, both schemes achieve 832 GFLOPS."
        let gap = (dy.efficiency() - st.efficiency()).abs();
        assert!(
            gap < 0.03,
            "static {:.3} vs dynamic {:.3}",
            st.efficiency(),
            dy.efficiency()
        );
    }

    #[test]
    fn dynamic_wins_below_8k() {
        // "up to 8K, dynamic scheduling outperforms static look-ahead".
        for n in [2048usize, 4096, 6144] {
            let cfg = NativeConfig::new(n);
            let st = simulate_static(&cfg, false);
            let dy = simulate_dynamic(&cfg, false);
            assert!(
                dy.gflops > st.gflops,
                "n={n}: dynamic {:.1} must beat static {:.1}",
                dy.gflops,
                st.gflops
            );
        }
    }

    #[test]
    fn static_trace_shows_barriers() {
        let cfg = NativeConfig::new(5120);
        let (r, trace) = simulate_static_traced(&cfg, true);
        assert!(r.gflops > 0.0);
        assert!(trace
            .spans()
            .iter()
            .any(|s| s.kind == phi_des::Kind::Barrier));
    }
}
