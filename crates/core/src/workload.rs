//! The performance-lab workload abstraction (DESIGN.md §17).
//!
//! The paper's pipeline reasons about exactly one kernel — DGEMM inside
//! HPL. This module names the three things that reasoning actually
//! consumed, so other kernels can ride the same machinery:
//!
//! 1. an **instruction listing** — the emulated inner loop `phi-lint`
//!    analyzes, the ISA conformance tables pin down, and the emulator
//!    executes bit-exactly;
//! 2. a **traffic model** — what one rank moves over the fabric per
//!    outer iteration (HPL's panel broadcast + long swap, SpMV's `x`
//!    allgather, the stencil's face-halo exchange);
//! 3. a **roofline class** — which side of the ridge the operating point
//!    sits on, i.e. whether the listing's fill deficit is a finding or
//!    its design (see `phi_lint::LintConfig::class`).
//!
//! A [`Workload`] is the bundle of all three. [`WorkloadKind`] enumerates
//! the shipped implementations for CLI surfaces (`phi-bench --workload`).
//!
//! The module also carries the stencil's *cluster* stage: a
//! discrete-event bulk-synchronous sweep loop
//! ([`simulate_stencil_cluster`]) in which every rank computes its local
//! block at the roofline rate and then exchanges face halos over
//! serialized per-rank NICs — the lab's analogue of the hybrid-HPL
//! stage loop.

use phi_des::{Kind, Sim};
use phi_fabric::{HaloSpec, NetModel};
use phi_knc::spmv::{spmv_listing, Csr};
use phi_knc::stencil::{stencil_listing, StarStencil};
use phi_knc::{build_basic_kernel, KncChip, Program, RooflineClass, RooflinePoint};
use std::cell::RefCell;
use std::rc::Rc;

/// One kernel viewed the way the paper's pipeline views DGEMM: a listing
/// to verify, a traffic model to charge, and a roofline class to reason
/// under.
pub trait Workload {
    /// Stable lowercase name (CLI flags, report rows).
    fn name(&self) -> &'static str;

    /// The inner-loop listing `(body, epilogue)` the static and
    /// conformance layers run over.
    fn listing(&self) -> (Program, Program);

    /// Roofline placement of the operator on `chip`.
    fn roofline(&self, chip: &KncChip) -> RooflinePoint;

    /// Bytes the busiest rank moves over the fabric in one outer
    /// iteration (an HPL stage, an SpMV mat-vec, a stencil sweep).
    fn bytes_per_rank(&self) -> f64;

    /// Analytic time of one communication phase under `net`.
    fn exchange_s(&self, net: &NetModel) -> f64;

    /// Declared class, for handing to `phi_lint::LintConfig`.
    fn class(&self, chip: &KncChip) -> RooflineClass {
        self.roofline(chip).class
    }
}

/// The shipped workloads, for CLI parsing and iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// The paper's own kernel: packed-tile DGEMM under HPL.
    Dgemm,
    /// Sliced-ELLPACK CSR sparse mat-vec (bandwidth-bound).
    Spmv,
    /// Radius-`r` star stencil with face-halo exchange.
    Stencil,
}

impl WorkloadKind {
    /// All kinds, in the order CLI surfaces list them.
    pub const ALL: [WorkloadKind; 3] = [
        WorkloadKind::Dgemm,
        WorkloadKind::Spmv,
        WorkloadKind::Stencil,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Dgemm => "dgemm",
            WorkloadKind::Spmv => "spmv",
            WorkloadKind::Stencil => "stencil",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        WorkloadKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// HPL's DGEMM as a [`Workload`]: Basic Kernel 2 plus the stage-loop
/// collectives (panel broadcast along the row, long swap down the
/// column) at the first, widest stage.
#[derive(Clone, Copy, Debug)]
pub struct DgemmWorkload {
    /// Global problem order.
    pub n: usize,
    /// Panel/block width.
    pub nb: usize,
    /// Process grid rows.
    pub p: usize,
    /// Process grid columns.
    pub q: usize,
}

impl Workload for DgemmWorkload {
    fn name(&self) -> &'static str {
        WorkloadKind::Dgemm.name()
    }

    fn listing(&self) -> (Program, Program) {
        build_basic_kernel(phi_blas::gemm::MicroKernelKind::Kernel2)
    }

    fn roofline(&self, chip: &KncChip) -> RooflinePoint {
        // Packed rank-nb update: 2·nb flops per 16 bytes of A+C traffic
        // per element once B is register-resident.
        phi_knc::roofline::place(chip, self.nb as f64 / 16.0)
    }

    fn bytes_per_rank(&self) -> f64 {
        let panel = 8.0 * (self.n / self.p.max(1)) as f64 * self.nb as f64;
        let swap = 2.0 * 8.0 * self.nb as f64 * (self.n / self.q.max(1)) as f64;
        panel + swap
    }

    fn exchange_s(&self, net: &NetModel) -> f64 {
        net.ring_bcast(
            8.0 * (self.n / self.p.max(1)) as f64 * self.nb as f64,
            self.q,
        ) + net.long_swap(self.nb, self.n / self.q.max(1), self.p)
    }
}

/// Row-blocked distributed SpMV as a [`Workload`]: the sliced-ELLPACK
/// kernel plus a ring allgather of the `x` vector (each of `ranks` ranks
/// owns `cols/ranks` entries and needs the rest for its row block).
#[derive(Clone, Debug)]
pub struct SpmvWorkload {
    /// Matrix shape/occupancy summary.
    pub rows: usize,
    /// Columns (= length of `x`).
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Ranks the rows are blocked over.
    pub ranks: usize,
}

impl SpmvWorkload {
    /// Summarizes a concrete matrix.
    pub fn from_csr(a: &Csr, ranks: usize) -> Self {
        assert!(ranks >= 1);
        Self {
            rows: a.rows,
            cols: a.cols,
            nnz: a.nnz(),
            ranks,
        }
    }

    /// Arithmetic intensity, matching [`Csr::arithmetic_intensity`].
    pub fn arithmetic_intensity(&self) -> f64 {
        let flops = 2.0 * self.nnz as f64;
        let bytes = 12.0 * self.nnz as f64 + 8.0 * self.cols as f64 + 20.0 * self.rows as f64;
        flops / bytes.max(1.0)
    }
}

impl Workload for SpmvWorkload {
    fn name(&self) -> &'static str {
        WorkloadKind::Spmv.name()
    }

    fn listing(&self) -> (Program, Program) {
        spmv_listing()
    }

    fn roofline(&self, chip: &KncChip) -> RooflinePoint {
        phi_knc::roofline::place(chip, self.arithmetic_intensity())
    }

    fn bytes_per_rank(&self) -> f64 {
        if self.ranks <= 1 {
            return 0.0;
        }
        8.0 * self.cols as f64 * (self.ranks - 1) as f64 / self.ranks as f64
    }

    fn exchange_s(&self, net: &NetModel) -> f64 {
        if self.ranks <= 1 {
            return 0.0;
        }
        // Ring allgather: ranks−1 rounds, one x-share per round.
        (self.ranks - 1) as f64 * net.p2p(8.0 * self.cols as f64 / self.ranks as f64)
    }
}

/// The 3-D star stencil as a [`Workload`]: the tap-blocked kernel plus
/// the face-halo exchange of its decomposition.
#[derive(Clone, Debug)]
pub struct StencilWorkload {
    /// Coefficients (fix the tap count and the intensity).
    pub stencil: StarStencil,
    /// Domain decomposition the halo traffic follows.
    pub spec: HaloSpec,
}

impl StencilWorkload {
    /// Builds the workload, checking the decomposition supports the
    /// stencil's radius.
    pub fn new(stencil: StarStencil, spec: HaloSpec) -> Self {
        assert_eq!(
            stencil.radius, spec.radius,
            "halo depth must match the stencil radius"
        );
        Self { stencil, spec }
    }
}

impl Workload for StencilWorkload {
    fn name(&self) -> &'static str {
        WorkloadKind::Stencil.name()
    }

    fn listing(&self) -> (Program, Program) {
        stencil_listing()
    }

    fn roofline(&self, chip: &KncChip) -> RooflinePoint {
        self.stencil.roofline(chip)
    }

    fn bytes_per_rank(&self) -> f64 {
        self.spec.sent_bytes().into_iter().fold(0.0f64, f64::max)
    }

    fn exchange_s(&self, net: &NetModel) -> f64 {
        net.halo_exchange(&self.spec)
    }
}

/// Configuration of the stencil cluster stage.
#[derive(Clone, Debug)]
pub struct StencilClusterConfig {
    /// The workload (kernel + decomposition).
    pub workload: StencilWorkload,
    /// Bulk-synchronous sweeps to simulate.
    pub sweeps: usize,
    /// Inter-node rail.
    pub net: NetModel,
    /// Per-node chip (sets the compute rate via the roofline).
    pub chip: KncChip,
}

/// Outcome of [`simulate_stencil_cluster`].
#[derive(Clone, Debug)]
pub struct StencilClusterReport {
    /// End-to-end seconds for all sweeps.
    pub total_s: f64,
    /// Seconds the slowest rank spent computing.
    pub compute_s: f64,
    /// Seconds of halo exchange exposed on the critical path.
    pub halo_s: f64,
    /// Total bytes moved over the fabric.
    pub halo_bytes: f64,
    /// Discrete events the simulation fired.
    pub events: u64,
    /// Achieved GFLOPS over the whole domain.
    pub gflops: f64,
}

/// Runs `sweeps` bulk-synchronous stencil sweeps on the discrete-event
/// engine: every rank computes its local block at the bandwidth-roofline
/// rate, then books its face messages on its serialized NIC
/// ([`phi_des::Link`] semantics via [`NetModel`] constants); the sweep
/// barrier closes when the last rank's halo lands. Decomposed runs
/// always expose a nonzero halo stage; single-rank runs never touch the
/// network.
pub fn simulate_stencil_cluster(cfg: &StencilClusterConfig) -> StencilClusterReport {
    assert!(cfg.sweeps >= 1);
    let spec = cfg.workload.spec;
    let ranks = spec.rank_count();
    let point = cfg.workload.roofline(&cfg.chip);
    let rate = point.attainable_gflops.max(1e-9) * 1e9 / ranks as f64;
    let taps = cfg.workload.stencil.taps();
    let (nx, ny, nz) = spec.dims;
    let points_total = (nx * ny * nz) as f64;
    let flops_per_sweep_rank = 2.0 * taps as f64 * points_total / ranks as f64;
    let compute_per_sweep = flops_per_sweep_rank / rate;

    // Per-rank NICs: one serialized outbound link each.
    let nics = Rc::new(RefCell::new(vec![
        phi_des::Link::new(
            cfg.net.bandwidth,
            cfg.net.latency
        );
        ranks
    ]));
    let done = Rc::new(RefCell::new((0usize, 0.0f64))); // (ranks finished, last finish)

    let mut sim = Sim::new();
    sim.trace_mut().enable();
    let mut total_compute = 0.0f64;
    let mut total_halo = 0.0f64;

    for _ in 0..cfg.sweeps {
        let sweep_start = sim.now();
        *done.borrow_mut() = (0, sweep_start);
        for rank in 0..ranks {
            let nics = nics.clone();
            let done = done.clone();
            sim.schedule_at_ranked(sweep_start + compute_per_sweep, rank as u32, move |s| {
                // Compute finished; book this rank's face messages.
                let mut end = s.now();
                {
                    let mut nics = nics.borrow_mut();
                    for (from, _, bytes) in spec.messages() {
                        if from == rank {
                            let (_, e) = nics[from].transfer(s.now(), bytes);
                            end = end.max(e);
                        }
                    }
                }
                let mut d = done.borrow_mut();
                d.0 += 1;
                d.1 = d.1.max(end);
            });
        }
        sim.run();
        let (finished, last) = *done.borrow();
        assert_eq!(finished, ranks, "sweep barrier lost a rank");
        let sweep_end = last.max(sweep_start + compute_per_sweep);
        total_compute += compute_per_sweep;
        total_halo += sweep_end - (sweep_start + compute_per_sweep);
        sim.trace_mut().record(
            0,
            sweep_start + compute_per_sweep,
            sweep_end,
            if sweep_end > sweep_start + compute_per_sweep {
                Kind::Comm
            } else {
                Kind::Barrier
            },
        );
        // Next sweep starts at the barrier.
        sim.schedule_at(sweep_end, |_| {});
        sim.run();
    }

    let total_s = sim.now();
    let halo_bytes = nics.borrow().iter().map(|l| l.bytes_moved()).sum();
    StencilClusterReport {
        total_s,
        compute_s: total_compute,
        halo_s: total_halo,
        halo_bytes,
        events: sim.events_fired(),
        gflops: 2.0 * taps as f64 * points_total * cfg.sweeps as f64 / total_s / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_rank_workload(radius: usize) -> StencilWorkload {
        let coeffs = vec![0.25; 6 * radius + 1];
        StencilWorkload::new(
            StarStencil::new(radius, coeffs),
            HaloSpec::new((96, 96, 96), (2, 2, 1), radius),
        )
    }

    #[test]
    fn kinds_parse_their_own_names() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::parse(k.name()), Some(k));
        }
        assert_eq!(WorkloadKind::parse("hpl"), None);
    }

    #[test]
    fn workloads_disagree_on_roofline_class() {
        let chip = KncChip::default();
        let dgemm = DgemmWorkload {
            n: 28_000,
            nb: 960,
            p: 2,
            q: 2,
        };
        let spmv = SpmvWorkload {
            rows: 1 << 20,
            cols: 1 << 20,
            nnz: 16 << 20,
            ranks: 4,
        };
        let stencil = four_rank_workload(1);
        assert_eq!(dgemm.class(&chip), RooflineClass::ComputeBound);
        assert_eq!(spmv.class(&chip), RooflineClass::BandwidthBound);
        assert_eq!(stencil.class(&chip), RooflineClass::BandwidthBound);
    }

    #[test]
    fn every_workload_ships_a_listing_with_an_epilogue_store() {
        let chip = KncChip::default();
        let workloads: [&dyn Workload; 3] = [
            &DgemmWorkload {
                n: 8_000,
                nb: 960,
                p: 2,
                q: 2,
            },
            &SpmvWorkload {
                rows: 4096,
                cols: 4096,
                nnz: 65_536,
                ranks: 2,
            },
            &four_rank_workload(2),
        ];
        for w in workloads {
            let (body, epi) = w.listing();
            assert!(!body.body.is_empty(), "{}", w.name());
            assert!(!epi.body.is_empty(), "{}", w.name());
            let p = w.roofline(&chip);
            assert!(p.attainable_gflops > 0.0);
        }
    }

    #[test]
    fn exchange_times_are_positive_and_scale_with_the_fabric() {
        let net = NetModel::default();
        let slow = net.degraded(0.25, 0.0);
        let spmv = SpmvWorkload {
            rows: 1 << 20,
            cols: 1 << 20,
            nnz: 16 << 20,
            ranks: 4,
        };
        let stencil = four_rank_workload(1);
        for w in [&spmv as &dyn Workload, &stencil] {
            let t = w.exchange_s(&net);
            assert!(t > 0.0, "{}", w.name());
            assert!(w.exchange_s(&slow) > t, "{}", w.name());
            assert!(w.bytes_per_rank() > 0.0, "{}", w.name());
        }
    }

    #[test]
    fn stencil_cluster_stage_exposes_nonzero_halo_time() {
        let cfg = StencilClusterConfig {
            workload: four_rank_workload(1),
            sweeps: 8,
            net: NetModel::default(),
            chip: KncChip::default(),
        };
        let rep = simulate_stencil_cluster(&cfg);
        assert!(rep.halo_s > 0.0, "{rep:?}");
        assert!(rep.compute_s > 0.0);
        assert!(rep.total_s >= rep.compute_s + rep.halo_s - 1e-12);
        assert!(rep.events >= 8 * 4, "{}", rep.events);
        let expected = cfg.workload.spec.total_bytes() * 8.0;
        assert!((rep.halo_bytes - expected).abs() < 1e-6, "{rep:?}");
    }

    #[test]
    fn undivided_stencil_cluster_never_touches_the_network() {
        let radius = 1;
        let w = StencilWorkload::new(
            StarStencil::seven_point(-6.0, 1.0),
            HaloSpec::new((64, 64, 64), (1, 1, 1), radius),
        );
        let cfg = StencilClusterConfig {
            workload: w,
            sweeps: 3,
            net: NetModel::default(),
            chip: KncChip::default(),
        };
        let rep = simulate_stencil_cluster(&cfg);
        assert_eq!(rep.halo_bytes, 0.0);
        assert_eq!(rep.halo_s, 0.0);
        assert!(rep.total_s > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = StencilClusterConfig {
            workload: four_rank_workload(2),
            sweeps: 5,
            net: NetModel::default(),
            chip: KncChip::default(),
        };
        let a = simulate_stencil_cluster(&cfg);
        let b = simulate_stencil_cluster(&cfg);
        assert_eq!(a.total_s.to_bits(), b.total_s.to_bits());
        assert_eq!(a.halo_bytes.to_bits(), b.halo_bytes.to_bits());
    }
}
