//! One-iteration Gantt charts of the three look-ahead schemes (Fig. 8).
//!
//! Fig. 8 of the paper is a timing diagram of a single HPL iteration on
//! one node: which of {host, coprocessor} does what, and what overlaps.
//! This module replays one stage of the per-stage model as explicit
//! spans on two lanes — lane 0 = Sandy Bridge EP, lane 1 = Knights
//! Corner — for each [`Lookahead`] scheme, reproducing the figure's
//! structure: serial everything (8a), panel under update (8b), and the
//! swap/DTRSM/U-broadcast strips pipelined against the update (8c).

use super::{HybridConfig, Lookahead};
use phi_des::{Kind, Trace};

/// Lane index of the host in the produced traces.
pub const HOST_LANE: u32 = 0;
/// Lane index of the coprocessor.
pub const CARD_LANE: u32 = 1;

/// Ingredients of one stage, extracted from the models.
#[derive(Clone, Copy, Debug)]
pub struct StageTimes {
    /// Next panel factorization + its row broadcast (host).
    pub panel: f64,
    /// Row swapping (host + network).
    pub swap: f64,
    /// U DTRSM (host).
    pub trsm: f64,
    /// U broadcast (network, shown on the host lane).
    pub ubcast: f64,
    /// Trailing update (card).
    pub update: f64,
}

/// Computes the stage ingredients at `stage` for `cfg` (worst node).
pub fn stage_times(cfg: &HybridConfig, stage: usize) -> StageTimes {
    let s = cfg.n.div_ceil(cfg.nb);
    assert!(stage < s, "stage out of range");
    let host = &cfg.offload.host;
    let nb = cfg.nb.min(cfg.n - stage * cfg.nb);
    let (p, q) = (cfg.grid.p, cfg.grid.q);
    let rows_loc = (0..p)
        .map(|r| cfg.grid.trailing_blocks_row(r, stage + 1, s))
        .max()
        .unwrap_or(0)
        * cfg.nb;
    let cols_loc = (0..q)
        .map(|c| cfg.grid.trailing_blocks_col(c, stage + 1, s))
        .max()
        .unwrap_or(0)
        * cfg.nb;
    let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);
    let panel_cores = host.cfg.cores() as f64 - cfg.pack_cores;

    let panel = host.panel_time_s(m_panel_loc, nb, panel_cores)
        + cfg.net.ring_bcast(8.0 * (m_panel_loc * nb) as f64, q);
    let swap = host.swap_time_s(nb, cols_loc) + cfg.net.long_swap(nb, cols_loc, p);
    let trsm = host.trsm_time_s(nb, cols_loc, panel_cores);
    let ubcast = cfg.net.u_bcast(nb, cols_loc, p);
    let update = if rows_loc > 0 && cols_loc > 0 {
        cfg.offload
            .analytic(
                rows_loc,
                cols_loc,
                cfg.cards_per_node,
                cfg.host_update_cores,
            )
            .time_s
    } else {
        0.0
    };
    StageTimes {
        panel,
        swap,
        trsm,
        ubcast,
        update,
    }
}

/// Builds the Fig. 8 trace of one iteration under `scheme`. Returns the
/// trace and the iteration's wall time.
pub fn scheme_gantt(t: &StageTimes, scheme: Lookahead, strips: usize) -> (Trace, f64) {
    let mut tr = Trace::default();
    tr.enable();
    match scheme {
        Lookahead::None => {
            // Fig. 8a: panel → swap → trsm → ubcast → update, card idle
            // throughout the host phases.
            let mut now = 0.0;
            for (kind, dur) in [
                (Kind::Panel, t.panel),
                (Kind::Swap, t.swap),
                (Kind::Trsm, t.trsm),
                (Kind::Comm, t.ubcast),
            ] {
                tr.record(HOST_LANE, now, now + dur, kind);
                tr.record(CARD_LANE, now, now + dur, Kind::Barrier);
                now += dur;
            }
            tr.record(CARD_LANE, now, now + t.update, Kind::Gemm);
            (tr, now + t.update)
        }
        Lookahead::Basic => {
            // Fig. 8b: the three steps first (card idle), then the update
            // on the card overlapped with the next panel on the host.
            let mut now = 0.0;
            for (kind, dur) in [
                (Kind::Swap, t.swap),
                (Kind::Trsm, t.trsm),
                (Kind::Comm, t.ubcast),
            ] {
                tr.record(HOST_LANE, now, now + dur, kind);
                tr.record(CARD_LANE, now, now + dur, Kind::Barrier);
                now += dur;
            }
            tr.record(CARD_LANE, now, now + t.update, Kind::Gemm);
            tr.record(HOST_LANE, now, now + t.panel, Kind::Panel);
            let host_end = now + t.panel;
            let card_end = now + t.update;
            let end = host_end.max(card_end);
            if card_end < end {
                tr.record(CARD_LANE, card_end, end, Kind::Barrier);
            }
            (tr, end)
        }
        Lookahead::Pipelined => {
            // Fig. 8c: the three steps are cut into column strips; the
            // card starts updating as soon as strip 0 lands and each
            // subsequent strip hides under the running update.
            let strips = strips.max(1);
            let three = t.swap + t.trsm + t.ubcast;
            let strip = three / strips as f64;
            let mut now = 0.0;
            for s in 0..strips {
                let frac = |x: f64| x / strips as f64;
                tr.record(HOST_LANE, now, now + frac(t.swap), Kind::Swap);
                tr.record(
                    HOST_LANE,
                    now + frac(t.swap),
                    now + frac(t.swap) + frac(t.trsm),
                    Kind::Trsm,
                );
                tr.record(
                    HOST_LANE,
                    now + frac(t.swap) + frac(t.trsm),
                    now + strip,
                    Kind::Comm,
                );
                if s == 0 {
                    tr.record(CARD_LANE, now, now + strip, Kind::Barrier);
                }
                now += strip;
            }
            // Card: update starts after strip 0.
            let update_start = strip;
            let update_end = update_start + t.update;
            tr.record(CARD_LANE, update_start, update_end, Kind::Gemm);
            // Host: panel after the strips.
            tr.record(HOST_LANE, three, three + t.panel, Kind::Panel);
            let end = update_end.max(three + t.panel);
            (tr, end)
        }
    }
}

/// Renders all three schemes for one configuration/stage as ASCII Gantt
/// charts.
pub fn fig8_render(cfg: &HybridConfig, stage: usize, width: usize) -> String {
    let t = stage_times(cfg, stage);
    let mut out = String::new();
    for (scheme, label) in [
        (Lookahead::None, "no look-ahead (Fig. 8a)"),
        (Lookahead::Basic, "basic look-ahead (Fig. 8b)"),
        (Lookahead::Pipelined, "pipelined look-ahead (Fig. 8c)"),
    ] {
        let (trace, dur) = scheme_gantt(&t, scheme, cfg.strips);
        out.push_str(&format!(
            "{label}: iteration {dur:.3}s  (lane 0 = host, lane 1 = card; \
             P=panel S=swap T=DTRSM C=bcast G=update .=idle)\n"
        ));
        out.push_str(&trace.gantt_ascii(width, dur));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_fabric::ProcessGrid;

    fn cfg() -> HybridConfig {
        HybridConfig::new(84_000, ProcessGrid::new(2, 2), 2)
    }

    #[test]
    fn scheme_durations_are_ordered() {
        let t = stage_times(&cfg(), 5);
        let (_, none) = scheme_gantt(&t, Lookahead::None, 12);
        let (_, basic) = scheme_gantt(&t, Lookahead::Basic, 12);
        let (_, pipe) = scheme_gantt(&t, Lookahead::Pipelined, 12);
        assert!(none > basic, "{none} vs {basic}");
        assert!(basic > pipe, "{basic} vs {pipe}");
    }

    #[test]
    fn card_idle_shrinks_with_pipelining() {
        let t = stage_times(&cfg(), 5);
        let idle = |scheme| {
            let (tr, dur) = scheme_gantt(&t, scheme, 12);
            1.0 - tr.lane_busy_fraction(CARD_LANE, dur)
        };
        let i_none = idle(Lookahead::None);
        let i_basic = idle(Lookahead::Basic);
        let i_pipe = idle(Lookahead::Pipelined);
        assert!(i_none > i_basic, "{i_none} vs {i_basic}");
        assert!(i_basic > i_pipe, "{i_basic} vs {i_pipe}");
        assert!(i_pipe < 0.06, "pipelined card idle {i_pipe:.3}");
    }

    #[test]
    fn render_contains_all_three_schemes() {
        let text = fig8_render(&cfg(), 5, 80);
        assert!(text.contains("Fig. 8a"));
        assert!(text.contains("Fig. 8b"));
        assert!(text.contains("Fig. 8c"));
        assert!(text.matches("G").count() > 10, "update spans visible");
    }

    #[test]
    fn stage_times_shrink_with_stage() {
        let c = cfg();
        let early = stage_times(&c, 2);
        let late = stage_times(&c, 60);
        assert!(late.update < early.update);
        assert!(late.swap <= early.swap);
    }
}
