//! Rank-level cluster DES: the hybrid HPL stage loop executed as a
//! `P × Q`-rank discrete-event simulation on the deterministic parallel
//! engine ([`phi_des::parallel`]).
//!
//! [`super::simulate_cluster`] charges every stage with the *worst* node's
//! extents and sums — fast, but it cannot express the real cluster
//! pipeline where the column holding stage `s + 1`'s panel starts
//! factoring while other columns are still updating stage `s`. This
//! module gives every grid rank its own logical process:
//!
//! * the owner column (`stage % Q`, block-cyclic) factors the panel and
//!   forwards it along the process-row ring with point-to-point network
//!   delays;
//! * every rank, once the panel has both arrived and its own previous
//!   stage finished, performs its local swap/DTRSM/U-broadcast share and
//!   trailing update sized by **its own** block-cyclic extents;
//! * stage costs come from the same calibrated host/card/network models
//!   as the analytic path, so the two are directly comparable.
//!
//! The conservative lookahead is the network latency — every cross-rank
//! message is a real wire message and can never arrive faster — which
//! makes the execution byte-identical at any `--threads` (the engine's
//! contract, pinned again here at cluster scale).

use super::{HybridConfig, WorkDivision};
use crate::report::GigaflopsReport;
use phi_des::parallel::{LogicalProcess, Mailbox, ParallelDes, ParallelReport};
use phi_fabric::GridCoord;

/// Messages between grid ranks.
#[derive(Clone, Copy, Debug)]
enum LuMsg {
    /// This rank is free to begin stage `s` (self-scheduled at the end of
    /// the previous stage's local work).
    Start(usize),
    /// The stage-`s` panel arriving over the row ring.
    Panel(usize),
}

/// One grid rank's logical process: per-stage costs precomputed from the
/// calibrated models, plus the panel/ready join state.
struct RankLu {
    nstages: usize,
    q: usize,
    my_q: usize,
    /// Linear rank of the next column in this process row's ring.
    next_rank: u32,
    /// Panel factorization cost per stage (0.0 unless this column owns).
    panel: Vec<f64>,
    /// Local swap + DTRSM + U-bcast + trailing update per stage.
    local: Vec<f64>,
    /// Row-ring forward delay of the stage's panel (one p2p hop).
    forward: Vec<f64>,
    /// Stages whose panel has already arrived.
    arrived: Vec<bool>,
    /// Stage this rank is idle-waiting a panel for, if any.
    pending: Option<usize>,
    /// Local completion time of the whole factorization.
    finished_at: f64,
}

impl RankLu {
    fn owns(&self, stage: usize) -> bool {
        stage % self.q == self.my_q
    }

    /// Forwards the stage-`s` panel one hop unless the next column is the
    /// owner (the ring is complete).
    fn forward_panel(&self, stage: usize, extra_delay: f64, out: &mut Mailbox<LuMsg>) {
        let next_col = (self.my_q + 1) % self.q;
        if self.q > 1 && next_col != stage % self.q {
            out.send(
                self.next_rank,
                extra_delay + self.forward[stage],
                LuMsg::Panel(stage),
            );
        }
    }
}

impl LogicalProcess for RankLu {
    type Msg = LuMsg;

    fn handle(&mut self, now: f64, msg: LuMsg, out: &mut Mailbox<LuMsg>) {
        match msg {
            LuMsg::Start(s) => {
                if s == self.nstages {
                    self.finished_at = now;
                } else if self.owns(s) {
                    // Factor, then ship the panel and run the local stage.
                    self.forward_panel(s, self.panel[s], out);
                    out.schedule(self.panel[s] + self.local[s], LuMsg::Start(s + 1));
                } else if self.arrived[s] {
                    out.schedule(self.local[s], LuMsg::Start(s + 1));
                } else {
                    self.pending = Some(s);
                }
            }
            LuMsg::Panel(s) => {
                self.arrived[s] = true;
                self.forward_panel(s, 0.0, out);
                if self.pending == Some(s) {
                    self.pending = None;
                    out.schedule(self.local[s], LuMsg::Start(s + 1));
                }
            }
        }
    }
}

/// Builds one [`RankLu`] per grid rank with all stage costs precomputed
/// from the same models the analytic path uses — but sized by each rank's
/// *own* block-cyclic extents rather than the worst node's.
fn build_ranks(cfg: &HybridConfig) -> Vec<RankLu> {
    let s_total = cfg.n.div_ceil(cfg.nb);
    let host = &cfg.offload.host;
    let (p, q) = (cfg.grid.p, cfg.grid.q);
    let host_cores = host.cfg.cores() as f64;
    let panel_cores = host_cores
        - if cfg.cards_per_node > 0 {
            cfg.pack_cores
        } else {
            0.0
        };

    let mut ranks = Vec::with_capacity(cfg.grid.size());
    for r in 0..cfg.grid.size() {
        let GridCoord { p: my_p, q: my_q } = cfg.grid.coord(r);
        let next_rank = cfg.grid.rank(GridCoord {
            p: my_p,
            q: (my_q + 1) % q,
        }) as u32;

        let mut panel = Vec::with_capacity(s_total);
        let mut local = Vec::with_capacity(s_total);
        let mut forward = Vec::with_capacity(s_total);
        for stage in 0..s_total {
            let nb = cfg.nb.min(cfg.n - stage * cfg.nb);
            let rows_loc =
                (cfg.grid.trailing_blocks_row(my_p, stage + 1, s_total) * cfg.nb).min(cfg.n);
            let cols_loc =
                (cfg.grid.trailing_blocks_col(my_q, stage + 1, s_total) * cfg.nb).min(cfg.n);
            let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);

            panel.push(if stage % q == my_q {
                host.panel_time_s(m_panel_loc, nb, panel_cores)
                    + if p > 1 {
                        nb as f64 * 2.0 * cfg.net.latency * (p as f64).log2().ceil()
                    } else {
                        0.0
                    }
            } else {
                0.0
            });
            forward.push(cfg.net.p2p(8.0 * (m_panel_loc * nb) as f64));

            let three = host.swap_time_s(nb, cols_loc)
                + cfg.net.long_swap(nb, cols_loc, p)
                + host.trsm_time_s(nb, cols_loc, panel_cores)
                + cfg.net.u_bcast(nb, cols_loc, p);
            let update = if rows_loc == 0 || cols_loc == 0 {
                0.0
            } else if cfg.cards_per_node > 0 {
                match cfg.division {
                    WorkDivision::Dynamic => {
                        cfg.offload
                            .analytic(
                                rows_loc,
                                cols_loc,
                                cfg.cards_per_node,
                                cfg.host_update_cores,
                            )
                            .time_s
                    }
                    WorkDivision::Static { card_fraction } => {
                        cfg.offload
                            .analytic_split(
                                rows_loc,
                                cols_loc,
                                cfg.cards_per_node,
                                cfg.host_update_cores,
                                card_fraction,
                            )
                            .time_s
                    }
                }
            } else {
                host.gemm_time_s(rows_loc, cols_loc, nb, host_cores) / cfg.host_lu_efficiency
            };
            local.push(three + update);
        }

        ranks.push(RankLu {
            nstages: s_total,
            q,
            my_q,
            next_rank,
            panel,
            local,
            forward,
            arrived: vec![false; s_total],
            pending: None,
            finished_at: 0.0,
        });
    }
    ranks
}

/// Result of a rank-level cluster DES run.
#[derive(Clone, Debug)]
pub struct RankDesResult {
    /// Engine counters: events, windows, end time, and the thread-count-
    /// independent digest (compare digests across `threads` values to
    /// prove determinism at cluster scale).
    pub parallel: ParallelReport,
    /// End-to-end factorization time, seconds (latest rank completion).
    pub time_s: f64,
    /// Overall performance at that time.
    pub report: GigaflopsReport,
}

/// Runs the hybrid HPL stage loop as a `P × Q`-rank parallel DES on
/// `threads` workers. The result is byte-identical for every `threads`
/// value; per-rank extents make it a *tighter* (≤) estimate than the
/// worst-node analytic path under [`super::Lookahead::None`].
///
/// # Panics
/// Panics when the per-node share does not fit in host memory (same gate
/// as [`super::simulate_cluster`]).
pub fn simulate_cluster_rankdes(cfg: &HybridConfig, threads: usize) -> RankDesResult {
    assert!(
        cfg.bytes_per_node() <= cfg.host_mem_gib * 1.073741824e9 * 0.95,
        "N = {} does not fit in {} GiB/node on a {}x{} grid",
        cfg.n,
        cfg.host_mem_gib,
        cfg.grid.p,
        cfg.grid.q
    );
    let ranks = build_ranks(cfg);
    let mut des = ParallelDes::new(ranks, cfg.net.latency);
    for r in 0..cfg.grid.size() {
        des.seed(r, 0.0, LuMsg::Start(0));
    }
    let parallel = des.run(threads);
    let time_s = (0..des.ranks())
        .map(|i| des.process(i).finished_at)
        .fold(0.0f64, f64::max);
    RankDesResult {
        parallel,
        time_s,
        report: GigaflopsReport::new(cfg.n, time_s, cfg.peak_gflops()),
    }
}

#[cfg(test)]
mod tests {
    use super::super::{simulate_cluster, Lookahead};
    use super::*;
    use phi_fabric::ProcessGrid;

    fn cfg(n: usize, p: usize, q: usize, cards: usize) -> HybridConfig {
        let mut c = HybridConfig::new(n, ProcessGrid::new(p, q), cards);
        c.lookahead = Lookahead::None;
        c
    }

    #[test]
    fn single_node_matches_the_analytic_stage_sum_exactly() {
        // On a 1 × 1 grid there is no network, no pipeline, no overlap:
        // the DES must reproduce the analytic Lookahead::None total minus
        // its final back-substitution term, bit-for-bit modulo f64
        // summation order.
        let c = cfg(84_000, 1, 1, 1);
        let des = simulate_cluster_rankdes(&c, 1);
        let analytic = simulate_cluster(&c, false);
        let backsub =
            2.0 * (c.n as f64) * (c.n as f64) * 8.0 / (c.offload.host.cfg.stream_bw_gbs * 1e9);
        let expect = analytic.report.time_s - backsub;
        assert!(
            (des.time_s - expect).abs() / expect < 1e-9,
            "DES {} vs analytic stage sum {}",
            des.time_s,
            expect
        );
    }

    #[test]
    fn byte_identical_at_any_thread_count() {
        let c = cfg(168_000, 2, 2, 1);
        let one = simulate_cluster_rankdes(&c, 1);
        let two = simulate_cluster_rankdes(&c, 2);
        let eight = simulate_cluster_rankdes(&c, 8);
        assert_eq!(one.parallel, two.parallel);
        assert_eq!(one.parallel, eight.parallel);
        assert_eq!(one.time_s.to_bits(), two.time_s.to_bits());
        assert_eq!(one.time_s.to_bits(), eight.time_s.to_bits());
    }

    #[test]
    fn windowed_run_equals_the_sequential_reference() {
        let c = cfg(120_000, 2, 3, 1);
        let windowed = simulate_cluster_rankdes(&c, 4);
        let ranks = build_ranks(&c);
        let mut des = ParallelDes::new(ranks, c.net.latency);
        for r in 0..c.grid.size() {
            des.seed(r, 0.0, LuMsg::Start(0));
        }
        let seq = des.run_sequential();
        assert_eq!(windowed.parallel.events, seq.events);
        assert_eq!(windowed.parallel.digest, seq.digest);
        assert_eq!(windowed.parallel.end_time.to_bits(), seq.end_time.to_bits());
    }

    #[test]
    fn per_rank_extents_tighten_the_worst_node_analytic_bound() {
        // Column pipelining + own-extent sizing: the DES can only come in
        // at or under the serial worst-node sum, and not absurdly under.
        let c = cfg(168_000, 2, 2, 1);
        let des = simulate_cluster_rankdes(&c, 2);
        let analytic = simulate_cluster(&c, false);
        let ratio = des.time_s / analytic.report.time_s;
        assert!(
            (0.15..=1.02).contains(&ratio),
            "DES/analytic ratio {ratio:.3} ({} vs {})",
            des.time_s,
            analytic.report.time_s
        );
        // Sanity on the counters: every rank starts every stage, panels
        // traverse the ring.
        let s = c.n.div_ceil(c.nb) as u64;
        let min_events = (s + 1) * c.grid.size() as u64;
        assert!(
            des.parallel.events >= min_events,
            "{} events for {} stage-starts",
            des.parallel.events,
            min_events
        );
        assert!(des.report.efficiency() > 0.0 && des.report.efficiency() < 1.0);
    }

    #[test]
    fn tiny_grid_panel_ring_is_hand_checkable() {
        // 1 × 2 grid, 2 stages: rank 0 owns stage 0's panel, rank 1 owns
        // stage 1's. Rank 1 cannot start stage 0 before the panel crosses
        // the wire; the whole run must therefore take at least one p2p
        // delay plus the two local stages on the critical path.
        let c = cfg(2_400, 1, 2, 0);
        let des = simulate_cluster_rankdes(&c, 1);
        let ranks = build_ranks(&c);
        // Critical path: rank0 panel0 → wire → rank1 local0 → rank1
        // panel1 (then rank1 local1 is its only remaining work; rank0's
        // stage-1 wait is symmetric and shorter or equal).
        let r0 = &ranks[0];
        let r1 = &ranks[1];
        let path_r1 = r0.panel[0] + r0.forward[0] + r1.local[0] + r1.panel[1] + r1.local[1];
        let path_r0 = (r0.panel[0] + r0.forward[0] + r1.local[0] + r1.panel[1] + r1.forward[1])
            .max(r0.panel[0] + r0.local[0])
            + r0.local[1];
        let expect = path_r1.max(path_r0);
        assert!(
            (des.time_s - expect).abs() < 1e-12,
            "DES {} vs hand path {}",
            des.time_s,
            expect
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn memory_gate_enforced() {
        let _ = simulate_cluster_rankdes(&cfg(400_000, 1, 1, 1), 1);
    }
}
