//! Hybrid HPL (Section V): host + coprocessor(s), one node or a P × Q
//! cluster.
//!
//! Per LU stage, the host factors the panel, broadcasts it along its
//! process row, performs the row swaps, the `U` DTRSM and the `U`
//! broadcast down the columns, and the trailing update is offloaded to
//! the card(s) with host work stealing. The three schemes of Fig. 8
//! differ in what overlaps:
//!
//! * [`Lookahead::None`] — everything serial; the card idles through all
//!   host phases (Fig. 8a).
//! * [`Lookahead::Basic`] — the *next* panel factorization (and its
//!   broadcast) overlaps the current trailing update; the card still
//!   idles through U broadcast, swapping and DTRSM — ≈13% of iteration
//!   time at N = 84K (Fig. 8b / Fig. 9a).
//! * [`Lookahead::Pipelined`] — those three steps are additionally
//!   pipelined in column strips against the update, hiding all but the
//!   first strip; the price is extra per-strip overhead that delays late
//!   panels (Fig. 8c / Fig. 9b). This is the paper's contribution on top
//!   of Bach et al., worth up to 11% per iteration.
//!
//! The simulation composes per-stage times from the calibrated host,
//! card, PCIe and network models, iterating the real block-cyclic
//! geometry of the grid, and reports both the end-to-end result
//! (Table III) and per-iteration profiles (Fig. 9).

pub mod faulty;
pub mod rankdes;
pub mod stage_gantt;

pub use faulty::{recovery_regimes, simulate_cluster_faulty, FaultyClusterResult, FtPolicy};
pub use rankdes::{simulate_cluster_rankdes, RankDesResult};

use crate::offload::OffloadModel;
use crate::report::GigaflopsReport;
use phi_fabric::{BcastScheme, NetModel, ProcessGrid};
use phi_knc::Precision;

/// Look-ahead scheme (Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookahead {
    /// No overlap (Fig. 8a).
    None,
    /// Panel overlapped with update (Fig. 8b).
    Basic,
    /// Panel overlap + swap/DTRSM/U-broadcast pipelining (Fig. 8c).
    Pipelined,
}

/// How trailing-update work is divided between host and card(s).
///
/// §IV-B/§V-B: the paper's implementation divides work *dynamically* by
/// two-ended stealing; a static split is the natural alternative it
/// argues against. The tuner searches both.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkDivision {
    /// Dynamic two-ended work stealing (the paper's choice).
    Dynamic,
    /// Fixed fraction of the update flops pinned to the card side.
    Static {
        /// Share of the trailing-update flops the card(s) take, in `0..=1`.
        card_fraction: f64,
    },
}

/// Configuration of a hybrid (or CPU-only) HPL run.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Global problem size.
    pub n: usize,
    /// Block size (`NB = Kt = 1200`, set by the PCIe bound of §V-B).
    pub nb: usize,
    /// Process grid.
    pub grid: ProcessGrid,
    /// Coprocessors per node (0 = CPU-only MKL-style run).
    pub cards_per_node: usize,
    /// Card/host/PCIe models.
    pub offload: OffloadModel,
    /// Inter-node network.
    pub net: NetModel,
    /// Scheme in force.
    pub lookahead: Lookahead,
    /// Host memory per node, GiB (gates the problem size; Table III's
    /// fourth section doubles it to 128 GB).
    pub host_mem_gib: f64,
    /// Host cores reserved for packing/DMA when cards are present.
    pub pack_cores: f64,
    /// Host cores joining the trailing update by work stealing.
    pub host_update_cores: f64,
    /// Strips used by the pipelined scheme.
    pub strips: usize,
    /// Fractional per-stage overhead the pipelining adds to the host path
    /// (extra messages/synchronization that "delays panel factorization").
    pub pipeline_overhead: f64,
    /// Efficiency of the host's LU machinery relative to raw MKL DGEMM
    /// (look-ahead bookkeeping, ragged tiles) — calibrated to the MKL MP
    /// Linpack rows of Table III.
    pub host_lu_efficiency: f64,
    /// Host/card division of the trailing update.
    pub division: WorkDivision,
    /// Panel-broadcast algorithm along the process row.
    pub bcast: BcastScheme,
}

impl HybridConfig {
    /// Table III-style defaults: NB = 1200, one card, basic look-ahead.
    pub fn new(n: usize, grid: ProcessGrid, cards_per_node: usize) -> Self {
        Self {
            n,
            nb: 1200,
            grid,
            cards_per_node,
            offload: OffloadModel::default(),
            net: NetModel::default(),
            lookahead: Lookahead::Pipelined,
            host_mem_gib: 64.0,
            pack_cores: 2.0,
            host_update_cores: 11.0,
            strips: 12,
            pipeline_overhead: 0.12,
            host_lu_efficiency: 0.95,
            division: WorkDivision::Dynamic,
            bcast: BcastScheme::Ring,
        }
    }

    /// Per-node matrix bytes.
    pub fn bytes_per_node(&self) -> f64 {
        (self.n as f64 / self.grid.p as f64) * (self.n as f64 / self.grid.q as f64) * 8.0
    }

    /// Peak GFLOPS of the whole machine (hosts + cards).
    pub fn peak_gflops(&self) -> f64 {
        let host = self.offload.host.cfg.peak_gflops();
        let card = self.offload.card.chip.full_peak_gflops(Precision::F64);
        self.grid.size() as f64 * (host + self.cards_per_node as f64 * card)
    }
}

/// Per-iteration profile (the Fig. 9 series).
#[derive(Clone, Copy, Debug)]
pub struct IterationProfile {
    /// Stage index.
    pub stage: usize,
    /// Global trailing dimension at this stage.
    pub trailing_n: usize,
    /// Stage wall time, seconds.
    pub stage_time: f64,
    /// Card compute within the stage, seconds.
    pub card_busy: f64,
    /// Host panel + its broadcast (exposed portion).
    pub panel_exposed: f64,
    /// Swap + DTRSM + U-broadcast exposed to the card.
    pub three_exposed: f64,
    /// Trailing-update time.
    pub update: f64,
}

/// End-to-end result of a run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Overall performance.
    pub report: GigaflopsReport,
    /// Per-stage profiles (empty unless requested).
    pub iterations: Vec<IterationProfile>,
    /// Aggregate card idle fraction.
    pub card_idle_fraction: f64,
}

/// Fidelity of the trailing-update term in the stage loop.
#[derive(Clone, Copy, Debug)]
enum UpdateFidelity {
    /// Closed-form update time on every stage (fast; the default).
    Analytic,
    /// Every `every`-th stage re-times the update on the discrete-event
    /// offload engine; the stages in between scale the closed form by
    /// the last measured DES/analytic ratio. Orders of magnitude slower
    /// than `Analytic`, used to re-score tuning finalists.
    DesSampled {
        /// Sampling cadence in stages (≥ 1; 1 = every stage on the DES).
        every: usize,
    },
}

/// Runs the per-stage simulation.
///
/// # Panics
/// Panics when the per-node share does not fit in host memory — the same
/// constraint that structures Table III.
pub fn simulate_cluster(cfg: &HybridConfig, keep_profiles: bool) -> ClusterResult {
    run_cluster(cfg, keep_profiles, UpdateFidelity::Analytic)
}

/// The calibrated re-scoring path: like [`simulate_cluster`] but every
/// `sample_every`-th stage times its trailing update on the
/// discrete-event offload engine instead of the closed form, with the
/// intermediate stages ratio-corrected. The tuner's coarse search runs
/// thousands of candidates through the analytic path and only the
/// finalists through this one.
///
/// # Panics
/// Panics when the per-node share does not fit in host memory, or when
/// `sample_every == 0`.
pub fn simulate_cluster_calibrated(cfg: &HybridConfig, sample_every: usize) -> ClusterResult {
    assert!(sample_every > 0, "sample_every must be >= 1");
    run_cluster(
        cfg,
        false,
        UpdateFidelity::DesSampled {
            every: sample_every,
        },
    )
}

fn run_cluster(cfg: &HybridConfig, keep_profiles: bool, fidelity: UpdateFidelity) -> ClusterResult {
    assert!(
        cfg.bytes_per_node() <= cfg.host_mem_gib * 1.073741824e9 * 0.95,
        "N = {} does not fit in {} GiB/node on a {}x{} grid",
        cfg.n,
        cfg.host_mem_gib,
        cfg.grid.p,
        cfg.grid.q
    );
    let s = cfg.n.div_ceil(cfg.nb);
    let host = &cfg.offload.host;
    let net = &cfg.net;
    let (p, q) = (cfg.grid.p, cfg.grid.q);
    let host_cores = host.cfg.cores() as f64;

    let mut total = 0.0f64;
    let mut card_busy_total = 0.0f64;
    let mut profiles = Vec::new();
    // DES/analytic ratio from the last sampled stage (DesSampled only).
    let mut des_ratio = 1.0f64;

    for stage in 0..s {
        let nb = cfg.nb.min(cfg.n - stage * cfg.nb);
        // Worst-node local trailing extents (block-cyclic).
        let rows_loc = (0..p)
            .map(|r| cfg.grid.trailing_blocks_row(r, stage + 1, s))
            .max()
            .unwrap_or(0)
            * cfg.nb;
        let cols_loc = (0..q)
            .map(|c| cfg.grid.trailing_blocks_col(c, stage + 1, s))
            .max()
            .unwrap_or(0)
            * cfg.nb;
        let rows_loc = rows_loc.min(cfg.n);
        let cols_loc = cols_loc.min(cfg.n);

        // Panel: distributed down the owner column; pivot search adds a
        // per-column exchange across P.
        let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);
        let panel_cores = host_cores
            - if cfg.cards_per_node > 0 {
                cfg.pack_cores
            } else {
                0.0
            };
        let t_panel = host.panel_time_s(m_panel_loc, nb, panel_cores)
            + if p > 1 {
                nb as f64 * 2.0 * net.latency * (p as f64).log2().ceil()
            } else {
                0.0
            };
        let t_pbcast = net.bcast(cfg.bcast, 8.0 * (m_panel_loc * nb) as f64, q);

        // The three card-exposed steps.
        let t_swap = host.swap_time_s(nb, cols_loc) + net.long_swap(nb, cols_loc, p);
        let t_trsm = host.trsm_time_s(nb, cols_loc, panel_cores);
        let t_ubcast = net.u_bcast(nb, cols_loc, p);
        let three = t_swap + t_trsm + t_ubcast;

        // Trailing update.
        let (t_update, busy) = if rows_loc == 0 || cols_loc == 0 {
            (0.0, 0.0)
        } else if cfg.cards_per_node > 0 {
            let out = match cfg.division {
                WorkDivision::Dynamic => cfg.offload.analytic(
                    rows_loc,
                    cols_loc,
                    cfg.cards_per_node,
                    cfg.host_update_cores,
                ),
                WorkDivision::Static { card_fraction } => cfg.offload.analytic_split(
                    rows_loc,
                    cols_loc,
                    cfg.cards_per_node,
                    cfg.host_update_cores,
                    card_fraction,
                ),
            };
            match fidelity {
                UpdateFidelity::Analytic => (out.time_s, out.card_busy_s),
                UpdateFidelity::DesSampled { every } if stage % every == 0 => {
                    let des = match cfg.division {
                        WorkDivision::Dynamic => cfg.offload.simulate(
                            rows_loc,
                            cols_loc,
                            cfg.cards_per_node,
                            cfg.host_update_cores,
                        ),
                        // The static-split DES models a single card; with
                        // more we keep the closed form un-corrected.
                        WorkDivision::Static { card_fraction } if cfg.cards_per_node == 1 => {
                            cfg.offload.simulate_static_split(
                                rows_loc,
                                cols_loc,
                                cfg.host_update_cores,
                                (6, 6),
                                card_fraction,
                            )
                        }
                        WorkDivision::Static { .. } => out,
                    };
                    des_ratio = des.time_s / out.time_s.max(1e-12);
                    (des.time_s, des.card_busy_s)
                }
                UpdateFidelity::DesSampled { .. } => {
                    (out.time_s * des_ratio, out.card_busy_s * des_ratio)
                }
            }
        } else {
            (
                host.gemm_time_s(rows_loc, cols_loc, nb, host_cores) / cfg.host_lu_efficiency,
                0.0,
            )
        };

        // Look-ahead pre-update: before the next panel can factor, its
        // `nb` columns of the trailing matrix must be brought up to date
        // by the host (a narrow GEMM on the panel cores) — the cost that
        // bounds NB from above once panels stop amortizing it.
        let t_pre = if cfg.cards_per_node > 0 && rows_loc > 0 {
            host.gemm_time_s(rows_loc, nb, cfg.offload.kt, panel_cores)
        } else {
            0.0
        };

        let (stage_time, three_exposed, panel_exposed) = match cfg.lookahead {
            Lookahead::None => (
                t_panel + t_pbcast + three + t_update,
                three,
                t_panel + t_pbcast,
            ),
            Lookahead::Basic => {
                let overlap = t_update.max(t_pre + t_panel + t_pbcast);
                (
                    three + overlap,
                    three,
                    (t_pre + t_panel + t_pbcast - t_update).max(0.0),
                )
            }
            Lookahead::Pipelined => {
                // Only the first strip of the three steps is exposed; the
                // rest hides under the update. The strip machinery costs
                // `pipeline_overhead` of the three steps, paid on the host
                // path where it delays the panel.
                let first_strip = three / cfg.strips as f64;
                let host_path = t_pre + t_panel + t_pbcast + three * cfg.pipeline_overhead;
                let card_path = t_update + first_strip;
                (
                    card_path.max(host_path),
                    first_strip,
                    (host_path - card_path).max(0.0),
                )
            }
        };

        total += stage_time;
        card_busy_total += busy;
        if keep_profiles {
            profiles.push(IterationProfile {
                stage,
                trailing_n: cfg.n - stage * cfg.nb,
                stage_time,
                card_busy: busy,
                panel_exposed,
                three_exposed,
                update: t_update,
            });
        }
    }

    // Final back-substitution: bandwidth bound, negligible but real.
    total += 2.0 * (cfg.n as f64 / p as f64) * (cfg.n as f64 / q as f64) * 8.0
        / (host.cfg.stream_bw_gbs * 1e9);

    let peak = cfg.peak_gflops();
    let report = GigaflopsReport::new(cfg.n, total, peak);
    let card_idle_fraction = if cfg.cards_per_node > 0 && total > 0.0 {
        1.0 - card_busy_total / (total * cfg.cards_per_node as f64)
    } else {
        0.0
    };
    ClusterResult {
        report,
        iterations: profiles,
        card_idle_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: usize, p: usize, q: usize, cards: usize, la: Lookahead, mem: f64) -> ClusterResult {
        let mut cfg = HybridConfig::new(n, ProcessGrid::new(p, q), cards);
        cfg.lookahead = la;
        cfg.host_mem_gib = mem;
        simulate_cluster(&cfg, false)
    }

    #[test]
    fn single_node_single_card_pipelined_near_80_percent() {
        // Table III: pipeline, 1 card, 64GB, N=84K → 1.12 TFLOPS, 79.8%.
        let r = run(84_000, 1, 1, 1, Lookahead::Pipelined, 64.0);
        let eff = r.report.efficiency();
        assert!(
            (eff - 0.798).abs() < 0.025,
            "single-node pipelined eff = {eff:.3} ({:.2} TFLOPS)",
            r.report.gflops / 1e3
        );
    }

    #[test]
    fn pipelining_beats_basic_by_several_points() {
        // Table III: 71.0% → 79.8% on a single node ("pipelined look-ahead
        // improves hybrid HPL efficiency by 7%-9%").
        let basic = run(84_000, 1, 1, 1, Lookahead::Basic, 64.0);
        let pipe = run(84_000, 1, 1, 1, Lookahead::Pipelined, 64.0);
        let gain = pipe.report.efficiency() - basic.report.efficiency();
        assert!(
            (0.05..0.12).contains(&gain),
            "pipelining gain {gain:.3} (basic {:.3}, pipe {:.3})",
            basic.report.efficiency(),
            pipe.report.efficiency()
        );
    }

    #[test]
    fn no_lookahead_is_worst() {
        let none = run(84_000, 1, 1, 1, Lookahead::None, 64.0);
        let basic = run(84_000, 1, 1, 1, Lookahead::Basic, 64.0);
        assert!(none.report.efficiency() < basic.report.efficiency());
    }

    #[test]
    fn hundred_node_run_matches_headline() {
        // Table III: pipeline, 1 card, N=825K, 10×10 → 107 TFLOPS, 76.1%.
        let r = run(825_000, 10, 10, 1, Lookahead::Pipelined, 64.0);
        let tf = r.report.gflops / 1e3;
        assert!(
            (tf - 107.0).abs() < 5.0,
            "100-node run = {tf:.1} TFLOPS ({:.3})",
            r.report.efficiency()
        );
        assert!((r.report.efficiency() - 0.761).abs() < 0.03);
    }

    #[test]
    fn multi_node_degrades_by_a_few_percent() {
        // "performance degradation of multi-node implementation, compared
        // to a single node is 4%".
        let single = run(84_000, 1, 1, 1, Lookahead::Pipelined, 64.0);
        let quad = run(168_000, 2, 2, 1, Lookahead::Pipelined, 64.0);
        let drop = single.report.efficiency() - quad.report.efficiency();
        assert!(
            (0.0..0.08).contains(&drop),
            "multi-node drop {drop:.3} (1-node {:.3}, 4-node {:.3})",
            single.report.efficiency(),
            quad.report.efficiency()
        );
    }

    #[test]
    fn second_card_costs_efficiency() {
        // Table III: "the efficiency loss due to a second Knights Corner
        // card is 4.2%" (84K: 79.8% → 76.6%).
        let one = run(84_000, 1, 1, 1, Lookahead::Pipelined, 64.0);
        let two = run(84_000, 1, 1, 2, Lookahead::Pipelined, 64.0);
        let loss = one.report.efficiency() - two.report.efficiency();
        assert!(
            (0.01..0.08).contains(&loss),
            "dual-card loss {loss:.3} (1 card {:.3}, 2 cards {:.3})",
            one.report.efficiency(),
            two.report.efficiency()
        );
    }

    #[test]
    fn more_memory_lifts_dual_card_efficiency() {
        // Table III fourth section: doubling node memory to 128 GB lets
        // N grow to 242K on 2×2 and lifts efficiency.
        let small = run(166_000, 2, 2, 2, Lookahead::Pipelined, 64.0);
        let big = run(242_000, 2, 2, 2, Lookahead::Pipelined, 128.0);
        assert!(big.report.efficiency() > small.report.efficiency());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn memory_gate_enforced() {
        let _ = run(242_000, 2, 2, 2, Lookahead::Pipelined, 64.0);
    }

    #[test]
    fn cpu_only_matches_mkl_results() {
        // Table III first section: Sandy Bridge only, N=84K → 86.4% on a
        // single node; N=168K on 2×2 → 82.8%.
        let one = run(84_000, 1, 1, 0, Lookahead::Basic, 64.0);
        assert!(
            (one.report.efficiency() - 0.864).abs() < 0.03,
            "CPU-only single node {:.3}",
            one.report.efficiency()
        );
        let four = run(168_000, 2, 2, 0, Lookahead::Basic, 64.0);
        assert!(
            (four.report.efficiency() - 0.828).abs() < 0.035,
            "CPU-only 2x2 {:.3}",
            four.report.efficiency()
        );
        assert!(four.report.efficiency() < one.report.efficiency());
    }

    #[test]
    fn calibrated_rescoring_tracks_analytic() {
        let cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
        let fast = simulate_cluster(&cfg, false);
        let slow = simulate_cluster_calibrated(&cfg, 8);
        let rel = (slow.report.gflops - fast.report.gflops).abs() / fast.report.gflops;
        assert!(
            rel < 0.10,
            "calibrated {:.0} vs analytic {:.0} GFLOPS ({rel:.3})",
            slow.report.gflops,
            fast.report.gflops
        );
        // Deterministic: same inputs, same bits.
        let again = simulate_cluster_calibrated(&cfg, 8);
        assert_eq!(slow.report.time_s.to_bits(), again.report.time_s.to_bits());
    }

    #[test]
    fn static_division_never_beats_dynamic_stealing() {
        let mut cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
        let dynamic = simulate_cluster(&cfg, false);
        let mut best_static = 0.0f64;
        for f in [0.6, 0.8, 0.85, 0.9, 1.0] {
            cfg.division = WorkDivision::Static { card_fraction: f };
            let s = simulate_cluster(&cfg, false);
            best_static = best_static.max(s.report.gflops);
            assert!(
                s.report.gflops <= dynamic.report.gflops * 1.001,
                "static f={f} beat dynamic: {} vs {}",
                s.report.gflops,
                dynamic.report.gflops
            );
        }
        // The best static fraction lands near the dynamic equilibrium.
        assert!(best_static > dynamic.report.gflops * 0.90);
    }

    #[test]
    fn bcast_scheme_selects_ring_for_big_panels() {
        // On a wide grid with HPL-sized panels, the pipelined ring should
        // beat the store-and-forward binomial tree.
        let mut cfg = HybridConfig::new(330_000, ProcessGrid::new(4, 4), 1);
        let ring = simulate_cluster(&cfg, false);
        cfg.bcast = phi_fabric::BcastScheme::Binomial;
        let binomial = simulate_cluster(&cfg, false);
        assert!(ring.report.gflops >= binomial.report.gflops);
    }

    #[test]
    fn pipelined_idle_small_basic_idle_large() {
        // Fig. 9: basic ≈13% of iteration in the three steps; pipelined
        // < 3% early on.
        let mut cfg = HybridConfig::new(84_000, ProcessGrid::new(2, 2), 2);
        cfg.lookahead = Lookahead::Basic;
        let basic = simulate_cluster(&cfg, true);
        cfg.lookahead = Lookahead::Pipelined;
        let pipe = simulate_cluster(&cfg, true);

        // Average the early (large-matrix) third of the iterations.
        let early = |r: &ClusterResult| {
            let k = r.iterations.len() / 3;
            let exp: f64 = r.iterations[..k].iter().map(|i| i.three_exposed).sum();
            let tot: f64 = r.iterations[..k].iter().map(|i| i.stage_time).sum();
            exp / tot
        };
        let fb = early(&basic);
        let fp = early(&pipe);
        // The paper reports the card "idle at least 13% of the time" under
        // basic look-ahead; in our model the three steps expose ~24% of
        // the early iterations on this configuration.
        assert!(
            (0.10..0.30).contains(&fb),
            "basic three-step exposure {fb:.3}"
        );
        assert!(fp < 0.030, "pipelined exposure {fp:.3}");
        assert!(fb > 4.0 * fp, "pipelining must collapse the exposure");
    }
}
