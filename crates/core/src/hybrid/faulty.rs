//! Fault-tolerant hybrid cluster execution under an injected
//! [`FaultPlan`].
//!
//! [`simulate_cluster_faulty`] mirrors [`super::simulate_cluster`]'s
//! per-stage loop, but before each stage it samples the plan's aggregate
//! [`Effects`] over the stage's time window and perturbs the calibrated
//! machine models accordingly:
//!
//! * **Link degradation / latency jitter** — the stage's
//!   [`NetModel`](phi_fabric::NetModel) is replaced by
//!   [`NetModel::degraded`](phi_fabric::NetModel::degraded), slowing
//!   the panel broadcast, long swap and `U` broadcast.
//! * **PCIe CRC-retry storms** — the offload model's
//!   [`PcieConfig`](phi_fabric::PcieConfig) is replaced by
//!   [`PcieConfig::with_crc_stall`](phi_fabric::PcieConfig::with_crc_stall),
//!   with the per-DMA stall amortized into a bandwidth derate at the
//!   strip-transfer cadence.
//! * **Stragglers** — the card's [`KncChip`](phi_knc::KncChip) is
//!   throttled through
//!   [`KncChip::with_straggler`](phi_knc::KncChip::with_straggler),
//!   dragging the trailing-update rate.
//! * **Card death** — permanent. Deaths take effect at the next panel
//!   boundary: the run pays a recovery cost (checkpoint restore, or
//!   replay of the in-flight stage when checkpointing is off, plus the
//!   §V re-division of work), then continues with fewer cards. When the
//!   last card dies the update falls back to the host-only branch — the
//!   paper's dynamic work-division rebalance with the card share forced
//!   to zero — and the factorization still completes.
//! * **Host-rank death** — permanent, also applied at the next panel
//!   boundary. Recovery remapping follows [`FtPolicy::remap`]:
//!
//!   * [`RemapStrategy::Patch`] (the default) is locality-preserving —
//!     survivors keep their block ownership and only the dead ranks'
//!     block-cyclic share of the trailing matrix moves
//!     ([`ProcessGrid::patch_remap`]), roughly a `1/(P·Q)` fraction of
//!     what a reshape would ship. The grid keeps its shape, so the
//!     surviving ranks absorb the dead coordinates' work as a per-stage
//!     [`ProcessGrid::patch_imbalance`] factor on the trailing update.
//!     When deaths exceed the patchable budget (more than `size/8`
//!     ranks down, mirroring the fallback grid's idle allowance) the
//!     run degrades to a wholesale reshape from that boundary on.
//!   * [`RemapStrategy::Wholesale`] re-forms a (possibly smaller)
//!     [`ProcessGrid::fallback_grid`] and redistributes the whole
//!     trailing matrix to the new block-cyclic ownership.
//!
//!   Either way the dead ranks' share of the factored state is restored
//!   from panel checkpoints streamed over the fabric (or recomputed
//!   outright when checkpointing is off) and the factorization
//!   continues; the blocks shipped are reported as
//!   [`FaultSummary::blocks_moved`].
//!
//! Panel-granular checkpointing ([`FtPolicy::checkpoint_panels`]) adds
//! its write cost to every stage; that is the premium paid for cheap
//! recovery.
//!
//! **Determinism and the healthy identity.** Every perturbation reduces
//! to `× 1.0` / `+ 0.0` under [`Effects::healthy`], so a run under
//! [`FaultPlan::none`] (with [`FtPolicy::none`]) reproduces the
//! unfaulted [`super::simulate_cluster`] *bit-identically* — and any
//! plan replays bit-identically from its seed. Both properties are
//! locked by tests.

use super::{
    simulate_cluster, ClusterResult, HybridConfig, IterationProfile, Lookahead, WorkDivision,
};
use crate::report::{FaultSummary, GigaflopsReport};
use phi_des::{Kind, Trace};
use phi_fabric::{ProcessGrid, RemapStrategy, ScheduleShape};
use phi_faults::{Effects, FaultPlan};

/// Fault-tolerance policy of the run: what the cluster pays up front
/// (checkpoints) and what recovery costs when a card dies.
#[derive(Clone, Copy, Debug)]
pub struct FtPolicy {
    /// Write a checkpoint of every factored panel (plus pivots) so a
    /// card death only loses the in-flight stage's update, not the
    /// whole factorization state.
    pub checkpoint_panels: bool,
    /// Bandwidth at which checkpoints are written, bytes/s (host memory
    /// copy to a retained region; well above PCIe, below STREAM).
    pub checkpoint_bw: f64,
    /// Fixed cost of one §V dynamic work re-division after a card loss
    /// (draining queues, re-partitioning tiles, re-arming DMA).
    pub rebalance_s: f64,
    /// Per-link bandwidth at which the trailing matrix is redistributed
    /// after a host death, bytes/s. Survivors pull in parallel, so the
    /// aggregate rate is `survivors ×` this.
    pub redistribution_bw: f64,
    /// How surviving ranks re-own the dead ranks' blocks after a host
    /// death: a locality-preserving patch (default) or a wholesale
    /// reshape onto a fallback grid.
    pub remap: RemapStrategy,
    /// Cumulative host deaths the patch remap absorbs before the
    /// survivors reshape wholesale. `None` (the default) keeps the
    /// historical `grid.size() / 8` allowance — the same 1/8 idle
    /// fraction the fallback grid tolerates; fleet campaigns sweep
    /// explicit budgets to find the threshold maximizing expected
    /// throughput.
    pub death_budget: Option<usize>,
}

impl FtPolicy {
    /// No checkpointing: recovery must replay the lost stage.
    pub fn none() -> Self {
        Self {
            checkpoint_panels: false,
            checkpoint_bw: 8e9,
            rebalance_s: 0.25,
            redistribution_bw: 6.8e9,
            remap: RemapStrategy::default(),
            death_budget: None,
        }
    }

    /// The same policy with the given recovery remapping strategy.
    pub fn with_remap(mut self, remap: RemapStrategy) -> Self {
        self.remap = remap;
        self
    }

    /// The same policy with an explicit patch death budget.
    pub fn with_death_budget(mut self, budget: usize) -> Self {
        self.death_budget = Some(budget);
        self
    }
}

impl Default for FtPolicy {
    /// Panel checkpointing on, 8 GB/s checkpoint stream, 250 ms
    /// re-division.
    fn default() -> Self {
        Self {
            checkpoint_panels: true,
            ..Self::none()
        }
    }
}

/// Outcome of a fault-injected cluster run.
#[derive(Clone, Debug)]
pub struct FaultyClusterResult {
    /// The degraded run; `result.report.faults` carries the summary.
    pub result: ClusterResult,
    /// Span trace including [`Kind::Fault`] windows and
    /// [`Kind::Recovery`] work (lane 0 host, lane 1 card, lane 2
    /// faults).
    pub trace: Trace,
}

impl FaultyClusterResult {
    /// A replay fingerprint over the plan and the run's exact timing
    /// bits: two runs are the same execution iff these are equal.
    pub fn run_fingerprint(&self) -> u64 {
        let r = &self.result.report;
        let mut h = r
            .faults
            .map(|f| f.plan_fingerprint)
            .unwrap_or(0xcbf29ce484222325);
        for x in [r.time_s.to_bits(), r.gflops.to_bits()] {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }
}

/// Everything a stage costs, under a given card count and fault state.
struct StageTimes {
    stage_time: f64,
    busy: f64,
    update: f64,
    three_exposed: f64,
    panel_exposed: f64,
}

/// One stage of the hybrid loop — the same arithmetic as
/// [`super::simulate_cluster`], parameterized by the surviving card
/// count, the stage's aggregate fault effects, and the patch-remap
/// load imbalance (survivors carrying dead coordinates' trailing
/// work). With `cards_avail == cfg.cards_per_node`, healthy effects
/// and `imbalance == 1.0` this is bit-identical to the unfaulted stage
/// (IEEE-754 multiplication by 1.0 is exact).
fn stage_times(
    cfg: &HybridConfig,
    stage: usize,
    s: usize,
    cards_avail: usize,
    eff: &Effects,
    imbalance: f64,
) -> StageTimes {
    let host = &cfg.offload.host;
    let (p, q) = (cfg.grid.p, cfg.grid.q);
    let host_cores = host.cfg.cores() as f64;
    let nb = cfg.nb.min(cfg.n - stage * cfg.nb);

    let net = cfg.net.degraded(eff.net_bw_factor, eff.extra_latency_s);
    // Perturb the offload model: CRC stalls amortized at the strip
    // cadence, stragglers dragging the card clock.
    let mut off = cfg.offload;
    let typical_xfer_s = 8.0 * (cfg.nb * off.kt) as f64 / off.pcie.effective_bw;
    let retry_fraction = (eff.pcie_stall_s / typical_xfer_s).min(0.9);
    off.pcie = off.pcie.with_crc_stall(eff.pcie_stall_s, retry_fraction);
    off.card.chip = off.card.chip.with_straggler(1.0, eff.compute_slowdown);

    let rows_loc = (0..p)
        .map(|r| cfg.grid.trailing_blocks_row(r, stage + 1, s))
        .max()
        .unwrap_or(0)
        * cfg.nb;
    let cols_loc = (0..q)
        .map(|c| cfg.grid.trailing_blocks_col(c, stage + 1, s))
        .max()
        .unwrap_or(0)
        * cfg.nb;
    let rows_loc = rows_loc.min(cfg.n);
    let cols_loc = cols_loc.min(cfg.n);

    let m_panel_loc = ((cfg.n - stage * cfg.nb) / p).max(nb);
    let panel_cores = host_cores - if cards_avail > 0 { cfg.pack_cores } else { 0.0 };
    let t_panel = host.panel_time_s(m_panel_loc, nb, panel_cores)
        + if p > 1 {
            nb as f64 * 2.0 * net.latency * (p as f64).log2().ceil()
        } else {
            0.0
        };
    let t_pbcast = net.bcast(cfg.bcast, 8.0 * (m_panel_loc * nb) as f64, q);

    let t_swap = host.swap_time_s(nb, cols_loc) + net.long_swap(nb, cols_loc, p);
    let t_trsm = host.trsm_time_s(nb, cols_loc, panel_cores);
    let t_ubcast = net.u_bcast(nb, cols_loc, p);
    let three = t_swap + t_trsm + t_ubcast;

    let (t_update, busy) = if rows_loc == 0 || cols_loc == 0 {
        (0.0, 0.0)
    } else if cards_avail > 0 {
        let out = match cfg.division {
            WorkDivision::Dynamic => {
                off.analytic(rows_loc, cols_loc, cards_avail, cfg.host_update_cores)
            }
            WorkDivision::Static { card_fraction } => off.analytic_split(
                rows_loc,
                cols_loc,
                cards_avail,
                cfg.host_update_cores,
                card_fraction,
            ),
        };
        (out.time_s, out.card_busy_s)
    } else {
        // §V rebalance with the card share forced to zero: the host's
        // full core set takes the whole trailing update.
        (
            host.gemm_time_s(rows_loc, cols_loc, nb, host_cores) / cfg.host_lu_efficiency,
            0.0,
        )
    };
    // Patched-out ranks: each survivor shoulders `imbalance ×` its own
    // trailing share (and its card stays busy proportionally longer).
    let (t_update, busy) = (t_update * imbalance, busy * imbalance);

    // Look-ahead pre-update (mirrors `super::run_cluster`).
    let t_pre = if cards_avail > 0 && rows_loc > 0 {
        host.gemm_time_s(rows_loc, nb, off.kt, panel_cores)
    } else {
        0.0
    };

    let (stage_time, three_exposed, panel_exposed) = match cfg.lookahead {
        Lookahead::None => (
            t_panel + t_pbcast + three + t_update,
            three,
            t_panel + t_pbcast,
        ),
        Lookahead::Basic => {
            let overlap = t_update.max(t_pre + t_panel + t_pbcast);
            (
                three + overlap,
                three,
                (t_pre + t_panel + t_pbcast - t_update).max(0.0),
            )
        }
        Lookahead::Pipelined => {
            let first_strip = three / cfg.strips as f64;
            let host_path = t_pre + t_panel + t_pbcast + three * cfg.pipeline_overhead;
            let card_path = t_update + first_strip;
            (
                card_path.max(host_path),
                first_strip,
                (host_path - card_path).max(0.0),
            )
        }
    };

    StageTimes {
        stage_time,
        busy,
        update: t_update,
        three_exposed,
        panel_exposed,
    }
}

/// Runs the hybrid cluster simulation under `plan`, tolerating every
/// fault the plan throws at it (the factorization always completes —
/// at worst on the hosts alone).
///
/// # Panics
/// Panics when the per-node share does not fit in host memory, exactly
/// as [`super::simulate_cluster`] does.
pub fn simulate_cluster_faulty(
    cfg: &HybridConfig,
    plan: &FaultPlan,
    policy: &FtPolicy,
    keep_profiles: bool,
) -> FaultyClusterResult {
    assert!(
        cfg.bytes_per_node() <= cfg.host_mem_gib * 1.073741824e9 * 0.95,
        "N = {} does not fit in {} GiB/node on a {}x{} grid",
        cfg.n,
        cfg.host_mem_gib,
        cfg.grid.p,
        cfg.grid.q
    );
    let s = cfg.n.div_ceil(cfg.nb);
    let host = &cfg.offload.host;

    let mut trace = Trace::default();
    trace.enable();

    // The live configuration: host deaths remap `cur.grid` mid-run, so
    // every stage prices against the grid the survivors actually form.
    // With no host deaths `cur` stays bit-identical to `cfg`.
    let mut cur = *cfg;

    let mut total = 0.0f64;
    let mut card_busy_total = 0.0f64;
    let mut profiles = Vec::new();

    let mut deaths_applied = 0usize;
    let mut hosts_applied = 0usize;
    let mut degraded_stages = 0usize;
    let mut checkpoint_s = 0.0f64;
    let mut recovery_s = 0.0f64;
    let mut prev_update = 0.0f64;
    let mut weighted_cards = 0.0f64;
    let mut blocks_moved = 0usize;
    // Ranks patched out so far (grid shape kept), and whether deaths
    // ever forced a wholesale reshape onto a fallback grid.
    let mut patched_dead: Vec<usize> = Vec::new();
    let mut reshaped = false;

    for stage in 0..s {
        let nb = cfg.nb.min(cfg.n - stage * cfg.nb);

        // Deaths take effect at panel boundaries: a card that died during
        // the previous stage is mourned (recovery paid) here.
        let deaths_now = plan.effects_at(total).cards_lost.min(cfg.cards_per_node);
        if deaths_now > deaths_applied {
            let newly_dead = deaths_now - deaths_applied;
            let restore = if policy.checkpoint_panels {
                // Reload factorization state from the panel checkpoints.
                8.0 * ((cfg.n / cur.grid.p).max(nb) * nb) as f64 / policy.checkpoint_bw
            } else {
                // No checkpoint: the in-flight stage's update replays.
                prev_update
            };
            let cost = newly_dead as f64 * (policy.rebalance_s + restore);
            trace.record(2, total, total + cost, Kind::Recovery);
            total += cost;
            recovery_s += cost;
            deaths_applied = deaths_now;
        }
        let cards_avail = cfg.cards_per_node - deaths_applied;

        // Host-rank deaths, also at panel boundaries: restore the dead
        // ranks' factored state over the fabric (or recompute it without
        // checkpoints), then re-own their trailing blocks — patched in
        // place or redistributed wholesale to a fallback grid, per
        // `policy.remap`.
        let hosts_now = plan
            .effects_at(total)
            .hosts_lost
            .min(cfg.grid.size().saturating_sub(1));
        if hosts_now > hosts_applied {
            let newly = hosts_now - hosts_applied;
            let survivors = cfg.grid.size() - hosts_now;
            let factored_cols = (stage * cfg.nb).min(cfg.n);
            let restore = if policy.checkpoint_panels {
                // The dead ranks' block-cyclic share of the factored
                // state streams from checkpoint replicas over the fabric.
                8.0 * factored_cols as f64 * cfg.n as f64 * newly as f64
                    / cfg.grid.size() as f64
                    / cfg.net.bandwidth
            } else {
                // No checkpoint: the dead ranks' share of everything done
                // so far is recomputed by the survivors.
                total * newly as f64 / cfg.grid.size() as f64
            };
            // The patch stays viable while the cumulative death count
            // fits the budget — by default the same 1/8 idle allowance
            // the fallback grid tolerates; past that (or when reshaped
            // already) survivors reshape wholesale.
            let budget = policy.death_budget.unwrap_or(cfg.grid.size() / 8);
            let patchable =
                policy.remap == RemapStrategy::Patch && !reshaped && hosts_now <= budget;
            let redistribution = if patchable {
                // Locality-preserving patch: only the newly dead ranks'
                // block-cyclic trailing share moves; everyone else's
                // blocks stay put.
                let dead_ranks = plan.host_death_ranks(cfg.grid.size());
                let mut moved_elems = 0.0f64;
                for &rank in &dead_ranks[hosts_applied..hosts_now] {
                    if patched_dead.contains(&rank) {
                        continue;
                    }
                    let remap = cfg.grid.patch_remap(rank);
                    blocks_moved += remap.moved_trailing_blocks(stage, s);
                    moved_elems += remap.moved_trailing_elements(stage, s, cfg.nb, cfg.n);
                    patched_dead.push(rank);
                }
                8.0 * moved_elems / (survivors as f64 * policy.redistribution_bw)
            } else {
                // Wholesale reshape: the whole trailing matrix moves to
                // the fallback grid's block-cyclic ownership.
                reshaped = true;
                blocks_moved += phi_fabric::PatchRemap::wholesale_trailing_blocks(stage, s);
                cur.grid = ProcessGrid::fallback_grid(survivors);
                let trailing = (cfg.n - factored_cols) as f64;
                8.0 * trailing * trailing / (survivors as f64 * policy.redistribution_bw)
            };
            let cost = newly as f64 * policy.rebalance_s + restore + redistribution;
            trace.record(2, total, total + cost, Kind::Recovery);
            total += cost;
            recovery_s += cost;
            hosts_applied = hosts_now;
        }
        if cards_avail < cfg.cards_per_node || hosts_applied > 0 {
            degraded_stages += 1;
        }
        // Patched (not reshaped) grids run load-imbalanced: survivors
        // carry the dead coordinates' trailing work. Exactly 1.0 with
        // no patched deaths.
        let imbalance = if reshaped {
            1.0
        } else {
            cfg.grid.patch_imbalance(patched_dead.len())
        };

        // Two-pass effects sampling: estimate the stage with healthy
        // models, then average the plan's transient windows over that
        // estimate. Deterministic, and exact when no window straddles
        // the stage boundary.
        let est = stage_times(&cur, stage, s, cards_avail, &Effects::healthy(), imbalance);
        let eff = plan.effects_over(total, total + est.stage_time);
        let st = stage_times(&cur, stage, s, cards_avail, &eff, imbalance);

        trace.record(
            0,
            total,
            total + st.panel_exposed + st.three_exposed,
            Kind::Panel,
        );
        trace.record(
            1,
            total + (st.stage_time - st.update).max(0.0),
            total + st.stage_time,
            Kind::Gemm,
        );

        total += st.stage_time;
        card_busy_total += st.busy;
        weighted_cards += st.stage_time * cards_avail as f64;
        prev_update = st.update;

        if policy.checkpoint_panels {
            // Panel-granular checkpoint: the factored m × nb panel and
            // its pivots are copied to a retained host region before the
            // stage retires.
            let m_panel_loc = ((cfg.n - stage * cfg.nb) / cur.grid.p).max(nb);
            let ckpt = (8.0 * (m_panel_loc * nb) as f64 + 8.0 * nb as f64) / policy.checkpoint_bw;
            trace.record(0, total, total + ckpt, Kind::Comm);
            total += ckpt;
            checkpoint_s += ckpt;
        }

        if keep_profiles {
            profiles.push(IterationProfile {
                stage,
                trailing_n: cfg.n - stage * cfg.nb,
                stage_time: st.stage_time,
                card_busy: st.busy,
                panel_exposed: st.panel_exposed,
                three_exposed: st.three_exposed,
                update: st.update,
            });
        }
    }

    total += 2.0 * (cfg.n as f64 / cur.grid.p as f64) * (cfg.n as f64 / cur.grid.q as f64) * 8.0
        / (host.cfg.stream_bw_gbs * 1e9);

    // Fault windows on the fault lane, clipped to the run.
    for ev in plan.events() {
        let end = if ev.kind.is_permanent() {
            total
        } else {
            (ev.at_s + ev.kind.duration_s()).min(total)
        };
        if ev.at_s < total {
            trace.record(2, ev.at_s, end, Kind::Fault);
        }
    }

    let healthy = simulate_cluster(cfg, false);
    let peak = cfg.peak_gflops();
    let report = GigaflopsReport::new(cfg.n, total, peak).with_faults(FaultSummary {
        plan_fingerprint: plan.fingerprint(),
        events: plan.events().len(),
        cards_lost: deaths_applied,
        hosts_lost: hosts_applied,
        fallback_grid: reshaped.then_some((cur.grid.p, cur.grid.q)),
        remap: policy.remap,
        blocks_moved,
        checkpoint_s,
        recovery_s,
        degraded_stages,
        healthy_time_s: healthy.report.time_s,
        healthy_gflops: healthy.report.gflops,
    });
    // Idle accounting against the cards actually alive per stage.
    let card_idle_fraction = if cfg.cards_per_node > 0 && weighted_cards > 0.0 {
        (1.0 - card_busy_total / weighted_cards).max(0.0)
    } else {
        0.0
    };
    FaultyClusterResult {
        result: ClusterResult {
            report,
            iterations: profiles,
            card_idle_fraction,
        },
        trace,
    }
}

/// Every communication-grid regime `simulate_cluster_faulty` can route
/// through under `plan` and `policy`, in the order entered: the healthy
/// grid, then one [`ScheduleShape`] per applied host death — patched
/// shapes accumulate dead ranks on the original grid; once the death
/// budget is blown (or under [`RemapStrategy::Wholesale`]) the shapes
/// switch to fallback grids that shrink with the survivor count.
///
/// Deaths are replayed one per boundary — the finest batching the
/// simulator can experience — so verifying every shape returned here
/// proves any coarser batching safe. This is the contract the
/// `schedule-lint` gate checks: each shape's broadcast/swap plans must
/// verify deadlock-free before the simulator's analytic times mean
/// anything.
pub fn recovery_regimes(
    cfg: &HybridConfig,
    plan: &FaultPlan,
    policy: &FtPolicy,
) -> Vec<ScheduleShape> {
    let size = cfg.grid.size();
    let budget = policy.death_budget.unwrap_or(size / 8);
    let mut shapes = vec![ScheduleShape::healthy(cfg.grid)];
    let mut patched_dead: Vec<usize> = Vec::new();
    let mut reshaped = false;
    let mut applied = 0usize;
    for rank in plan.host_death_ranks(size) {
        // The simulator never applies more deaths than leave a survivor.
        if applied + 1 > size.saturating_sub(1) {
            break;
        }
        let hosts_now = applied + 1;
        let survivors = size - hosts_now;
        let patchable = policy.remap == RemapStrategy::Patch && !reshaped && hosts_now <= budget;
        let shape = if patchable {
            if !patched_dead.contains(&rank) {
                patched_dead.push(rank);
            }
            ScheduleShape {
                grid: cfg.grid,
                dead_ranks: patched_dead.clone(),
                reshaped: false,
            }
        } else {
            reshaped = true;
            ScheduleShape {
                grid: ProcessGrid::fallback_grid(survivors),
                dead_ranks: Vec::new(),
                reshaped: true,
            }
        };
        if shapes.last() != Some(&shape) {
            shapes.push(shape);
        }
        applied = hosts_now;
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_faults::FaultKind;

    fn cfg(n: usize, p: usize, q: usize, cards: usize) -> HybridConfig {
        HybridConfig::new(n, ProcessGrid::new(p, q), cards)
    }

    #[test]
    fn zero_fault_run_is_bit_identical_to_baseline() {
        for (n, p, q, cards) in [(84_000, 1, 1, 1), (168_000, 2, 2, 2), (84_000, 1, 1, 0)] {
            let c = cfg(n, p, q, cards);
            let base = simulate_cluster(&c, false);
            let ft = simulate_cluster_faulty(&c, &FaultPlan::none(), &FtPolicy::none(), false);
            assert_eq!(
                ft.result.report.time_s.to_bits(),
                base.report.time_s.to_bits(),
                "time diverged on {n}/{p}x{q}/{cards}"
            );
            assert_eq!(
                ft.result.report.gflops.to_bits(),
                base.report.gflops.to_bits()
            );
            let f = ft.result.report.faults.unwrap();
            assert_eq!((f.events, f.cards_lost, f.degraded_stages), (0, 0, 0));
            assert_eq!(f.checkpoint_s, 0.0);
            assert_eq!(f.recovery_s, 0.0);
        }
    }

    #[test]
    fn card_death_mid_run_completes_degraded() {
        // Kill the only card a third of the way through: the run must
        // complete (host-only fallback) and cost real time.
        let c = cfg(84_000, 1, 1, 1);
        let healthy = simulate_cluster(&c, false);
        let t_kill = healthy.report.time_s / 3.0;
        let plan = FaultPlan::none().with_event(t_kill, FaultKind::CardDeath { card: 0 });
        let ft = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), true);
        let r = &ft.result.report;
        let f = r.faults.unwrap();
        assert_eq!(f.cards_lost, 1);
        assert!(f.degraded_stages > 0, "post-death stages must be degraded");
        assert!(f.recovery_s > 0.0);
        assert!(
            r.time_s > 1.5 * healthy.report.time_s,
            "host-only tail must hurt: {:.1}s vs healthy {:.1}s",
            r.time_s,
            healthy.report.time_s
        );
        // But it finishes, and far faster than an all-host run from t=0
        // would relative to never having had a card... sanity: efficiency
        // is positive and below healthy.
        assert!(r.efficiency() > 0.0 && r.efficiency() < healthy.report.efficiency());
        // The trace carries fault and recovery spans.
        let kinds: Vec<Kind> = ft.trace.spans().iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&Kind::Fault));
        assert!(kinds.contains(&Kind::Recovery));
    }

    #[test]
    fn transient_degradation_costs_less_than_death() {
        let c = cfg(168_000, 2, 2, 1);
        let healthy = simulate_cluster(&c, false);
        let mid = healthy.report.time_s / 2.0;
        let transient = FaultPlan::none().with_event(
            mid,
            FaultKind::LinkDegrade {
                factor: 0.3,
                duration_s: healthy.report.time_s / 4.0,
            },
        );
        let lethal = FaultPlan::none().with_event(mid, FaultKind::CardDeath { card: 0 });
        let pol = FtPolicy::none();
        let t_trans = simulate_cluster_faulty(&c, &transient, &pol, false)
            .result
            .report
            .time_s;
        let t_death = simulate_cluster_faulty(&c, &lethal, &pol, false)
            .result
            .report
            .time_s;
        assert!(t_trans > healthy.report.time_s, "degradation costs time");
        assert!(t_death > t_trans, "death costs more than a flapping link");
    }

    #[test]
    fn straggler_and_crc_storm_slow_the_update() {
        let c = cfg(84_000, 1, 1, 1);
        let healthy = simulate_cluster(&c, false);
        let plan = FaultPlan::none()
            .with_event(
                0.0,
                FaultKind::Straggler {
                    core_fraction: 0.25,
                    slowdown: 2.0,
                    duration_s: healthy.report.time_s * 2.0,
                },
            )
            .with_event(
                0.0,
                FaultKind::PcieCrcStorm {
                    stall_s: 100e-6,
                    duration_s: healthy.report.time_s * 2.0,
                },
            );
        let ft = simulate_cluster_faulty(&c, &plan, &FtPolicy::none(), false);
        assert!(ft.result.report.time_s > healthy.report.time_s);
        assert_eq!(ft.result.report.faults.unwrap().cards_lost, 0);
    }

    #[test]
    fn checkpointing_costs_time_but_caps_recovery() {
        let c = cfg(84_000, 1, 1, 1);
        let healthy = simulate_cluster(&c, false);
        let t_kill = healthy.report.time_s * 0.6;
        let plan = FaultPlan::none().with_event(t_kill, FaultKind::CardDeath { card: 0 });
        let with_ck = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        let without = simulate_cluster_faulty(&c, &plan, &FtPolicy::none(), false);
        let f_ck = with_ck.result.report.faults.unwrap();
        let f_no = without.result.report.faults.unwrap();
        assert!(f_ck.checkpoint_s > 0.0 && f_no.checkpoint_s == 0.0);
        // Restoring a checkpoint is cheaper than replaying the lost stage.
        assert!(f_ck.recovery_s < f_no.recovery_s);
    }

    #[test]
    fn host_death_remaps_grid_and_completes() {
        // Kill one of four hosts a third of the way through: the three
        // survivors re-form a 1×3 grid and finish the factorization.
        let c = cfg(168_000, 2, 2, 1);
        let healthy = simulate_cluster(&c, false);
        let t_kill = healthy.report.time_s / 3.0;
        let plan = FaultPlan::none().with_event(t_kill, FaultKind::HostDeath { rank: 3 });
        let ft = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        let r = &ft.result.report;
        let f = r.faults.unwrap();
        assert_eq!(f.hosts_lost, 1);
        assert_eq!(f.cards_lost, 0);
        assert_eq!(f.fallback_grid, Some((1, 3)));
        assert!(f.degraded_stages > 0);
        assert!(f.recovery_s > 0.0);
        assert!(
            r.time_s > healthy.report.time_s,
            "losing a quarter of the cluster must cost time"
        );
        assert!(r.efficiency() > 0.0 && r.efficiency() < healthy.report.efficiency());
        let kinds: Vec<Kind> = ft.trace.spans().iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&Kind::Recovery));
    }

    #[test]
    fn patch_remap_keeps_grid_and_moves_a_fraction() {
        // 4×8 grid (size/8 = 4): one host death patches in place.
        let c = cfg(240_000, 4, 8, 1);
        let healthy = simulate_cluster(&c, false);
        let t_kill = healthy.report.time_s / 3.0;
        let plan = FaultPlan::none().with_event(t_kill, FaultKind::HostDeath { rank: 5 });
        let patch = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        let whole = simulate_cluster_faulty(
            &c,
            &plan,
            &FtPolicy::default().with_remap(RemapStrategy::Wholesale),
            false,
        );
        let fp = patch.result.report.faults.unwrap();
        let fw = whole.result.report.faults.unwrap();
        assert_eq!(fp.remap, RemapStrategy::Patch);
        assert_eq!(fw.remap, RemapStrategy::Wholesale);
        // Patch keeps the 4×8 grid; wholesale reshapes to 31 survivors.
        assert_eq!(fp.fallback_grid, None);
        assert!(fw.fallback_grid.is_some());
        // Redistribution volume shrinks by roughly the grid size.
        assert!(fp.blocks_moved > 0);
        assert!(
            fw.blocks_moved >= 10 * fp.blocks_moved,
            "patch moved {} vs wholesale {}",
            fp.blocks_moved,
            fw.blocks_moved
        );
        // And the patched run recovers no slower than the reshape.
        assert!(fp.recovery_s <= fw.recovery_s);
        // Both still cost time versus healthy, and both complete.
        assert!(patch.result.report.time_s > healthy.report.time_s);
        assert!(whole.result.report.time_s > healthy.report.time_s);
    }

    #[test]
    fn patch_budget_exhaustion_degrades_to_wholesale() {
        // 4×8 grid patches at most 4 dead ranks; a fifth death forces
        // the wholesale reshape.
        let c = cfg(240_000, 4, 8, 1);
        let healthy = simulate_cluster(&c, false);
        let mut plan = FaultPlan::none();
        for rank in 0..5usize {
            plan = plan.with_event(
                healthy.report.time_s * (0.2 + 0.1 * rank as f64),
                FaultKind::HostDeath { rank },
            );
        }
        let ft = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        let f = ft.result.report.faults.unwrap();
        assert_eq!(f.hosts_lost, 5);
        assert_eq!(f.remap, RemapStrategy::Patch);
        assert!(
            f.fallback_grid.is_some(),
            "5 > size/8 deaths must reshape wholesale"
        );
        assert!(ft.result.report.time_s > healthy.report.time_s);
    }

    #[test]
    fn checkpointed_host_restore_is_cheaper_than_recompute() {
        let c = cfg(168_000, 2, 2, 1);
        let healthy = simulate_cluster(&c, false);
        let t_kill = healthy.report.time_s * 0.6;
        let plan = FaultPlan::none().with_event(t_kill, FaultKind::HostDeath { rank: 1 });
        let with_ck = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        let without = simulate_cluster_faulty(&c, &plan, &FtPolicy::none(), false);
        let f_ck = with_ck.result.report.faults.unwrap();
        let f_no = without.result.report.faults.unwrap();
        // Streaming checkpointed state beats recomputing the dead rank's
        // share of 60% of the run.
        assert!(f_ck.recovery_s < f_no.recovery_s);
    }

    #[test]
    fn cascade_storm_into_card_death_is_one_causal_run() {
        let c = cfg(84_000, 1, 1, 1);
        let healthy = simulate_cluster(&c, false);
        let storm = FaultKind::PcieCrcStorm {
            stall_s: 200e-6,
            duration_s: healthy.report.time_s / 4.0,
        };
        let esc = phi_faults::Escalation::new(
            FaultKind::CardDeath { card: 0 },
            healthy.report.time_s / 8.0,
            1.0,
        );
        let plan = FaultPlan::none()
            .with_cascade(healthy.report.time_s / 3.0, storm, esc)
            .resolved(1, healthy.report.time_s * 2.0);
        assert_eq!(plan.total_card_deaths(), 1);
        let ft = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        let f = ft.result.report.faults.unwrap();
        assert_eq!(f.cards_lost, 1);
        assert_eq!(f.events, 2, "storm plus its escalated death");
        // Replays bit-identically under the same fingerprint.
        let again = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        assert_eq!(ft.run_fingerprint(), again.run_fingerprint());
    }

    #[test]
    fn rack_fanout_kills_the_rank_set_in_one_recovery_step() {
        // A rack power event fans out, on one correlated draw, into
        // host deaths across a contiguous rank set. All members land at
        // the same onset, so the simulator recovers the whole set in
        // one panel-boundary batch: a single Recovery span, patch
        // intact (4 deaths = the 4×8 grid's default budget).
        let c = cfg(240_000, 4, 8, 1);
        let healthy = simulate_cluster(&c, false);
        let t = healthy.report.time_s;
        let ranks: Vec<usize> = (8..12).collect();
        let plan = FaultPlan::none()
            .with_cascade(
                t / 3.0,
                FaultKind::LinkDegrade {
                    factor: 0.1,
                    duration_s: t / 10.0,
                },
                phi_faults::Escalation::fan(vec![phi_faults::ChildSpec::new(
                    FaultKind::HostDeath { rank: 0 },
                    t / 20.0,
                    1.0,
                )
                .with_scope(phi_faults::Scope::RankSet(ranks.clone()))]),
            )
            .resolved(0xFA, t * 2.0);
        assert_eq!(plan.total_host_deaths(), ranks.len());
        let ft = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), true);
        let f = ft.result.report.faults.unwrap();
        assert_eq!(f.hosts_lost, 4);
        assert_eq!(f.remap, RemapStrategy::Patch);
        assert_eq!(f.fallback_grid, None, "4 deaths fit the 32/8 budget");
        let recovery_spans = ft
            .trace
            .spans()
            .iter()
            .filter(|s| s.kind == Kind::Recovery)
            .count();
        assert_eq!(
            recovery_spans, 1,
            "the correlated set must recover in one step"
        );
        // Deterministic per seed: the same plan replays bit-identically.
        let again = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), true);
        assert_eq!(ft.run_fingerprint(), again.run_fingerprint());
    }

    #[test]
    fn death_budget_knob_moves_the_patch_wholesale_frontier() {
        let c = cfg(240_000, 4, 8, 1);
        let healthy = simulate_cluster(&c, false);
        let t = healthy.report.time_s;
        let mut plan = FaultPlan::none();
        for rank in 0..3usize {
            plan = plan.with_event(t * (0.2 + 0.1 * rank as f64), FaultKind::HostDeath { rank });
        }
        // The default budget (32/8 = 4) absorbs all three deaths...
        let default_run = simulate_cluster_faulty(&c, &plan, &FtPolicy::default(), false);
        assert_eq!(
            default_run.result.report.faults.unwrap().fallback_grid,
            None
        );
        // ...an explicit budget of 4 is bit-identical to the default...
        let explicit =
            simulate_cluster_faulty(&c, &plan, &FtPolicy::default().with_death_budget(4), false);
        assert_eq!(
            explicit.run_fingerprint(),
            default_run.run_fingerprint(),
            "explicit default-sized budget must not change the run"
        );
        // ...and a budget of 1 forces the wholesale reshape at the
        // second death.
        let tight =
            simulate_cluster_faulty(&c, &plan, &FtPolicy::default().with_death_budget(1), false);
        let f = tight.result.report.faults.unwrap();
        assert!(f.fallback_grid.is_some(), "budget 1 must reshape");
        assert_ne!(tight.run_fingerprint(), default_run.run_fingerprint());
    }

    #[test]
    fn same_plan_replays_bit_identically() {
        let c = cfg(168_000, 2, 2, 2);
        let plan_a = FaultPlan::campaign(0xF00D, 60.0, 8);
        let plan_b = FaultPlan::campaign(0xF00D, 60.0, 8);
        let a = simulate_cluster_faulty(&c, &plan_a, &FtPolicy::default(), true);
        let b = simulate_cluster_faulty(&c, &plan_b, &FtPolicy::default(), true);
        assert_eq!(a.run_fingerprint(), b.run_fingerprint());
        assert_eq!(
            a.result.report.time_s.to_bits(),
            b.result.report.time_s.to_bits()
        );
        assert_eq!(a.trace.spans(), b.trace.spans());
        // A different seed is a different execution.
        let other = simulate_cluster_faulty(
            &c,
            &FaultPlan::campaign(0xBEEF, 60.0, 8),
            &FtPolicy::default(),
            true,
        );
        assert_ne!(a.run_fingerprint(), other.run_fingerprint());
    }

    #[test]
    fn recovery_regimes_track_patch_then_reshape() {
        let c = cfg(336_000, 4, 4, 2);
        // No deaths: just the healthy shape.
        let shapes = recovery_regimes(&c, &FaultPlan::none(), &FtPolicy::default());
        assert_eq!(shapes.len(), 1);
        assert!(shapes[0].dead_ranks.is_empty() && !shapes[0].reshaped);

        // Three deaths under a budget of 2: two patched shapes on the
        // original grid, then a wholesale fallback.
        let plan = FaultPlan::none()
            .with_event(1.0, FaultKind::HostDeath { rank: 3 })
            .with_event(2.0, FaultKind::HostDeath { rank: 7 })
            .with_event(3.0, FaultKind::HostDeath { rank: 11 });
        let policy = FtPolicy::default().with_death_budget(2);
        let shapes = recovery_regimes(&c, &plan, &policy);
        assert_eq!(shapes.len(), 4);
        assert_eq!(shapes[1].dead_ranks, vec![3]);
        assert_eq!(shapes[2].dead_ranks, vec![3, 7]);
        assert!(shapes[3].reshaped, "third death blows the budget");
        // The fallback grid re-forms from the 13 survivors, idling at
        // most the 1/8 allowance; the dead set is renumbered away.
        assert!(shapes[3].dead_ranks.is_empty());
        assert!((12..=13).contains(&shapes[3].grid.size()));

        // Wholesale policy reshapes from the first death.
        let w = recovery_regimes(
            &c,
            &plan,
            &FtPolicy::default().with_remap(RemapStrategy::Wholesale),
        );
        assert!(w[1..].iter().all(|s| s.reshaped));

        // A duplicate death event changes nothing patch-side.
        let dup = plan
            .clone()
            .with_event(4.0, FaultKind::HostDeath { rank: 3 });
        let d = recovery_regimes(&c, &dup, &policy);
        assert_eq!(d.last(), shapes.last());
    }
}
