//! Mixed-precision solve: single-precision factorization with iterative
//! refinement to double-precision accuracy.
//!
//! The paper tunes SGEMM alongside DGEMM ("we apply the same
//! optimizations to SGEMM as well", Section III-A) because on KNC single
//! precision runs at exactly twice the FLOP rate (Table I: 2148 vs 1074
//! GFLOPS). The classic way to monetize that on a Linpack-like workload
//! is mixed-precision iterative refinement (Langou et al.): factor `A`
//! in f32 — paying the O(n³) cost at the fast rate — then recover f64
//! accuracy with O(n²) refinement sweeps:
//!
//! ```text
//! L,U ← sgetrf(A32)                  // fast, single precision
//! x   ← solve(L, U, b)               // single-precision solve
//! repeat: r = b − A·x (f64); solve L,U d = r; x += d
//! ```
//!
//! Convergence requires κ(A) ≪ 1/ε₃₂; HPL-style random matrices qualify.
//! [`TimedRefinement`] estimates the speedup on the KNC chip model.

use phi_blas::gemm::BlockSizes;
use phi_blas::lu::{getrf, LuError, LuFactors};
use phi_knc::{GemmModel, Precision};
use phi_matrix::{hpl_residual, MatGen, Matrix, ResidualReport};

/// Outcome of a mixed-precision solve.
#[derive(Clone, Debug)]
pub struct RefineResult {
    /// The refined solution.
    pub x: Vec<f64>,
    /// Refinement sweeps performed.
    pub iterations: usize,
    /// HPL residual report of the final solution (against f64 data).
    pub residual: ResidualReport,
    /// Whether the target was reached within the sweep budget.
    pub converged: bool,
}

/// Solves `A x = b` by f32 LU + f64 iterative refinement.
///
/// `max_sweeps` bounds the refinement loop; convergence is declared when
/// the HPL scaled residual (in f64) drops below 1.0 (an order of
/// magnitude under the acceptance threshold of 16).
pub fn solve_mixed_precision(
    a: &Matrix<f64>,
    b: &[f64],
    nb: usize,
    max_sweeps: usize,
) -> Result<RefineResult, LuError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square systems only");
    assert_eq!(b.len(), n);

    // Demote and factor in f32.
    let a32 = Matrix::<f32>::from_fn(n, n, |i, j| a[(i, j)] as f32);
    let mut lu32 = a32.clone();
    let ipiv = getrf(&mut lu32.view_mut(), nb, &BlockSizes::default())?;
    let factors = LuFactors { lu: lu32, ipiv };

    // Initial single-precision solve.
    let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
    let mut x: Vec<f64> = factors.solve(&b32).iter().map(|&v| v as f64).collect();

    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..max_sweeps {
        let report = hpl_residual(&a.view(), &x, b);
        if report.scaled_residual < 1.0 {
            converged = true;
            break;
        }
        // r = b − A x in f64 (the accuracy-critical step).
        let mut r = vec![0.0f64; n];
        for i in 0..n {
            let mut acc = 0.0f64;
            for (j, &xj) in x.iter().enumerate() {
                acc += a[(i, j)] * xj;
            }
            r[i] = b[i] - acc;
        }
        // Correction in f32.
        let r32: Vec<f32> = r.iter().map(|&v| v as f32).collect();
        let d = factors.solve(&r32);
        for (xi, &di) in x.iter_mut().zip(&d) {
            *xi += di as f64;
        }
        iterations += 1;
    }
    let residual = hpl_residual(&a.view(), &x, b);
    let converged = converged || residual.scaled_residual < 1.0;
    Ok(RefineResult {
        x,
        iterations,
        residual,
        converged,
    })
}

/// Chip-model estimate of the mixed-precision payoff on KNC.
#[derive(Clone, Copy, Debug)]
pub struct TimedRefinement {
    /// GEMM model supplying SGEMM/DGEMM rates.
    pub gemm: GemmModel,
    /// LU block size.
    pub nb: usize,
}

impl Default for TimedRefinement {
    fn default() -> Self {
        Self {
            gemm: GemmModel::default(),
            nb: 300,
        }
    }
}

impl TimedRefinement {
    /// Estimated time of an f64 factorization at the chip's DGEMM rate
    /// (upper bound: assumes perfect overlap of non-GEMM work).
    pub fn dgetrf_time_s(&self, n: usize) -> f64 {
        let flops = 2.0 / 3.0 * (n as f64).powi(3);
        flops
            / (self.gemm.efficiency_vs_k(self.nb, Precision::F64)
                * self.gemm.chip.native_peak_gflops(Precision::F64)
                * 1e9)
    }

    /// Estimated time of the f32 factorization plus `sweeps` refinement
    /// sweeps (each sweep: one f64 GEMV-like residual at STREAM bandwidth
    /// plus one f32 triangular solve pair).
    pub fn mixed_time_s(&self, n: usize, sweeps: usize) -> f64 {
        let nf = n as f64;
        let sgetrf = 2.0 / 3.0 * nf.powi(3)
            / (self.gemm.efficiency_vs_k(self.nb, Precision::F32)
                * self.gemm.chip.native_peak_gflops(Precision::F32)
                * 1e9);
        // Residual: streams the n² matrix once per sweep.
        let resid = 8.0 * nf * nf / (self.gemm.chip.stream_bw_gbs * 1e9);
        // Two triangular solves: 2n² flops at a conservative 25% of peak.
        let tri = 2.0 * nf * nf / (0.25 * self.gemm.chip.native_peak_gflops(Precision::F32) * 1e9);
        sgetrf + sweeps as f64 * (resid + tri)
    }

    /// Speedup of mixed precision over a pure f64 factorization.
    pub fn speedup(&self, n: usize, sweeps: usize) -> f64 {
        self.dgetrf_time_s(n) / self.mixed_time_s(n, sweeps)
    }
}

/// Convenience: generate an HPL problem and solve it mixed-precision.
pub fn demo_problem(n: usize, seed: u64) -> (Matrix<f64>, Vec<f64>) {
    (
        MatGen::new(seed).matrix::<f64>(n, n),
        MatGen::new(seed + 1).rhs::<f64>(n),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_reaches_f64_accuracy() {
        for n in [32usize, 96, 160] {
            let (a, b) = demo_problem(n, 5);
            let res = solve_mixed_precision(&a, &b, 16, 10).unwrap();
            assert!(
                res.converged,
                "n={n}: scaled residual {} after {} sweeps",
                res.residual.scaled_residual, res.iterations
            );
            assert!(res.residual.passed);
            // And it genuinely needed refinement: an unrefined f32 solve
            // would not reach scaled residual < 1 in f64 terms for these
            // sizes.
            assert!(res.iterations >= 1, "n={n} converged suspiciously fast");
        }
    }

    #[test]
    fn refined_solution_matches_f64_solve() {
        let n = 64;
        let (a, b) = demo_problem(n, 9);
        let x64 = phi_blas::lu::lu_solve(&a, &b, 16).unwrap();
        let res = solve_mixed_precision(&a, &b, 16, 12).unwrap();
        let drift = x64
            .iter()
            .zip(&res.x)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f64, f64::max);
        let scale = x64.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(drift / scale < 1e-9, "relative drift {}", drift / scale);
    }

    #[test]
    fn singular_matrix_propagates() {
        let n = 16;
        let mut a = MatGen::new(3).matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, 4)] = 0.0;
        }
        let b = vec![1.0; n];
        assert!(solve_mixed_precision(&a, &b, 4, 4).is_err());
    }

    #[test]
    fn chip_model_predicts_meaningful_speedup() {
        let t = TimedRefinement::default();
        // SGEMM peak is 2x DGEMM peak; with O(n²) refinement overhead the
        // asymptotic speedup approaches ~2 from below.
        let s = t.speedup(30_000, 3);
        assert!((1.5..2.05).contains(&s), "speedup {s:.3}");
        // Small problems amortize the sweeps poorly.
        assert!(t.speedup(2_000, 3) < s);
    }
}
