//! Distributed-memory numeric HPL on a `1 × Q` process grid.
//!
//! The timed cluster backends establish *performance* shape; this module
//! establishes *correctness* of the distributed algorithm itself: `Q`
//! ranks (real threads), each owning a block-cyclic slice of columns,
//! run the HPL stage loop with real arithmetic and real message passing
//! (in-process channels standing in for MPI):
//!
//! 1. the owner of panel `j` factors it (`getf2`) — with a column grid
//!    every panel is wholly local, as are all row swaps;
//! 2. the factored panel (its `L` part and pivot vector) is **broadcast
//!    along the process row**, exactly HPL's `HPL_bcast`;
//! 3. every rank applies the pivots to its local columns, forward-solves
//!    its share of `U`, and GEMM-updates its trailing blocks;
//! 4. **look-ahead**: the owner of panel `j+1` swaps/solves/updates that
//!    single panel *first* and factors it before touching the rest of
//!    its trailing columns, so the next broadcast enters the network as
//!    early as possible (Fig. 8b's overlap, expressed numerically).
//!
//! The result is bit-reproducible against the sequential blocked
//! reference (tested), and the solve passes the HPL residual.

use phi_blas::gemm::{gemm_with, BlockSizes};
use phi_blas::laswp::laswp_forward;
use phi_blas::lu::{getf2, LuError, LuFactors};
use phi_blas::trsm::trsm_left_lower_unit;
use phi_fabric::ProcessGrid;
use phi_matrix::{Matrix, Scalar};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// What one rank produces: its local columns plus the per-panel pivot
/// vectors of the panels it factored.
type RankOutput<T> = (Matrix<T>, Vec<(usize, Vec<usize>)>);

/// Why a distributed factorization stopped early.
///
/// Every rank returns the same `DistError` for a given failure: numeric
/// errors are broadcast as poison pills, and a vanished peer is detected
/// locally by the recv timeout, so no rank ever blocks forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistError {
    /// The factorization itself failed (singular panel somewhere).
    Numeric(LuError),
    /// A peer stopped sending: `rank` waited through every retry of its
    /// recv timeout without a panel or an abort pill arriving.
    PeerLost {
        /// The rank that gave up waiting.
        rank: usize,
        /// Recv attempts made before giving up.
        attempts: u32,
    },
    /// All peer channels disconnected while `rank` still expected a
    /// panel — the senders exited without broadcasting an abort.
    Disconnected {
        /// The rank that observed the hangup.
        rank: usize,
    },
    /// A rank's worker thread panicked instead of returning a result;
    /// the panic is contained and surfaced as an error to the caller.
    RankPanicked {
        /// The rank whose thread died.
        rank: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Numeric(e) => write!(f, "numeric failure: {e}"),
            DistError::PeerLost { rank, attempts } => {
                write!(f, "rank {rank} timed out after {attempts} recv attempts")
            }
            DistError::Disconnected { rank } => {
                write!(f, "rank {rank}: all peer channels disconnected")
            }
            DistError::RankPanicked { rank } => {
                write!(f, "rank {rank}: worker thread panicked")
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<LuError> for DistError {
    fn from(e: LuError) -> Self {
        DistError::Numeric(e)
    }
}

/// Recv-timeout and retry policy for the rank main loops.
///
/// A healthy broadcast arrives in microseconds; the defaults are generous
/// enough that only a genuinely dead peer trips them. Each retry doubles
/// the wait (bounded exponential backoff), so the default policy blocks
/// for at most `100ms · (2⁶ − 1) = 6.3 s` before declaring the peer lost.
#[derive(Clone, Copy, Debug)]
pub struct RecvPolicy {
    /// First recv timeout; doubled on every retry.
    pub initial_timeout: Duration,
    /// Total recv attempts before giving up.
    pub max_attempts: u32,
}

impl Default for RecvPolicy {
    fn default() -> Self {
        Self {
            initial_timeout: Duration::from_millis(100),
            max_attempts: 6,
        }
    }
}

/// A broadcast panel: the factored column block and its pivots.
struct PanelMsg<T: Scalar> {
    /// Global panel index.
    j: usize,
    /// The factored panel (rows `j*nb..n`, width of panel `j`),
    /// row-major.
    data: Matrix<T>,
    /// Panel-local pivot rows.
    ipiv: Vec<usize>,
}

/// Wire format: a factored panel, or a poison pill that aborts every
/// rank (a singular panel anywhere must not deadlock the others in
/// `recv`).
enum Msg<T: Scalar> {
    Panel(PanelMsg<T>),
    Abort(DistError),
}

/// Per-rank state for the distributed factorization.
struct Rank<T: Scalar> {
    q: usize,
    nb: usize,
    n: usize,
    /// Local columns: global panel `j` lives locally iff `j % Q == q`,
    /// stored concatenated in panel order.
    local: Matrix<T>,
    /// Global panel index → local panel slot.
    my_panels: Vec<usize>,
    to_peers: Vec<Sender<Msg<T>>>,
    from_peers: Receiver<Msg<T>>,
    policy: RecvPolicy,
}

impl<T: Scalar> Rank<T> {
    fn local_col_of(&self, j: usize) -> usize {
        // Position of global panel j among this rank's panels × nb.
        self.my_panels
            .iter()
            .position(|&g| g == j)
            .expect("panel not local")
            * self.nb
    }

    fn panel_width(&self, j: usize) -> usize {
        self.nb.min(self.n - j * self.nb)
    }

    /// Tells every peer to abort with `err`. Infallible by construction:
    /// a peer that already exited has dropped its receiver, and that is
    /// fine — it no longer needs the pill. No send outcome is ever
    /// unwrapped, so a half-dead grid cannot panic the survivors.
    fn broadcast_abort(&self, err: DistError) {
        for (peer, tx) in self.to_peers.iter().enumerate() {
            if peer != self.q {
                let _ = tx.send(Msg::Abort(err));
            }
        }
    }

    /// Receives the next message, retrying with exponential backoff per
    /// [`RecvPolicy`]. Returns an error — never blocks forever — if the
    /// peers hang up or stay silent through every attempt; either way the
    /// failure is re-broadcast so the rest of the grid unblocks too.
    fn recv_with_retry(&self) -> Result<Msg<T>, DistError> {
        let mut wait = self.policy.initial_timeout;
        for _ in 0..self.policy.max_attempts {
            match self.from_peers.recv_timeout(wait) {
                Ok(m) => return Ok(m),
                Err(RecvTimeoutError::Timeout) => {
                    wait = wait.saturating_mul(2);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let err = DistError::Disconnected { rank: self.q };
                    self.broadcast_abort(err);
                    return Err(err);
                }
            }
        }
        let err = DistError::PeerLost {
            rank: self.q,
            attempts: self.policy.max_attempts,
        };
        self.broadcast_abort(err);
        Err(err)
    }

    /// Factors local panel `j` and broadcasts it; returns the message
    /// retained locally.
    fn factor_and_bcast(&mut self, j: usize) -> Result<PanelMsg<T>, DistError> {
        let r0 = j * self.nb;
        let w = self.panel_width(j);
        let lc = self.local_col_of(j);
        let mut ipiv = Vec::new();
        {
            let mut panel = self.local.sub_mut(r0, lc, self.n - r0, w);
            if let Err(e) = getf2(&mut panel, &mut ipiv, r0) {
                let err = DistError::Numeric(e);
                self.broadcast_abort(err);
                return Err(err);
            }
        }
        // Left fixup only: panels g < j are fully factored and never
        // touched again, so stage j's swaps can be applied to them now.
        // Panels g > j must NOT be swapped yet — they may still be
        // awaiting earlier stages' updates (the look-ahead reorders
        // work), and swaps do not commute with those updates; update_one
        // applies the swap at the correct point instead.
        for (slot, &g) in self.my_panels.clone().iter().enumerate() {
            if g >= j {
                continue;
            }
            let gw = self.panel_width(g);
            let mut cols = self.local.sub_mut(r0, slot * self.nb, self.n - r0, gw);
            laswp_forward(&mut cols, &ipiv);
        }
        let data = self.local.sub(r0, lc, self.n - r0, w).to_matrix();
        let msg = PanelMsg {
            j,
            data: data.clone(),
            ipiv: ipiv.clone(),
        };
        for (peer, tx) in self.to_peers.iter().enumerate() {
            if peer != self.q {
                // An aborted peer may be gone; ignore its closed channel.
                let _ = tx.send(Msg::Panel(PanelMsg {
                    j,
                    data: data.clone(),
                    ipiv: ipiv.clone(),
                }));
            }
        }
        Ok(msg)
    }

    /// Applies a received (or locally retained) panel to one local panel
    /// `g > j`: pivot, forward-solve, GEMM.
    fn update_one(&mut self, msg: &PanelMsg<T>, g: usize, bs: &BlockSizes) {
        let j = msg.j;
        let r0 = j * self.nb;
        let pw = msg.data.cols();
        let gw = self.panel_width(g);
        let slot_col = self.local_col_of(g);

        // Apply stage j's pivots to this panel (the factor step only
        // fixed up already-factored panels).
        {
            let mut cols = self.local.sub_mut(r0, slot_col, self.n - r0, gw);
            laswp_forward(&mut cols, &msg.ipiv);
        }
        // U12 := L11⁻¹ A12.
        let l11 = msg.data.sub(0, 0, pw, pw);
        {
            let mut u12 = self.local.sub_mut(r0, slot_col, pw, gw);
            trsm_left_lower_unit(&l11, &mut u12);
        }
        // A22 -= L21 · U12.
        if r0 + pw < self.n {
            let l21 = msg.data.sub(pw, 0, self.n - r0 - pw, pw);
            let u12 = self.local.sub(r0, slot_col, pw, gw).to_matrix();
            let mut a22 = self.local.sub_mut(r0 + pw, slot_col, self.n - r0 - pw, gw);
            gemm_with(-T::ONE, &l21, &u12.view(), T::ONE, &mut a22, bs);
        }
    }

    /// The rank's main loop. Returns (local columns, per-panel pivots of
    /// the panels this rank factored).
    fn run(mut self, bs: &BlockSizes) -> Result<RankOutput<T>, DistError> {
        let npanels = self.n.div_ceil(self.nb);
        let mut my_pivots = Vec::new();
        // Panels received/retained, indexed by global panel id.
        let mut have: Vec<Option<PanelMsg<T>>> = (0..npanels).map(|_| None).collect();

        for j in 0..npanels {
            // Obtain panel j: factor it if ours, else receive (messages
            // arrive in panel order per sender; with one sender per panel
            // and a shared receiver, order across panels is enforced by
            // the stage structure).
            if have[j].is_none() {
                if self.my_panels.contains(&j) {
                    let msg = self.factor_and_bcast(j)?;
                    my_pivots.push((j, msg.ipiv.clone()));
                    have[j] = Some(msg);
                } else {
                    loop {
                        match self.recv_with_retry()? {
                            Msg::Abort(e) => return Err(e),
                            Msg::Panel(msg) => {
                                let idx = msg.j;
                                have[idx] = Some(msg);
                                if idx == j {
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            let msg = have[j].take().expect("panel obtained");

            // Left fixup for received panels: apply stage j's swaps to the
            // factored panels this rank owns left of j (the owner did its
            // own in factor_and_bcast).
            if !self.my_panels.contains(&j) {
                let r0 = j * self.nb;
                for (slot, &g) in self.my_panels.clone().iter().enumerate() {
                    if g < j {
                        let gw = self.panel_width(g);
                        let mut cols = self.local.sub_mut(r0, slot * self.nb, self.n - r0, gw);
                        laswp_forward(&mut cols, &msg.ipiv);
                    }
                }
            }

            // Look-ahead: if we own panel j+1, update and factor it first.
            let next = j + 1;
            if next < npanels && self.my_panels.contains(&next) {
                self.update_one(&msg, next, bs);
                let nmsg = self.factor_and_bcast(next)?;
                my_pivots.push((next, nmsg.ipiv.clone()));
                have[next] = Some(nmsg);
            }
            // Remaining local trailing panels.
            for g in self.my_panels.clone() {
                if g > j && !(next < npanels && g == next) {
                    self.update_one(&msg, g, bs);
                }
            }
        }
        Ok((self.local, my_pivots))
    }
}

/// Outcome of the distributed factorization, reassembled.
#[derive(Debug)]
pub struct DistributedLu<T: Scalar> {
    /// The packed factors, identical to sequential `getrf`.
    pub factors: LuFactors<T>,
    /// The grid used.
    pub grid: ProcessGrid,
}

/// Factors `a` on a `1 × q` grid of real threads with block-cyclic column
/// distribution, panel broadcast and look-ahead. Returns factors that
/// match the sequential reference. Uses the default [`RecvPolicy`].
pub fn factorize_distributed<T: Scalar>(
    a: &Matrix<T>,
    nb: usize,
    q: usize,
) -> Result<DistributedLu<T>, DistError> {
    factorize_distributed_with(a, nb, q, RecvPolicy::default())
}

/// [`factorize_distributed`] with an explicit recv-timeout policy.
pub fn factorize_distributed_with<T: Scalar>(
    a: &Matrix<T>,
    nb: usize,
    q: usize,
    policy: RecvPolicy,
) -> Result<DistributedLu<T>, DistError> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "square systems only");
    assert!(nb > 0 && q > 0);
    let npanels = n.div_ceil(nb);
    let grid = ProcessGrid::new(1, q);

    // Build per-rank local matrices (block-cyclic columns).
    let mut panel_lists: Vec<Vec<usize>> = vec![Vec::new(); q];
    for j in 0..npanels {
        panel_lists[grid.owner_col(j)].push(j);
    }
    let mut txs = Vec::with_capacity(q);
    let mut rxs = Vec::with_capacity(q);
    for _ in 0..q {
        let (tx, rx) = channel::<Msg<T>>();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut ranks: Vec<Rank<T>> = Vec::with_capacity(q);
    for (rank_q, rx) in rxs.into_iter().enumerate() {
        let my_panels = panel_lists[rank_q].clone();
        let mut local = Matrix::<T>::zeros(n, my_panels.len().max(1) * nb);
        for (slot, &j) in my_panels.iter().enumerate() {
            let w = nb.min(n - j * nb);
            local
                .sub_mut(0, slot * nb, n, w)
                .copy_from(&a.sub(0, j * nb, n, w));
        }
        ranks.push(Rank {
            q: rank_q,
            nb,
            n,
            local,
            my_panels,
            to_peers: txs.clone(),
            from_peers: rx,
            policy,
        });
    }
    drop(txs);

    let bs = BlockSizes::default();
    let results: Vec<Result<RankOutput<T>, DistError>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|r| s.spawn(move || r.run(&bs)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| {
                h.join()
                    .unwrap_or_else(|_| Err(DistError::RankPanicked { rank }))
            })
            .collect()
    });

    // Reassemble the global factored matrix and the pivot sequence.
    let mut lu = Matrix::<T>::zeros(n, n);
    let mut ipiv = vec![0usize; n];
    for (rank_q, res) in results.into_iter().enumerate() {
        let (local, pivots) = res?;
        for (slot, &j) in panel_lists[rank_q].iter().enumerate() {
            let w = nb.min(n - j * nb);
            lu.sub_mut(0, j * nb, n, w)
                .copy_from(&local.sub(0, slot * nb, n, w));
        }
        for (j, piv) in pivots {
            for (t, &p) in piv.iter().enumerate() {
                ipiv[j * nb + t] = j * nb + p;
            }
        }
    }
    ipiv.truncate(n);
    Ok(DistributedLu {
        factors: LuFactors { lu, ipiv },
        grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_blas::lu::getrf;
    use phi_matrix::{hpl_residual, MatGen};

    #[test]
    fn dist_error_messages_name_the_rank() {
        assert_eq!(
            DistError::RankPanicked { rank: 3 }.to_string(),
            "rank 3: worker thread panicked"
        );
        assert!(DistError::PeerLost {
            rank: 1,
            attempts: 7
        }
        .to_string()
        .contains("7 recv attempts"));
        assert!(DistError::Disconnected { rank: 2 }
            .to_string()
            .contains("rank 2"));
    }

    #[test]
    fn distributed_matches_sequential_for_all_grid_widths() {
        let n = 96;
        let nb = 16;
        let a = MatGen::new(21).matrix::<f64>(n, n);
        let mut seq = a.clone();
        let piv_seq = getrf(&mut seq.view_mut(), nb, &BlockSizes::default()).unwrap();

        for q in [1usize, 2, 3, 4] {
            let d = factorize_distributed(&a, nb, q).unwrap();
            assert_eq!(d.factors.ipiv, piv_seq, "pivots q={q}");
            let diff = d.factors.lu.max_abs_diff(&seq);
            assert!(diff < 1e-10, "q={q}: factor drift {diff}");
            assert_eq!(d.grid.q, q);
        }
    }

    #[test]
    fn distributed_solve_passes_hpl() {
        let n = 128;
        let a = MatGen::new(31).matrix::<f64>(n, n);
        let b = MatGen::new(32).rhs::<f64>(n);
        let d = factorize_distributed(&a, 32, 4).unwrap();
        let x = d.factors.solve(&b);
        let rep = hpl_residual(&a.view(), &x, &b);
        assert!(rep.passed, "scaled {}", rep.scaled_residual);
    }

    #[test]
    fn ragged_sizes_and_more_ranks_than_panels() {
        // n not a multiple of nb, and q exceeding the panel count: idle
        // ranks must not deadlock the broadcast.
        let n = 70;
        let nb = 32; // 3 panels, last ragged
        let a = MatGen::new(41).matrix::<f64>(n, n);
        let mut seq = a.clone();
        let piv_seq = getrf(&mut seq.view_mut(), nb, &BlockSizes::default()).unwrap();
        let d = factorize_distributed(&a, nb, 5).unwrap();
        assert_eq!(d.factors.ipiv, piv_seq);
        assert!(d.factors.lu.max_abs_diff(&seq) < 1e-11);
    }

    #[test]
    fn singularity_propagates_from_the_owning_rank() {
        let n = 48;
        let mut a = MatGen::new(51).matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, 20)] = 0.0; // panel 1 with nb = 16
        }
        let err = factorize_distributed(&a, 16, 3).unwrap_err();
        assert!(matches!(
            err,
            DistError::Numeric(LuError::Singular { col: 20 })
        ));
    }

    /// Satellite regression: a singular panel deep into the run (after
    /// several healthy broadcast rounds) must abort *every* rank without
    /// deadlock, even on a wide grid where most ranks are mid-`recv`.
    /// Guarded by a watchdog so a deadlock fails fast instead of hanging
    /// the suite.
    #[test]
    fn mid_run_singularity_aborts_all_ranks_without_deadlock() {
        let n = 96;
        let nb = 16; // 6 panels
        let mut a = MatGen::new(61).matrix::<f64>(n, n);
        for i in 0..n {
            a[(i, 70)] = 0.0; // panel 4: stages 0..3 complete first
        }
        let (tx, rx) = channel();
        std::thread::spawn(move || {
            let r = factorize_distributed(&a, nb, 4);
            let _ = tx.send(r);
        });
        let res = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("distributed abort deadlocked");
        assert!(matches!(
            res.unwrap_err(),
            DistError::Numeric(LuError::Singular { col: 70 })
        ));
    }

    /// A rank whose peer dies silently (no abort pill, no panel) must
    /// give up after its bounded retries rather than block forever.
    #[test]
    fn dead_peer_trips_recv_timeout_not_deadlock() {
        let n = 32;
        let nb = 16;
        let (tx, rx) = channel::<Msg<f64>>();
        // Rank 1 owns panel 1 and waits for panel 0 from rank 0, which
        // never sends: `tx` is kept alive so the channel stays open and
        // the timeout (not the disconnect) path is exercised.
        let rank = Rank::<f64> {
            q: 1,
            nb,
            n,
            local: Matrix::zeros(n, nb),
            my_panels: vec![1],
            to_peers: vec![],
            from_peers: rx,
            policy: RecvPolicy {
                initial_timeout: Duration::from_millis(1),
                max_attempts: 3,
            },
        };
        let err = rank.run(&BlockSizes::default()).unwrap_err();
        assert_eq!(
            err,
            DistError::PeerLost {
                rank: 1,
                attempts: 3
            }
        );
        drop(tx);
    }

    /// Peers that hang up without an abort pill surface `Disconnected`.
    #[test]
    fn hangup_without_abort_surfaces_disconnected() {
        let n = 32;
        let nb = 16;
        let (tx, rx) = channel::<Msg<f64>>();
        drop(tx); // sender gone before any message
        let rank = Rank::<f64> {
            q: 1,
            nb,
            n,
            local: Matrix::zeros(n, nb),
            my_panels: vec![1],
            to_peers: vec![],
            from_peers: rx,
            policy: RecvPolicy::default(),
        };
        let err = rank.run(&BlockSizes::default()).unwrap_err();
        assert_eq!(err, DistError::Disconnected { rank: 1 });
    }
}
