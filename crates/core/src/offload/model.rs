//! Timed offload DGEMM: the Fig. 11 discrete-event model and the fast
//! analytic approximation used per HPL stage.
//!
//! The DES reproduces the mechanics of Fig. 10: tile-strip packing on
//! designated host cores, DMA over per-card PCIe links (socket-
//! interleaved in the paper; modeled as independent links sharing the
//! host pack engine), request queues, card compute at the native DGEMM
//! rate of 60 cores (one core is reserved for communication — the 1.5%
//! loss the paper quotes), output-tile DMA overlapped with the next
//! tile's compute, and two-ended work stealing against the host.
//!
//! The dominant exposures the paper identifies emerge naturally: the
//! *first* tile waits for its input strips, the *last* tile's output
//! transfer cannot be hidden, and smaller matrices have fewer tiles to
//! amortize both — "efficiency degrades much faster [for two cards] ...
//! each Knights Corner is only solving half the problem size".

use super::tile_spans;
use crate::report::GigaflopsReport;
use phi_des::{Kind, Sim};
use phi_fabric::PcieConfig;
use phi_knc::{GemmModel, Precision};
use phi_sched::TileDeque;
use phi_xeon::XeonModel;
use std::cell::RefCell;
// lint:allow(unstable-iteration-order): membership tests only, never iterated.
use std::collections::HashSet;
use std::rc::Rc;

/// Timed offload-DGEMM engine.
#[derive(Clone, Copy, Debug)]
pub struct OffloadModel {
    /// Card DGEMM model.
    pub card: GemmModel,
    /// Host throughput model.
    pub host: XeonModel,
    /// PCIe parameters.
    pub pcie: PcieConfig,
    /// Tile depth (`Kt = 1200` in the paper's experiments).
    pub kt: usize,
    /// Inner GEMM blocking on the card (`k = 300`, Table II's best).
    pub k_inner: usize,
}

impl Default for OffloadModel {
    fn default() -> Self {
        Self {
            card: GemmModel::default(),
            host: XeonModel::default(),
            pcie: PcieConfig::default(),
            kt: 1200,
            k_inner: 300,
        }
    }
}

/// Result of one offload DGEMM.
#[derive(Clone, Copy, Debug)]
pub struct OffloadOutcome {
    /// Wall (virtual) time, seconds.
    pub time_s: f64,
    /// Total card compute time (for idle accounting), seconds.
    pub card_busy_s: f64,
    /// Achieved GFLOPS over `2·m·n·kt`.
    pub gflops: f64,
    /// Tiles computed by the card(s).
    pub card_tiles: usize,
    /// Tiles computed by the host.
    pub host_tiles: usize,
    /// Tile grid used.
    pub grid: (usize, usize),
}

struct DesState {
    deque: TileDeque,
    tiles: Vec<(usize, usize)>,
    rows: Vec<(usize, usize)>,
    cols: Vec<(usize, usize)>,
    /// Per-card (strip kind, index) already transferred.
    sent: Vec<HashSet<(u8, usize)>>, // lint:allow(unstable-iteration-order)
    /// Per-card input-ready horizon per strip.
    to_device: Vec<phi_des::Link>,
    to_host: Vec<phi_des::Link>,
    pack: phi_des::Link,
    strip_ready: Vec<std::collections::HashMap<(u8, usize), f64>>, // lint:allow(unstable-iteration-order)
    card_busy: f64,
    card_done: f64,
    host_done: f64,
    card_tiles: usize,
    host_tiles: usize,
}

impl OffloadModel {
    /// Card compute time for one `mt × nt × kt` tile: the native
    /// outer-product rate of 60 cores (the 61st polls the queues).
    pub fn tile_time_card(&self, mt: usize, nt: usize) -> f64 {
        let eff = self
            .card
            .outer_product_efficiency(mt, nt, self.k_inner, Precision::F64);
        let peak = self.card.chip.native_peak_gflops(Precision::F64) * 1e9;
        2.0 * mt as f64 * nt as f64 * self.kt as f64 / (eff.max(1e-3) * peak)
    }

    /// Picks the tile grid maximizing DES throughput for an `m × n`
    /// problem on `cards` cards — the paper's run-time tile-size
    /// selection ("for each matrix size ... pre-compute the best tile
    /// sizes ... and dynamically pick the best tile size at run-time").
    pub fn best_grid(&self, m: usize, n: usize, cards: usize) -> (usize, usize) {
        let mut best = (1, 1);
        let mut best_gf = 0.0;
        for g in 1..=10usize {
            let grid = (g, g);
            if m / g == 0 || n / g == 0 {
                break;
            }
            let out = self.simulate_with_grid(m, n, cards, 0.0, grid);
            if out.gflops > best_gf {
                best_gf = out.gflops;
                best = grid;
            }
        }
        best
    }

    /// DES with automatic grid selection (the Fig. 11 entry point).
    pub fn simulate(&self, m: usize, n: usize, cards: usize, host_cores: f64) -> OffloadOutcome {
        let grid = self.best_grid(m, n, cards);
        self.simulate_with_grid(m, n, cards, host_cores, grid)
    }

    /// Full DES with an explicit tile grid.
    pub fn simulate_with_grid(
        &self,
        m: usize,
        n: usize,
        cards: usize,
        host_cores: f64,
        grid: (usize, usize),
    ) -> OffloadOutcome {
        assert!(cards >= 1, "offload requires a card");
        assert!(m > 0 && n > 0);
        let rows = tile_spans(m, grid.0);
        let cols = tile_spans(n, grid.1);
        // Column-major stealing order (Fig. 10a).
        let tiles: Vec<(usize, usize)> = (0..cols.len())
            .flat_map(|j| (0..rows.len()).map(move |i| (i, j)))
            .collect();
        let ntiles = tiles.len();

        let st = Rc::new(RefCell::new(DesState {
            deque: TileDeque::new(ntiles),
            tiles,
            rows,
            cols,
            sent: vec![HashSet::new(); cards], // lint:allow(unstable-iteration-order)
            to_device: vec![phi_des::Link::new(self.pcie.effective_bw, self.pcie.latency); cards],
            to_host: vec![phi_des::Link::new(self.pcie.effective_bw, self.pcie.latency); cards],
            pack: phi_des::Link::new(
                self.host.cfg.stream_bw_gbs * 1e9 * self.host.pack_bw_fraction,
                0.0,
            ),
            strip_ready: vec![std::collections::HashMap::new(); cards], // lint:allow(unstable-iteration-order)
            card_busy: 0.0,
            card_done: 0.0,
            host_done: 0.0,
            card_tiles: 0,
            host_tiles: 0,
        }));

        let mut sim = Sim::new();
        let model = *self;
        for card in 0..cards {
            let st2 = st.clone();
            sim.schedule(0.0, move |s| card_step(s, st2, model, card));
        }
        if host_cores > 0.0 {
            let st2 = st.clone();
            sim.schedule(0.0, move |s| host_step(s, st2, model, host_cores));
        }
        sim.run();

        let st = Rc::try_unwrap(st)
            .ok()
            .expect("state released")
            .into_inner();
        let time_s = st.card_done.max(st.host_done).max(sim.now());
        let flops = 2.0 * m as f64 * n as f64 * self.kt as f64;
        OffloadOutcome {
            time_s,
            card_busy_s: st.card_busy,
            gflops: flops / time_s / 1e9,
            card_tiles: st.card_tiles,
            host_tiles: st.host_tiles,
            grid,
        }
    }

    /// Fast closed-form approximation used once per HPL stage: combined
    /// card + host rate with first-strip and last-output exposure.
    /// Cross-checked against the DES in tests.
    pub fn analytic(&self, m: usize, n: usize, cards: usize, host_cores: f64) -> OffloadOutcome {
        assert!(cards >= 1);
        if m == 0 || n == 0 {
            return OffloadOutcome {
                time_s: 0.0,
                card_busy_s: 0.0,
                gflops: 0.0,
                card_tiles: 0,
                host_tiles: 0,
                grid: (1, 1),
            };
        }
        // A fixed 6×6-per-card grid approximates the run-time selection
        // well at HPL scales.
        let g = 6usize.min(m).min(n);
        let (mt, nt) = (m / g.max(1), n / g.max(1));
        let tile_t = self.tile_time_card(mt.max(1), nt.max(1));
        let c_dma = 8.0 * (mt * nt) as f64 / self.pcie.effective_bw;
        // Effective per-card rate: compute, degraded when output DMA
        // cannot hide.
        let tile_flops = 2.0 * (mt * nt) as f64 * self.kt as f64;
        let card_rate = tile_flops / tile_t.max(c_dma) * cards as f64;
        let host_rate = if host_cores > 0.0 {
            let eff = self.host.dgemm_efficiency(n.min(m));
            eff * self.host.cfg.freq_ghz * self.host.cfg.dp_flops_per_cycle * 1e9 * host_cores
        } else {
            0.0
        };
        let flops = 2.0 * m as f64 * n as f64 * self.kt as f64;
        let in_strip = 8.0
            * (mt * self.kt + nt * self.kt) as f64
            * (1.0 / (self.host.cfg.stream_bw_gbs * 1e9 * self.host.pack_bw_fraction)
                + 1.0 / self.pcie.effective_bw);
        let exposure = in_strip * cards as f64 + c_dma.min(tile_t);
        let time_s = flops / (card_rate + host_rate) + exposure;
        let card_share = card_rate / (card_rate + host_rate);
        OffloadOutcome {
            time_s,
            card_busy_s: flops * card_share / card_rate.max(1.0),
            gflops: flops / time_s / 1e9,
            card_tiles: 0,
            host_tiles: 0,
            grid: (g, g),
        }
    }

    /// Closed-form **static** split companion to [`analytic`](Self::analytic):
    /// the card side gets a fixed `card_fraction` of the flops, the host
    /// the rest, and neither adapts — `time = max(sides) + exposure`,
    /// using the exact same per-side rates and exposure terms as the
    /// dynamic closed form. At the dynamic equilibrium fraction the two
    /// coincide; anywhere else the static split is slower, which is the
    /// §V-B argument for work stealing that the tuner re-derives.
    pub fn analytic_split(
        &self,
        m: usize,
        n: usize,
        cards: usize,
        host_cores: f64,
        card_fraction: f64,
    ) -> OffloadOutcome {
        assert!(cards >= 1);
        assert!((0.0..=1.0).contains(&card_fraction));
        if m == 0 || n == 0 {
            return OffloadOutcome {
                time_s: 0.0,
                card_busy_s: 0.0,
                gflops: 0.0,
                card_tiles: 0,
                host_tiles: 0,
                grid: (1, 1),
            };
        }
        let g = 6usize.min(m).min(n);
        let (mt, nt) = (m / g.max(1), n / g.max(1));
        let tile_t = self.tile_time_card(mt.max(1), nt.max(1));
        let c_dma = 8.0 * (mt * nt) as f64 / self.pcie.effective_bw;
        let tile_flops = 2.0 * (mt * nt) as f64 * self.kt as f64;
        let card_rate = tile_flops / tile_t.max(c_dma) * cards as f64;
        let host_rate = if host_cores > 0.0 {
            let eff = self.host.dgemm_efficiency(n.min(m));
            eff * self.host.cfg.freq_ghz * self.host.cfg.dp_flops_per_cycle * 1e9 * host_cores
        } else {
            0.0
        };
        // With no host lane the card must take everything.
        let f = if host_rate > 0.0 { card_fraction } else { 1.0 };
        let flops = 2.0 * m as f64 * n as f64 * self.kt as f64;
        let t_card = f * flops / card_rate;
        let t_host = if host_rate > 0.0 {
            (1.0 - f) * flops / host_rate
        } else {
            0.0
        };
        let in_strip = 8.0
            * (mt * self.kt + nt * self.kt) as f64
            * (1.0 / (self.host.cfg.stream_bw_gbs * 1e9 * self.host.pack_bw_fraction)
                + 1.0 / self.pcie.effective_bw);
        let exposure = in_strip * cards as f64 + c_dma.min(tile_t);
        let time_s = t_card.max(t_host) + exposure;
        OffloadOutcome {
            time_s,
            card_busy_s: t_card,
            gflops: flops / time_s / 1e9,
            card_tiles: 0,
            host_tiles: 0,
            grid: (g, g),
        }
    }
}

/// One card finishing a tile (or starting up): steal, ensure inputs,
/// compute, ship the result.
fn card_step(sim: &mut Sim, st: Rc<RefCell<DesState>>, model: OffloadModel, card: usize) {
    let now = sim.now();
    let mut s = st.borrow_mut();
    let Some(idx) = s.deque.steal_front() else {
        s.card_done = s.card_done.max(now);
        return;
    };
    // Ensure this tile's strips (and prefetch the likely-next tile's) are
    // on the card.
    let input_ready = ensure_strips(&mut s, &model, now, card, idx);
    // Peek prefetch: the next front tile this card would take.
    let prefetch_idx = idx + 1;
    if prefetch_idx < s.tiles.len() {
        ensure_strips(&mut s, &model, now, card, prefetch_idx);
    }
    let (ti, tj) = s.tiles[idx];
    let (_, mt) = s.rows[ti];
    let (_, nt) = s.cols[tj];
    let start = now.max(input_ready) + model.pcie.queue_poll_latency;
    let dur = model.tile_time_card(mt, nt);
    let end = start + dur;
    s.card_busy += dur;
    s.card_tiles += 1;
    // Output DMA overlaps the next tile's compute.
    let (_, c_dma_end) = s.to_host[card].transfer(end, 8.0 * (mt * nt) as f64);
    s.card_done = s.card_done.max(c_dma_end);
    drop(s);
    sim.trace_mut().record(card as u32, start, end, Kind::Gemm);
    let st2 = st.clone();
    sim.schedule(end - now, move |sm| card_step(sm, st2, model, card));
}

/// Books pack + DMA for any strips tile `idx` needs that card `card`
/// does not yet have; returns the time all of the tile's inputs are
/// resident.
fn ensure_strips(s: &mut DesState, model: &OffloadModel, now: f64, card: usize, idx: usize) -> f64 {
    let (ti, tj) = s.tiles[idx];
    let mut ready = now;
    for (kind, strip_idx, elems) in [
        (0u8, ti, s.rows[ti].1 * model.kt),
        (1u8, tj, s.cols[tj].1 * model.kt),
    ] {
        let key = (kind, strip_idx);
        if let Some(&t) = s.strip_ready[card].get(&key) {
            ready = ready.max(t);
            continue;
        }
        if s.sent[card].contains(&key) {
            continue;
        }
        let bytes = 8.0 * elems as f64;
        // Pack-and-copy on the host, then DMA — both serialized resources.
        let (_, pack_end) = s.pack.transfer(now, 2.0 * bytes);
        let (_, dma_end) = s.to_device[card].transfer(pack_end, bytes);
        s.sent[card].insert(key);
        s.strip_ready[card].insert(key, dma_end);
        ready = ready.max(dma_end);
    }
    ready
}

impl OffloadModel {
    /// Ablation: a **static** host/card split instead of work stealing.
    /// The card processes the first `ceil(f·T)` tiles, the host the rest,
    /// with `f = card_fraction`; neither side adapts. With a perfect
    /// fraction this matches stealing; with a mis-estimated one (the
    /// realistic case — per-tile rates vary) the faster side idles, which
    /// is exactly why Section V-B uses dynamic stealing.
    pub fn simulate_static_split(
        &self,
        m: usize,
        n: usize,
        host_cores: f64,
        grid: (usize, usize),
        card_fraction: f64,
    ) -> OffloadOutcome {
        assert!((0.0..=1.0).contains(&card_fraction));
        let rows = tile_spans(m, grid.0);
        let cols = tile_spans(n, grid.1);
        let tiles: Vec<(usize, usize)> = (0..cols.len())
            .flat_map(|j| (0..rows.len()).map(move |i| (i, j)))
            .collect();
        let ntiles = tiles.len();
        let card_tiles = ((card_fraction * ntiles as f64).ceil() as usize).min(ntiles);

        // Card side: serialized tile computes with input/output transfer
        // exposure, as in the DES but with a fixed worklist.
        let mut pack = phi_des::Link::new(
            self.host.cfg.stream_bw_gbs * 1e9 * self.host.pack_bw_fraction,
            0.0,
        );
        let mut to_dev = phi_des::Link::new(self.pcie.effective_bw, self.pcie.latency);
        let mut to_host = phi_des::Link::new(self.pcie.effective_bw, self.pcie.latency);
        let mut sent: HashSet<(u8, usize)> = HashSet::new(); // lint:allow(unstable-iteration-order)
        let mut t_card = 0.0f64;
        let mut busy = 0.0f64;
        let mut card_done = 0.0f64;
        for &(ti, tj) in &tiles[..card_tiles] {
            let mut input_ready = t_card;
            for (kind, idx, elems) in [
                (0u8, ti, rows[ti].1 * self.kt),
                (1u8, tj, cols[tj].1 * self.kt),
            ] {
                if sent.insert((kind, idx)) {
                    let bytes = 8.0 * elems as f64;
                    let (_, pe) = pack.transfer(t_card, 2.0 * bytes);
                    let (_, de) = to_dev.transfer(pe, bytes);
                    input_ready = input_ready.max(de);
                }
            }
            let start = t_card.max(input_ready) + self.pcie.queue_poll_latency;
            let dur = self.tile_time_card(rows[ti].1, cols[tj].1);
            busy += dur;
            let end = start + dur;
            let (_, ce) = to_host.transfer(end, 8.0 * (rows[ti].1 * cols[tj].1) as f64);
            card_done = card_done.max(ce);
            t_card = end;
        }
        // Host side: its fixed share, sequential at its DGEMM rate.
        let mut t_host = 0.0f64;
        for &(ti, tj) in &tiles[card_tiles..] {
            t_host += self
                .host
                .gemm_time_s(rows[ti].1, cols[tj].1, self.kt, host_cores);
        }
        let time_s = card_done.max(t_card).max(t_host).max(1e-12);
        let flops = 2.0 * m as f64 * n as f64 * self.kt as f64;
        OffloadOutcome {
            time_s,
            card_busy_s: busy,
            gflops: flops / time_s / 1e9,
            card_tiles,
            host_tiles: ntiles - card_tiles,
            grid,
        }
    }
}

/// The host's work-stealing lane: grabs tiles from the back.
fn host_step(sim: &mut Sim, st: Rc<RefCell<DesState>>, model: OffloadModel, cores: f64) {
    let now = sim.now();
    let mut s = st.borrow_mut();
    let Some(idx) = s.deque.steal_back() else {
        s.host_done = s.host_done.max(now);
        return;
    };
    let (ti, tj) = s.tiles[idx];
    let (_, mt) = s.rows[ti];
    let (_, nt) = s.cols[tj];
    s.host_tiles += 1;
    let dur = model.host.gemm_time_s(mt, nt, model.kt, cores);
    s.host_done = s.host_done.max(now + dur);
    drop(s);
    sim.trace_mut().record(100, now, now + dur, Kind::Gemm);
    let st2 = st.clone();
    sim.schedule(dur, move |sm| host_step(sm, st2, model, cores));
}

/// Convenience: Fig. 11's metric — offload DGEMM efficiency against the
/// *full* 61-core peak per card ("for offload DGEMM and hybrid HPL, we
/// report efficiency with respect to all available cores").
pub fn offload_report(model: &OffloadModel, m: usize, cards: usize) -> GigaflopsReport {
    let out = model.simulate(m, m, cards, 0.0);
    let peak = model.card.chip.full_peak_gflops(Precision::F64) * cards as f64;
    let mut r = GigaflopsReport::new(m, out.time_s, peak);
    // Override the HPL flop convention: this is a plain GEMM.
    r.gflops = out.gflops;
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_card_82k_hits_85_percent() {
        // Fig. 11a: "For 82K matrix it achieves ≈917 GFLOPS, resulting in
        // 85.4% efficiency."
        let model = OffloadModel::default();
        let out = model.simulate(82_000, 82_000, 1, 0.0);
        let eff = out.gflops / (model.card.chip.full_peak_gflops(Precision::F64));
        assert!(
            (eff - 0.854).abs() < 0.02,
            "82K single-card offload eff = {eff:.3} ({:.0} GFLOPS, grid {:?})",
            out.gflops,
            out.grid
        );
    }

    #[test]
    fn dual_card_efficiency_lower_and_degrades_faster() {
        let model = OffloadModel::default();
        let peak1 = model.card.chip.full_peak_gflops(Precision::F64);

        let one_big = model.simulate(82_000, 82_000, 1, 0.0);
        let two_big = model.simulate(82_000, 82_000, 2, 0.0);
        let e1_big = one_big.gflops / peak1;
        let e2_big = two_big.gflops / (2.0 * peak1);
        // Fig. 11b: dual-card peak ≈1785 GFLOPS, 83%.
        assert!(
            e2_big < e1_big,
            "dual-card eff {e2_big:.3} vs single {e1_big:.3}"
        );
        assert!((e2_big - 0.83).abs() < 0.025, "dual eff {e2_big:.3}");

        // Faster degradation at small sizes: the single-card efficiency
        // drop from 82K to 20K must be smaller than the dual-card drop.
        let one_small = model.simulate(20_000, 20_000, 1, 0.0);
        let two_small = model.simulate(20_000, 20_000, 2, 0.0);
        let drop1 = e1_big - one_small.gflops / peak1;
        let drop2 = e2_big - two_small.gflops / (2.0 * peak1);
        assert!(
            drop2 > drop1,
            "dual-card must degrade faster: {drop2:.3} vs {drop1:.3}"
        );
    }

    #[test]
    fn host_stealing_speeds_up_the_update() {
        let model = OffloadModel::default();
        let alone = model.simulate_with_grid(40_000, 40_000, 1, 0.0, (6, 6));
        let helped = model.simulate_with_grid(40_000, 40_000, 1, 12.0, (6, 6));
        assert!(helped.time_s < alone.time_s);
        assert!(helped.host_tiles > 0, "host must steal some tiles");
        assert!(helped.card_tiles > helped.host_tiles, "card does the bulk");
    }

    #[test]
    fn analytic_tracks_des() {
        let model = OffloadModel::default();
        for s in [20_000usize, 40_000, 82_000] {
            let des = model.simulate(s, s, 1, 0.0);
            let ana = model.analytic(s, s, 1, 0.0);
            let rel = (ana.gflops - des.gflops).abs() / des.gflops;
            assert!(
                rel < 0.10,
                "size {s}: analytic {:.0} vs DES {:.0} ({rel:.3})",
                ana.gflops,
                des.gflops
            );
        }
    }

    #[test]
    fn efficiency_degrades_slowly_with_size() {
        // Fig. 11a: "Overall, efficiency degrades slowly with decreasing
        // matrix sizes."
        let model = OffloadModel::default();
        let peak = model.card.chip.full_peak_gflops(Precision::F64);
        let mut last = 0.0;
        for s in [10_000usize, 20_000, 40_000, 82_000] {
            let eff = model.simulate(s, s, 1, 0.0).gflops / peak;
            assert!(eff > last, "monotone in size: {eff:.3} at {s}");
            last = eff;
        }
        assert!(last > 0.80);
    }

    #[test]
    fn static_split_never_beats_dynamic_closed_form() {
        let model = OffloadModel::default();
        let dynamic = model.analytic(60_000, 60_000, 1, 11.0);
        let mut best_static = f64::INFINITY;
        for f in [0.5, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0] {
            let s = model.analytic_split(60_000, 60_000, 1, 11.0, f);
            best_static = best_static.min(s.time_s);
            assert!(
                s.time_s >= dynamic.time_s * 0.999,
                "static f={f} beat dynamic: {} vs {}",
                s.time_s,
                dynamic.time_s
            );
        }
        // At the right fraction the static split comes close.
        assert!(best_static < dynamic.time_s * 1.10);
        // A badly mis-set fraction hurts a lot.
        let bad = model.analytic_split(60_000, 60_000, 1, 11.0, 0.5);
        assert!(bad.time_s > dynamic.time_s * 1.3);
    }

    #[test]
    fn deterministic() {
        let model = OffloadModel::default();
        let a = model.simulate(30_000, 30_000, 2, 8.0);
        let b = model.simulate(30_000, 30_000, 2, 8.0);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.card_tiles, b.card_tiles);
    }
}
