//! Offload DGEMM: the trailing-update engine of hybrid HPL
//! (Section V-B, Fig. 10).
//!
//! The host divides the trailing product `C -= A · B` (depth `Kt`) into
//! `Mt × Nt` tiles. Input strips are packed into the Knights
//! Corner-friendly format while being copied, DMA'd over PCIe, and
//! requests flow through memory-mapped queues; the card computes tiles
//! and DMAs `C` results back. Load balance comes from **work stealing**:
//! the card claims tiles forward from `C00`, the host backward from the
//! last tile ([`phi_sched::TileDeque`]).
//!
//! * [`numeric`] — functional backend with real matrices and real
//!   threads: verifies that the stolen-tile decomposition (including
//!   partial-tile merging) reassembles the exact product.
//! * [`model`] — timed backend: the DES of Fig. 11 (first/last-tile
//!   exposure, PCIe overlap, run-time tile-size selection) and the fast
//!   analytic approximation hybrid HPL uses per stage.

pub mod model;
pub mod numeric;

pub use model::{OffloadModel, OffloadOutcome};
pub use numeric::offload_gemm_numeric;

/// Splits an extent into `parts` tile spans, merging the ragged remainder
/// into the **last** tile — the paper's partial-tile merging: "we merge
/// the last two tiles (one complete tile and one partial tile) at the end
/// of each row or column and process them together."
pub fn tile_spans(extent: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0);
    if extent == 0 {
        return Vec::new();
    }
    let parts = parts.min(extent);
    let base = extent / parts;
    let mut spans: Vec<(usize, usize)> = (0..parts).map(|i| (i * base, base)).collect();
    // Remainder merges into the last tile instead of forming a sliver.
    let used = base * parts;
    if let Some(last) = spans.last_mut() {
        last.1 += extent - used;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_exactly() {
        for (extent, parts) in [(100, 4), (103, 4), (7, 3), (5, 8), (1, 1)] {
            let spans = tile_spans(extent, parts);
            let total: usize = spans.iter().map(|s| s.1).sum();
            assert_eq!(total, extent, "extent={extent} parts={parts}");
            // Contiguous.
            let mut cursor = 0;
            for (start, len) in &spans {
                assert_eq!(*start, cursor);
                cursor += len;
            }
        }
    }

    #[test]
    fn remainder_merges_into_last_tile() {
        let spans = tile_spans(103, 4);
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].1, 25);
        assert_eq!(spans[3].1, 28, "last tile absorbs the partial tile");
    }

    #[test]
    fn more_parts_than_extent_clamps() {
        let spans = tile_spans(3, 10);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.1 == 1));
    }
}
