//! Functional offload DGEMM: real matrices, real threads, real stealing.
//!
//! The card is played by one thread running the KNC-shaped GEMM
//! (30×8 register blocks); host workers run the host-shaped GEMM. All
//! sides steal tiles from the shared [`TileDeque`] — card from the front
//! in column-major order, host from the back — and each tile's `C` block
//! is written by exactly one thief, so the final matrix must equal the
//! reference product exactly.

use super::tile_spans;
use phi_blas::gemm::{gemm_with, BlockSizes};
use phi_matrix::{Matrix, MatrixViewMut};
use phi_sched::TileDeque;
use std::cell::UnsafeCell;

/// C windows are disjoint per tile; tiles are claimed exactly once.
struct SharedC {
    cell: UnsafeCell<Matrix<f64>>,
}
unsafe impl Sync for SharedC {}

impl SharedC {
    #[allow(clippy::mut_from_ref)]
    unsafe fn window(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatrixViewMut<'_, f64> {
        // SAFETY: the caller guarantees disjoint tile windows — the
        // stealing counters hand each (r0, c0) tile to exactly one
        // worker, so the exclusive reborrow never aliases.
        unsafe { (*self.cell.get()).sub_mut(r0, c0, nr, nc) }
    }
}

/// Computes `C := C - A · B` by tile stealing: `card_threads` "cards"
/// steal forward with the KNC blocking, `host_threads` host workers steal
/// backward with the host blocking. `grid` is the tile grid (rows, cols).
///
/// Returns the number of tiles each side processed: `(card, host)`.
pub fn offload_gemm_numeric(
    a: &Matrix<f64>,
    b: &Matrix<f64>,
    c: &mut Matrix<f64>,
    grid: (usize, usize),
    card_threads: usize,
    host_threads: usize,
) -> (usize, usize) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!((c.rows(), c.cols()), (m, n));
    assert!(card_threads + host_threads > 0);

    let rows = tile_spans(m, grid.0);
    let cols = tile_spans(n, grid.1);
    // Column-major tile order: the card walks C00, C10, ... (paper
    // Fig. 10a shows column-major stealing from the upper-left corner).
    let tiles: Vec<(usize, usize)> = (0..cols.len())
        .flat_map(|j| (0..rows.len()).map(move |i| (i, j)))
        .collect();
    let deque = TileDeque::new(tiles.len());
    let shared = SharedC {
        cell: UnsafeCell::new(std::mem::replace(c, Matrix::zeros(0, 0))),
    };

    let knc_bs = BlockSizes::knc();
    let host_bs = BlockSizes::default();
    let run_tile = |idx: usize, bs: &BlockSizes| {
        let (ti, tj) = tiles[idx];
        let (r0, nr) = rows[ti];
        let (c0, nc) = cols[tj];
        let a_strip = a.sub(r0, 0, nr, k);
        let b_strip = b.sub(0, c0, k, nc);
        // SAFETY: tile (ti, tj) is claimed exactly once; C windows of
        // distinct tiles are disjoint.
        let mut cwin = unsafe { shared.window(r0, c0, nr, nc) };
        gemm_with(-1.0, &a_strip, &b_strip, 1.0, &mut cwin, bs);
    };

    let (card_count, host_count) = std::thread::scope(|s| {
        let mut card_handles = Vec::new();
        for _ in 0..card_threads {
            card_handles.push(s.spawn(|| {
                let mut done = 0;
                while let Some(idx) = deque.steal_front() {
                    run_tile(idx, &knc_bs);
                    done += 1;
                }
                done
            }));
        }
        let mut host_handles = Vec::new();
        for _ in 0..host_threads {
            host_handles.push(s.spawn(|| {
                let mut done = 0;
                while let Some(idx) = deque.steal_back() {
                    run_tile(idx, &host_bs);
                    done += 1;
                }
                done
            }));
        }
        (
            card_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>(),
            host_handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>(),
        )
    });

    *c = shared.cell.into_inner();
    assert_eq!(card_count + host_count, tiles.len(), "every tile computed");
    (card_count, host_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_blas::gemm::gemm_naive;
    use phi_matrix::MatGen;

    fn reference(a: &Matrix<f64>, b: &Matrix<f64>, c0: &Matrix<f64>) -> Matrix<f64> {
        let mut r = c0.clone();
        gemm_naive(-1.0, &a.view(), &b.view(), 1.0, &mut r.view_mut());
        r
    }

    #[test]
    fn stolen_tiles_reassemble_exact_product() {
        let (m, n, k) = (61, 47, 33);
        let a = MatGen::new(1).matrix::<f64>(m, k);
        let b = MatGen::new(2).matrix::<f64>(k, n);
        let c0 = MatGen::new(3).matrix::<f64>(m, n);
        let expect = reference(&a, &b, &c0);

        for (grid, card, host) in [
            ((4, 4), 1, 1),
            ((3, 5), 1, 3),
            ((1, 1), 1, 0),
            ((2, 2), 0, 2),
        ] {
            let mut c = c0.clone();
            let (nc, nh) = offload_gemm_numeric(&a, &b, &mut c, grid, card, host);
            assert_eq!(nc + nh, grid.0.min(m) * grid.1.min(n));
            let diff = c.max_abs_diff(&expect);
            assert!(diff < 1e-11, "grid {grid:?}: diff {diff}");
        }
    }

    #[test]
    fn ragged_tiles_merge_and_stay_exact() {
        // Sizes chosen so tiles are ragged in both dimensions.
        let (m, n, k) = (103, 57, 19);
        let a = MatGen::new(5).matrix::<f64>(m, k);
        let b = MatGen::new(6).matrix::<f64>(k, n);
        let c0 = MatGen::new(7).matrix::<f64>(m, n);
        let expect = reference(&a, &b, &c0);
        let mut c = c0.clone();
        offload_gemm_numeric(&a, &b, &mut c, (4, 4), 2, 2);
        assert!(c.max_abs_diff(&expect) < 1e-11);
    }

    #[test]
    fn both_sides_get_work_on_big_grids() {
        // Thread scheduling decides the split, so one side occasionally
        // drains the deque before the other starts (especially in release
        // builds where tiles are fast); retry until both participate.
        let (m, n, k) = (96, 96, 24);
        let a = MatGen::new(8).matrix::<f64>(m, k);
        let b = MatGen::new(9).matrix::<f64>(k, n);
        let expect = reference(&a, &b, &Matrix::<f64>::zeros(m, n));
        for attempt in 0..20 {
            let mut c = Matrix::<f64>::zeros(m, n);
            let (card, host) = offload_gemm_numeric(&a, &b, &mut c, (12, 12), 1, 1);
            assert_eq!(card + host, 144);
            assert!(c.max_abs_diff(&expect) < 1e-10);
            if card > 0 && host > 0 {
                return;
            }
            let _ = attempt;
        }
        panic!("one side starved in 20 consecutive runs");
    }
}
