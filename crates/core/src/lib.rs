//! `phi-hpl` — the paper's primary contribution, rebuilt in Rust.
//!
//! Three Linpack flavours, exactly as in Heinecke et al. (IPDPS 2013):
//!
//! * [`native`] — Linpack running *entirely on the coprocessor*
//!   (Section IV): blocked LU with partial pivoting scheduled dynamically
//!   over the compact panel DAG, with master-thread-only critical
//!   sections, super-stages and thread regrouping; plus the static
//!   look-ahead baseline it is compared against in Fig. 6/7.
//! * [`offload`] — the offload DGEMM engine (Section V-B, Fig. 10):
//!   tiles DMA'd over PCIe through memory-mapped queues, dynamic
//!   host/card work stealing from the two ends of the tile sequence,
//!   run-time tile-size selection, and partial-tile merging.
//! * [`hybrid`] — hybrid HPL (Section V): the host runs panel
//!   factorization, swapping, DTRSM and broadcasts while trailing updates
//!   are offloaded; three look-ahead schemes (none / basic / pipelined,
//!   Fig. 8) on one node or a P × Q cluster (Fig. 9, Table III).
//!
//! Every flavour exists in two backends sharing the scheduler code:
//!
//! * a **numeric backend** operating on real matrices via `phi-blas`
//!   (used at small N by tests and examples, validated with the HPL
//!   residual criterion), and
//! * a **model backend** in which the same control flow advances virtual
//!   time from the calibrated `phi-knc` / `phi-xeon` machine models (used
//!   at paper scale by the benchmark regenerators).

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod distributed;
pub mod energy;
pub mod hpldat;
pub mod hybrid;
pub mod native;
pub mod offload;
pub mod refine;
pub mod report;
pub mod workload;

pub use distributed::{factorize_distributed, factorize_distributed_with, DistError, RecvPolicy};
pub use hpldat::HplDat;
pub use hybrid::{
    simulate_cluster_faulty, ClusterResult, FaultyClusterResult, FtPolicy, HybridConfig, Lookahead,
    WorkDivision,
};
pub use native::{NativeConfig, NativeScheme};
pub use phi_fabric::RemapStrategy;
pub use refine::{solve_mixed_precision, RefineResult};
pub use report::{hpl_flops, FaultSummary, GigaflopsReport};
pub use workload::{
    simulate_stencil_cluster, DgemmWorkload, SpmvWorkload, StencilClusterConfig,
    StencilClusterReport, StencilWorkload, Workload, WorkloadKind,
};
