//! Property tests for the Linpack flavours: numeric backends must agree
//! with their sequential oracles on arbitrary shapes, and the timed
//! backends must respect physical and algorithmic invariants for
//! arbitrary configurations.
//!
//! Driven by the in-repo deterministic [`phi_matrix::HplRng`] (no
//! external proptest dependency): each property runs over a fixed-seed
//! sweep of randomized cases.

use phi_blas::gemm::{gemm_naive, BlockSizes};
use phi_blas::lu::getrf;
use phi_fabric::ProcessGrid;
use phi_hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use phi_hpl::native::factorize_parallel;
use phi_hpl::offload::{offload_gemm_numeric, OffloadModel};
use phi_hpl::refine::solve_mixed_precision;
use phi_knc::Precision;
use phi_matrix::{hpl_residual, HplRng, MatGen, Matrix};
use phi_sched::GroupPlan;

/// Deterministic case generator for the sweeps below.
struct Cases(HplRng);

impl Cases {
    fn new(seed: u64) -> Self {
        Self(HplRng::new(seed))
    }
    fn index(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.0.next_u64() % (hi - lo) as u64) as usize
    }
    fn seed(&mut self) -> u64 {
        self.0.next_u64() % 1000
    }
}

/// Offload tile-stealing GEMM equals the naive product for any shape,
/// grid and thread mix.
#[test]
fn offload_numeric_is_exact() {
    let mut cases = Cases::new(0x0FF1);
    let mut ran = 0;
    while ran < 24 {
        let m = cases.index(1, 80);
        let n = cases.index(1, 80);
        let k = cases.index(1, 30);
        let gr = cases.index(1, 6);
        let gc = cases.index(1, 6);
        let card_threads = cases.index(0, 3);
        let host_threads = cases.index(0, 3);
        let seed = cases.seed();
        if card_threads + host_threads == 0 {
            continue;
        }
        ran += 1;
        let a = MatGen::new(seed).matrix::<f64>(m, k);
        let b = MatGen::new(seed + 1).matrix::<f64>(k, n);
        let c0 = MatGen::new(seed + 2).matrix::<f64>(m, n);
        let mut expect = c0.clone();
        gemm_naive(-1.0, &a.view(), &b.view(), 1.0, &mut expect.view_mut());
        let mut c = c0.clone();
        offload_gemm_numeric(&a, &b, &mut c, (gr, gc), card_threads, host_threads);
        assert!(c.max_abs_diff(&expect) < 1e-10 * (k as f64 + 1.0));
    }
}

/// DAG-parallel LU matches sequential getrf for any shape, panel
/// width and group plan.
#[test]
fn parallel_lu_matches_sequential() {
    let mut cases = Cases::new(0x1AB5);
    let mut ran = 0;
    while ran < 24 {
        let n = cases.index(2, 64);
        let nb = cases.index(1, 20);
        let threads = cases.index(1, 6);
        let tpg = cases.index(1, 3);
        let seed = cases.seed();
        if tpg > threads {
            continue;
        }
        ran += 1;
        let a0 = MatGen::new(seed).matrix::<f64>(n, n);
        let mut seq = a0.clone();
        let Ok(piv_seq) = getrf(&mut seq.view_mut(), nb, &BlockSizes::default()) else {
            continue; // singular draw: astronomically unlikely
        };
        let mut par = a0.clone();
        let piv_par = factorize_parallel(&mut par, nb, &GroupPlan::new(threads, tpg)).unwrap();
        assert_eq!(piv_par, piv_seq);
        assert!(par.max_abs_diff(&seq) < 1e-9);
    }
}

/// Mixed-precision refinement reaches f64 accuracy on random HPL
/// systems.
#[test]
fn mixed_precision_converges() {
    let mut cases = Cases::new(0x3EF1);
    for _ in 0..24 {
        let n = cases.index(8, 96);
        let seed = cases.seed();
        let a = MatGen::new(seed).matrix::<f64>(n, n);
        let b = MatGen::new(seed + 1).rhs::<f64>(n);
        let Ok(res) = solve_mixed_precision(&a, &b, 16, 12) else {
            continue;
        };
        assert!(
            res.residual.passed,
            "n={n}: {}",
            res.residual.scaled_residual
        );
    }
}

/// For any feasible hybrid configuration, the look-ahead ladder holds
/// and efficiency stays inside (0, 1).
#[test]
fn hybrid_lookahead_ladder_everywhere() {
    let mut cases = Cases::new(0x1ADD);
    for _ in 0..12 {
        let n_blocks = cases.index(40, 120);
        let p = cases.index(1, 3);
        let q = cases.index(1, 3);
        let cards = cases.index(1, 3);
        let n = n_blocks * 1200;
        let grid = ProcessGrid::new(p, q);
        let mut cfg = HybridConfig::new(n, grid, cards);
        cfg.host_mem_gib = 2048.0; // lift the memory gate for the sweep
        let mut effs = Vec::new();
        for la in [Lookahead::None, Lookahead::Basic, Lookahead::Pipelined] {
            cfg.lookahead = la;
            let r = simulate_cluster(&cfg, false);
            let e = r.report.efficiency();
            assert!(e > 0.0 && e < 1.0, "eff {e}");
            effs.push(e);
        }
        assert!(effs[0] <= effs[1] + 1e-9, "basic >= none: {effs:?}");
        assert!(effs[1] <= effs[2] + 1e-9, "pipelined >= basic: {effs:?}");
    }
}

/// The offload DES never exceeds aggregate peak, is deterministic,
/// and its card-busy accounting stays within the run time.
#[test]
fn offload_model_physical_invariants() {
    let mut cases = Cases::new(0x0DE5);
    for _ in 0..12 {
        let size = cases.index(5, 80);
        let cards = cases.index(1, 3);
        let host_cores = cases.index(0, 13);
        let g = cases.index(1, 9);
        let n = size * 1000;
        let model = OffloadModel::default();
        let out = model.simulate_with_grid(n, n, cards, host_cores as f64, (g, g));
        let peak = model.card.chip.full_peak_gflops(Precision::F64) * cards as f64
            + model.host.cfg.peak_gflops();
        assert!(
            out.gflops > 0.0 && out.gflops < peak,
            "{} vs {peak}",
            out.gflops
        );
        assert!(out.card_busy_s <= out.time_s * cards as f64 + 1e-9);
        assert_eq!(out.card_tiles + out.host_tiles, g * g);
        let again = model.simulate_with_grid(n, n, cards, host_cores as f64, (g, g));
        assert_eq!(out.time_s, again.time_s, "determinism");
    }
}

#[test]
fn hybrid_memory_gate_is_tight() {
    // Just over the gate must panic; just under must run.
    let grid = ProcessGrid::new(1, 1);
    let over = HybridConfig::new(100_000, grid, 1); // 80 GB > 64 GB
    assert!(std::panic::catch_unwind(|| simulate_cluster(&over, false)).is_err());
    let under = HybridConfig::new(84_000, grid, 1); // 56 GB < 64 GB
    let r = simulate_cluster(&under, false);
    assert!(r.report.gflops > 0.0);
}

#[test]
fn report_breakdown_consistency() {
    // Traced native runs report breakdowns whose total is bounded by
    // lanes × wall time.
    let cfg = phi_hpl::native::NativeConfig::new(4096);
    let (r, trace) = phi_hpl::native::model::simulate_dynamic_traced(&cfg, true);
    let lane_count = trace.spans().iter().map(|s| s.lane).max().unwrap_or(0) as f64 + 1.0;
    let busy: f64 = r.breakdown.iter().map(|(_, t)| t).sum();
    assert!(
        busy <= lane_count * r.time_s * 1.001,
        "{busy} vs {}",
        lane_count * r.time_s
    );
    let mat = MatGen::new(1).matrix::<f64>(8, 8);
    let x = phi_blas::lu::lu_solve(&mat, &[1.0; 8], 4).unwrap();
    assert!(hpl_residual(&mat.view(), &x, &[1.0; 8]).passed);
    let _ = Matrix::<f64>::zeros(0, 0);
}
