//! End-to-end fault-tolerance acceptance tests for the phi-faults PR.
//!
//! Numeric: a hybrid blocked LU whose trailing updates run through the
//! offload tile-stealing engine loses its coprocessor mid-factorization.
//! Per the paper's Section V work division, the card's share drops to
//! zero and the host absorbs every remaining tile — the factorization
//! completes and the solve still passes the HPL residual criterion.
//!
//! Timed: integration-level determinism — the same fault-campaign seed
//! reproduces a bit-identical degraded run across independent
//! simulations, and a zero-fault plan leaves the pristine simulator's
//! outputs untouched.

use phi_blas::gemm::BlockSizes;
use phi_blas::lu::{getf2, getrf, LuFactors};
use phi_blas::{laswp_forward, trsm_left_lower_unit};
use phi_fabric::ProcessGrid;
use phi_faults::{FaultKind, FaultPlan};
use phi_hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use phi_hpl::offload::offload_gemm_numeric;
use phi_hpl::{simulate_cluster_faulty, FtPolicy};
use phi_matrix::{hpl_residual, MatGen, Matrix};

/// The paper's single-node hybrid configuration (Table II scale) under
/// the given look-ahead scheme.
fn single_node(scheme: Lookahead) -> HybridConfig {
    let mut cfg = HybridConfig::new(30_000, ProcessGrid::new(1, 1), 1);
    cfg.lookahead = scheme;
    cfg
}

/// Copies the `nr × nc` block of `a` anchored at `(r0, c0)` into an
/// owned matrix — the staging buffer a real offload engine would DMA.
fn block(a: &Matrix<f64>, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix<f64> {
    Matrix::from_fn(nr, nc, |i, j| a[(r0 + i, c0 + j)])
}

/// Blocked right-looking LU (mirror of `getrf`) whose trailing update
/// `A22 -= L21 · U12` runs through the offload tile-stealing engine.
/// From panel `death_panel` onward the card is gone (`card_threads = 0`)
/// and host workers steal every tile.
fn factorize_with_card_death(
    a: &mut Matrix<f64>,
    nb: usize,
    death_panel: usize,
) -> (Vec<usize>, usize, usize) {
    let (m, n) = (a.rows(), a.cols());
    let steps = m.min(n);
    let mut ipiv = vec![0usize; steps];
    let mut panel_piv = Vec::new();
    let (mut card_tiles, mut host_tiles) = (0, 0);

    let mut j = 0;
    let mut panel_idx = 0;
    while j < steps {
        let jb = nb.min(steps - j);
        {
            let mut panel = a.sub_mut(j, j, m - j, jb);
            getf2(&mut panel, &mut panel_piv, j).expect("panel factorization");
        }
        for (t, &p) in panel_piv.iter().enumerate() {
            ipiv[j + t] = j + p;
        }
        if j > 0 {
            let mut left = a.sub_mut(j, 0, m - j, j);
            laswp_forward(&mut left, &panel_piv);
        }
        if j + jb < n {
            {
                let mut right = a.sub_mut(j, j + jb, m - j, n - j - jb);
                laswp_forward(&mut right, &panel_piv);
            }
            {
                let l11 = a.sub(j, j, jb, jb).to_matrix();
                let mut u12 = a.sub_mut(j, j + jb, jb, n - j - jb);
                trsm_left_lower_unit(&l11.view(), &mut u12);
            }
            if j + jb < m {
                let l21 = block(a, j + jb, j, m - j - jb, jb);
                let u12 = block(a, j, j + jb, jb, n - j - jb);
                let mut a22 = block(a, j + jb, j + jb, m - j - jb, n - j - jb);
                // The card dies between panels: from `death_panel` on,
                // its share of the tile grid is zero (§V re-division)
                // and the host side absorbs the full update.
                let card_threads = if panel_idx >= death_panel { 0 } else { 1 };
                let (ct, ht) = offload_gemm_numeric(&l21, &u12, &mut a22, (3, 3), card_threads, 2);
                card_tiles += ct;
                host_tiles += ht;
                for i in 0..a22.rows() {
                    for c in 0..a22.cols() {
                        a[(j + jb + i, j + jb + c)] = a22[(i, c)];
                    }
                }
            }
        }
        j += jb;
        panel_idx += 1;
    }
    (ipiv, card_tiles, host_tiles)
}

/// The acceptance criterion of the fault-injection issue: a hybrid run
/// with one card killed mid-factorization completes degraded and the
/// solution still passes the HPL residual test.
#[test]
fn card_death_mid_factorization_passes_hpl_residual() {
    let n = 96;
    let nb = 16;
    let a0 = MatGen::new(0xFA17).matrix::<f64>(n, n);
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();

    let mut lu = a0.clone();
    // Six panels; the card survives the first two updates only.
    let (ipiv, card_tiles, host_tiles) = factorize_with_card_death(&mut lu, nb, 2);
    assert!(card_tiles > 0, "card did work before dying");
    assert!(host_tiles > 0, "host absorbed the degraded updates");

    // The degraded factorization is still the factorization: it matches
    // the sequential oracle bit-for-bit in pivots.
    let mut oracle = a0.clone();
    let oracle_ipiv = getrf(&mut oracle.view_mut(), nb, &BlockSizes::default()).unwrap();
    assert_eq!(
        ipiv, oracle_ipiv,
        "pivot sequence diverged after card death"
    );

    let x = LuFactors { lu, ipiv }.solve(&b);
    let report = hpl_residual(&a0.view(), &x, &b);
    assert!(
        report.passed,
        "degraded run failed HPL residual: {}",
        report.scaled_residual
    );
}

/// Killing the card at panel 0 means the host runs the whole update
/// alone — the fully-degraded limit must also pass.
#[test]
fn host_only_fallback_passes_hpl_residual() {
    let n = 64;
    let a0 = MatGen::new(0xDEAD).matrix::<f64>(n, n);
    let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

    let mut lu = a0.clone();
    let (ipiv, card_tiles, host_tiles) = factorize_with_card_death(&mut lu, 16, 0);
    assert_eq!(card_tiles, 0, "dead card stole tiles");
    assert!(host_tiles > 0);

    let x = LuFactors { lu, ipiv }.solve(&b);
    assert!(hpl_residual(&a0.view(), &x, &b).passed);
}

/// Integration-level replay determinism: two independent simulations of
/// the same seeded campaign agree bit-for-bit in fingerprint, wall time
/// and fault accounting.
#[test]
fn campaign_seed_replays_bit_identically_across_runs() {
    let cfg = single_node(Lookahead::Pipelined);
    let horizon = simulate_cluster(&cfg, false).report.time_s;
    for seed in [0x5EED_u64, 0xB00B5, 7] {
        let plan = FaultPlan::campaign(seed, horizon, 6);
        let one = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
        let two = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
        assert_eq!(
            one.run_fingerprint(),
            two.run_fingerprint(),
            "seed {seed:#x}"
        );
        assert_eq!(
            one.result.report.time_s.to_bits(),
            two.result.report.time_s.to_bits()
        );
        assert_eq!(one.result.report.faults, two.result.report.faults);
    }
}

/// Integration-level zero-fault identity: routing the pristine
/// configuration through the fault-tolerant path with an empty plan
/// changes nothing, to the last bit.
#[test]
fn empty_plan_is_invisible() {
    for scheme in [Lookahead::None, Lookahead::Basic, Lookahead::Pipelined] {
        let cfg = single_node(scheme);
        let healthy = simulate_cluster(&cfg, false);
        let faulty = simulate_cluster_faulty(&cfg, &FaultPlan::none(), &FtPolicy::none(), false);
        assert_eq!(
            healthy.report.time_s.to_bits(),
            faulty.result.report.time_s.to_bits()
        );
        assert_eq!(
            healthy.report.gflops.to_bits(),
            faulty.result.report.gflops.to_bits()
        );
    }
}

/// A transient fault (link degradation) costs time but loses no cards;
/// a card death costs more and completes degraded — the ordering the
/// fault campaign tabulates.
#[test]
fn degradation_ordering_holds_end_to_end() {
    let cfg = single_node(Lookahead::Pipelined);
    let healthy = simulate_cluster(&cfg, false).report.time_s;
    let transient = FaultPlan::none().with_event(
        healthy * 0.2,
        FaultKind::Straggler {
            core_fraction: 1.0,
            slowdown: 1.4,
            duration_s: healthy * 0.3,
        },
    );
    let fatal = FaultPlan::none().with_event(healthy * 0.2, FaultKind::CardDeath { card: 0 });
    let policy = FtPolicy::none();
    let t = simulate_cluster_faulty(&cfg, &transient, &policy, false);
    let f = simulate_cluster_faulty(&cfg, &fatal, &policy, false);
    assert!(t.result.report.time_s > healthy);
    assert!(f.result.report.time_s > t.result.report.time_s);
    assert_eq!(f.result.report.faults.unwrap().cards_lost, 1);
    assert_eq!(t.result.report.faults.unwrap().cards_lost, 0);
}
