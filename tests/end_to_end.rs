//! Cross-crate integration tests: full solve paths through the numeric
//! backends, exercising matrix generation, packing, kernels, scheduling
//! and verification together.

use linpack_phi::blas::gemm::{gemm_naive, BlockSizes, MicroKernelKind};
use linpack_phi::blas::lu::{getrf, lu_solve, LuFactors};
use linpack_phi::hpl::native::factorize_parallel;
use linpack_phi::hpl::offload::offload_gemm_numeric;
use linpack_phi::matrix::residual::HPL_THRESHOLD;
use linpack_phi::matrix::{hpl_residual, MatGen, Matrix};
use linpack_phi::sched::GroupPlan;

#[test]
fn hpl_acceptance_across_sizes_and_blockings() {
    for (n, nb) in [(31usize, 4usize), (64, 16), (150, 24), (256, 32)] {
        let a = MatGen::new(n as u64).matrix::<f64>(n, n);
        let b = MatGen::new(n as u64 + 1).rhs::<f64>(n);
        let x = lu_solve(&a, &b, nb).expect("non-singular");
        let rep = hpl_residual(&a.view(), &x, &b);
        assert!(
            rep.passed && rep.scaled_residual < HPL_THRESHOLD,
            "n={n} nb={nb}: scaled {:.3}",
            rep.scaled_residual
        );
    }
}

#[test]
fn parallel_and_sequential_solutions_agree_bitwise_on_pivots() {
    let n = 192;
    let nb = 24;
    let a = MatGen::new(1).matrix::<f64>(n, n);

    let mut seq = a.clone();
    let piv_seq = getrf(&mut seq.view_mut(), nb, &BlockSizes::default()).unwrap();

    for plan in [
        GroupPlan::new(2, 1),
        GroupPlan::new(4, 2),
        GroupPlan::new(6, 3),
    ] {
        let mut par = a.clone();
        let piv_par = factorize_parallel(&mut par, nb, &plan).unwrap();
        assert_eq!(piv_seq, piv_par, "plan {plan:?}");
        assert!(
            par.max_abs_diff(&seq) < 1e-10,
            "plan {plan:?}: factor drift {}",
            par.max_abs_diff(&seq)
        );
    }
}

#[test]
fn solve_then_verify_full_pipeline_with_knc_kernels() {
    // Use the KNC-shaped GEMM inside the sequential LU so the paper's
    // register blocking carries all of the trailing updates.
    let n = 120;
    let nb = 30;
    let a = MatGen::new(5).matrix::<f64>(n, n);
    let b = MatGen::new(6).rhs::<f64>(n);
    let mut lu = a.clone();
    let ipiv = getrf(&mut lu.view_mut(), nb, &BlockSizes::knc()).unwrap();
    let x = LuFactors { lu, ipiv }.solve(&b);
    assert!(hpl_residual(&a.view(), &x, &b).passed);
}

#[test]
fn offload_trailing_update_inside_lu_stage() {
    // Emulate one hybrid HPL stage numerically: factor a panel, solve U,
    // then run the trailing update through the tile-stealing engine, and
    // compare against a fully sequential stage.
    let n = 160;
    let nb = 32;
    let a0 = MatGen::new(9).matrix::<f64>(n, n);

    // Sequential reference: one blocked step.
    let mut reference = a0.clone();
    let piv = getrf(&mut reference.view_mut(), nb, &BlockSizes::default()).unwrap();

    // Manual stage with offload update.
    let mut manual = a0.clone();
    {
        use linpack_phi::blas::laswp::laswp_forward;
        use linpack_phi::blas::lu::getf2;
        use linpack_phi::blas::trsm::trsm_left_lower_unit;
        let mut ipiv0 = Vec::new();
        {
            let mut panel = manual.sub_mut(0, 0, n, nb);
            getf2(&mut panel, &mut ipiv0, 0).unwrap();
        }
        {
            let mut right = manual.sub_mut(0, nb, n, n - nb);
            laswp_forward(&mut right, &ipiv0);
        }
        let l11 = manual.sub(0, 0, nb, nb).to_matrix();
        {
            let mut u12 = manual.sub_mut(0, nb, nb, n - nb);
            trsm_left_lower_unit(&l11.view(), &mut u12);
        }
        // Trailing update via the offload engine.
        let l21 = manual.sub(nb, 0, n - nb, nb).to_matrix();
        let u12 = manual.sub(0, nb, nb, n - nb).to_matrix();
        let mut a22 = manual.sub(nb, nb, n - nb, n - nb).to_matrix();
        offload_gemm_numeric(&l21, &u12, &mut a22, (3, 3), 1, 1);
        manual
            .sub_mut(nb, nb, n - nb, n - nb)
            .copy_from(&a22.view());
        assert_eq!(&piv[..nb], &ipiv0[..]);
    }
    // The first panel + first trailing update must agree with getrf's
    // state after its first stage; compare the A22 block after completing
    // the reference factorization is not possible directly, so redo the
    // comparison against an explicitly computed first stage.
    let mut expect = a0.clone();
    {
        use linpack_phi::blas::laswp::laswp_forward;
        use linpack_phi::blas::lu::getf2;
        use linpack_phi::blas::trsm::trsm_left_lower_unit;
        let mut ipiv0 = Vec::new();
        {
            let mut panel = expect.sub_mut(0, 0, n, nb);
            getf2(&mut panel, &mut ipiv0, 0).unwrap();
        }
        {
            let mut right = expect.sub_mut(0, nb, n, n - nb);
            laswp_forward(&mut right, &ipiv0);
        }
        let l11 = expect.sub(0, 0, nb, nb).to_matrix();
        {
            let mut u12 = expect.sub_mut(0, nb, nb, n - nb);
            trsm_left_lower_unit(&l11.view(), &mut u12);
        }
        let l21 = expect.sub(nb, 0, n - nb, nb).to_matrix();
        let u12 = expect.sub(0, nb, nb, n - nb).to_matrix();
        let mut a22 = expect.sub(nb, nb, n - nb, n - nb).to_matrix();
        gemm_naive(-1.0, &l21.view(), &u12.view(), 1.0, &mut a22.view_mut());
        expect
            .sub_mut(nb, nb, n - nb, n - nb)
            .copy_from(&a22.view());
    }
    assert!(
        manual.max_abs_diff(&expect) < 1e-11,
        "offload stage drift {}",
        manual.max_abs_diff(&expect)
    );
}

#[test]
fn kernel_variants_agree_through_whole_factorization() {
    let n = 96;
    let a = MatGen::new(11).matrix::<f64>(n, n);
    let run = |kernel: MicroKernelKind, mr: usize| {
        let bs = BlockSizes {
            mr,
            kernel,
            ..BlockSizes::knc()
        };
        let mut m = a.clone();
        let piv = getrf(&mut m.view_mut(), 16, &bs).unwrap();
        (m, piv)
    };
    let (m1, p1) = run(MicroKernelKind::Kernel1, 31);
    let (m2, p2) = run(MicroKernelKind::Kernel2, 30);
    assert_eq!(p1, p2);
    assert!(m1.max_abs_diff(&m2) < 1e-12);
}

#[test]
fn generator_supports_distributed_hpl_layout() {
    // A 2x2 grid generating its local blocks must tile the global matrix.
    let n = 32;
    let gen = MatGen::new(77);
    let global = gen.matrix::<f64>(n, n);
    for (r0, c0) in [(0, 0), (0, 16), (16, 0), (16, 16)] {
        let mut local = Matrix::<f64>::zeros(16, 16);
        gen.fill_window(&mut local, r0, c0, n);
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(local[(i, j)], global[(r0 + i, c0 + j)]);
            }
        }
    }
}
