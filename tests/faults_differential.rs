//! Differential test layer for the fault-tolerant cluster simulator.
//!
//! Two invariants lock the recovery math against silent rot:
//!
//! 1. **Zero-fault bit-identity** — `simulate_cluster_faulty` under
//!    `FaultPlan::none()` + `FtPolicy::none()` must reproduce
//!    `simulate_cluster` bit for bit, across every grid shape ×
//!    broadcast scheme × look-ahead combination.
//! 2. **Monotonicity** — any non-empty plan can only cost: degraded
//!    time ≥ fault-free time, degraded GF/s ≤ fault-free GF/s.
//!
//! Plus the acceptance scenarios: a host-rank death on the paper's
//! Table III 100-node system (N = 825K, 10 × 10) completes under the
//! locality-preserving patch remap with ≥ 10× less redistribution
//! volume than the wholesale 9 × 11 reshape, and the patch strategy
//! never recovers slower than wholesale on any grid of the sweep. The
//! numeric (HPL-residual) half of the recovery acceptance lives in
//! `phi-blas`'s `checkpoint_restore_resumes_bit_identically` and is
//! re-exercised here end to end through the facade.

use linpack_phi::blas::gemm::BlockSizes;
use linpack_phi::blas::lu::{getrf, getrf_stage, LuFactors};
use linpack_phi::fabric::{BcastScheme, ProcessGrid};
use linpack_phi::faults::{Escalation, FaultKind, FaultPlan};
use linpack_phi::hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use linpack_phi::hpl::{simulate_cluster_faulty, FtPolicy, RemapStrategy};
use linpack_phi::matrix::{hpl_residual, MatGen};

/// The sweep's grid shapes with problem sizes that fit 64 GiB/node.
const GRIDS: [(usize, usize, usize); 4] = [
    (84_000, 1, 1),
    (168_000, 2, 2),
    (240_000, 4, 8),
    (825_000, 10, 10),
];

const LOOKAHEADS: [Lookahead; 3] = [Lookahead::None, Lookahead::Basic, Lookahead::Pipelined];

fn sweep_cfgs() -> Vec<HybridConfig> {
    let mut cfgs = Vec::new();
    for (n, p, q) in GRIDS {
        for bcast in BcastScheme::ALL {
            for lookahead in LOOKAHEADS {
                let mut cfg = HybridConfig::new(n, ProcessGrid::new(p, q), 1);
                cfg.bcast = bcast;
                cfg.lookahead = lookahead;
                cfgs.push(cfg);
            }
        }
    }
    cfgs
}

#[test]
fn zero_fault_plan_is_bit_identical_everywhere() {
    for cfg in sweep_cfgs() {
        let base = simulate_cluster(&cfg, false);
        let ft = simulate_cluster_faulty(&cfg, &FaultPlan::none(), &FtPolicy::none(), false);
        let label = format!(
            "{}/{}x{}/{:?}/{:?}",
            cfg.n, cfg.grid.p, cfg.grid.q, cfg.bcast, cfg.lookahead
        );
        assert_eq!(
            ft.result.report.time_s.to_bits(),
            base.report.time_s.to_bits(),
            "time diverged on {label}"
        );
        assert_eq!(
            ft.result.report.gflops.to_bits(),
            base.report.gflops.to_bits(),
            "gflops diverged on {label}"
        );
        let f = ft.result.report.faults.expect("accounting present");
        assert_eq!(
            (f.events, f.cards_lost, f.hosts_lost, f.degraded_stages),
            (0, 0, 0, 0),
            "{label}"
        );
        assert_eq!(f.fallback_grid, None, "{label}");
        assert_eq!(f.checkpoint_s, 0.0, "{label}");
        assert_eq!(f.recovery_s, 0.0, "{label}");
    }
}

#[test]
fn non_empty_plans_are_monotone_everywhere() {
    for cfg in sweep_cfgs() {
        let base = simulate_cluster(&cfg, false);
        // A seeded cluster campaign scaled to this run's length, so
        // every configuration sees transient windows, deaths and
        // cascades that actually overlap the run.
        let plan = FaultPlan::cluster_campaign(
            0xD1FF ^ (cfg.n as u64) ^ ((cfg.grid.p as u64) << 40),
            base.report.time_s * 1.2,
            4,
            cfg.grid.size(),
            cfg.cards_per_node,
        );
        assert!(!plan.is_empty());
        let ft = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::none(), false);
        let label = format!(
            "{}/{}x{}/{:?}/{:?}",
            cfg.n, cfg.grid.p, cfg.grid.q, cfg.bcast, cfg.lookahead
        );
        assert!(
            ft.result.report.time_s >= base.report.time_s,
            "{label}: faulted run got faster ({} < {})",
            ft.result.report.time_s,
            base.report.time_s
        );
        assert!(
            ft.result.report.gflops <= base.report.gflops,
            "{label}: faulted run got more GF/s"
        );
    }
}

#[test]
fn table3_host_death_acceptance() {
    // Acceptance: the 100-node Table III system loses a host rank a
    // third of the way in. Under the default locality-preserving patch
    // remap the survivors keep their 10×10 coordinates and only the
    // dead rank's block-cyclic share moves — ≥ 10× less redistribution
    // volume than the wholesale 9×11 reshape of the same scenario —
    // and both complete with overhead_fraction < 1.
    let mut cfg = HybridConfig::new(825_000, ProcessGrid::new(10, 10), 1);
    cfg.lookahead = Lookahead::Pipelined;
    let healthy = simulate_cluster(&cfg, false);
    let plan = FaultPlan::none().with_event(
        healthy.report.time_s / 3.0,
        FaultKind::HostDeath { rank: 55 },
    );
    let ft = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
    let r = &ft.result.report;
    let f = r.faults.expect("accounting present");
    assert_eq!(f.hosts_lost, 1);
    assert_eq!(f.remap, RemapStrategy::Patch);
    assert_eq!(f.fallback_grid, None, "patch keeps the 10x10 grid");
    assert!(f.recovery_s > 0.0);
    assert!(f.blocks_moved > 0);
    let overhead = f.overhead_fraction(r.time_s);
    assert!(
        overhead > 0.0 && overhead < 1.0,
        "overhead_fraction = {overhead}"
    );
    // The same scenario under the wholesale reshape: survivors re-form
    // the 9×11 grid and the whole trailing submatrix moves.
    let whsl_pol = FtPolicy::default().with_remap(RemapStrategy::Wholesale);
    let fw = simulate_cluster_faulty(&cfg, &plan, &whsl_pol, false);
    let w = fw.result.report.faults.expect("accounting present");
    assert_eq!(w.fallback_grid, Some((9, 11)));
    assert!(
        w.blocks_moved >= 10 * f.blocks_moved,
        "patch must cut redistribution volume >= 10x: {} vs {}",
        f.blocks_moved,
        w.blocks_moved
    );
    assert!(f.recovery_s <= w.recovery_s);
    // The run replays bit-identically.
    let again = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
    assert_eq!(ft.run_fingerprint(), again.run_fingerprint());
}

#[test]
fn patch_remap_never_recovers_slower_than_wholesale() {
    // Dominance: on every grid of the sweep, a mid-run host death
    // recovered by the patch remap costs at most the wholesale reshape
    // — in redistribution volume and in recovery seconds. On grids too
    // small to patch (survivor floor), patch degrades *to* wholesale
    // and the two runs coincide exactly.
    for (n, p, q) in GRIDS {
        let mut cfg = HybridConfig::new(n, ProcessGrid::new(p, q), 1);
        cfg.lookahead = Lookahead::Pipelined;
        let size = cfg.grid.size();
        if size < 2 {
            continue; // a host death on 1x1 leaves no survivors
        }
        let healthy = simulate_cluster(&cfg, false);
        let plan = FaultPlan::none().with_event(
            healthy.report.time_s / 3.0,
            FaultKind::HostDeath { rank: size / 2 },
        );
        let patch = simulate_cluster_faulty(&cfg, &plan, &FtPolicy::default(), false);
        let whsl = simulate_cluster_faulty(
            &cfg,
            &plan,
            &FtPolicy::default().with_remap(RemapStrategy::Wholesale),
            false,
        );
        let fp = patch.result.report.faults.expect("accounting present");
        let fw = whsl.result.report.faults.expect("accounting present");
        let label = format!("{n}/{p}x{q}");
        assert!(
            fp.blocks_moved <= fw.blocks_moved,
            "{label}: patch moved more blocks ({} > {})",
            fp.blocks_moved,
            fw.blocks_moved
        );
        assert!(
            fp.recovery_s <= fw.recovery_s,
            "{label}: patch recovered slower ({} > {})",
            fp.recovery_s,
            fw.recovery_s
        );
        if fp.fallback_grid.is_some() {
            // Degraded to wholesale: the runs must coincide exactly.
            assert_eq!(fp.fallback_grid, fw.fallback_grid, "{label}");
            assert_eq!(
                patch.result.report.time_s.to_bits(),
                whsl.result.report.time_s.to_bits(),
                "{label}: degraded patch diverged from wholesale"
            );
        }
    }
}

#[test]
fn escalated_cascade_is_monotone_and_single_fingerprint() {
    // A CRC storm escalating into a card death must cost at least as
    // much as the storm alone, and the cascade carries one fingerprint
    // distinct from the storm's.
    let cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
    let healthy = simulate_cluster(&cfg, false);
    let t = healthy.report.time_s;
    let storm = FaultKind::PcieCrcStorm {
        stall_s: 2e-4,
        duration_s: t / 4.0,
    };
    let storm_only = FaultPlan::none().with_event(t / 3.0, storm);
    let cascade = FaultPlan::none()
        .with_cascade(
            t / 3.0,
            storm,
            Escalation::new(FaultKind::CardDeath { card: 0 }, t / 10.0, 1.0),
        )
        .resolved(3, t * 2.0);
    assert_ne!(storm_only.fingerprint(), cascade.fingerprint());
    let pol = FtPolicy::default();
    let t_storm = simulate_cluster_faulty(&cfg, &storm_only, &pol, false)
        .result
        .report
        .time_s;
    let t_cascade = simulate_cluster_faulty(&cfg, &cascade, &pol, false)
        .result
        .report
        .time_s;
    assert!(t_storm >= healthy.report.time_s);
    assert!(t_cascade > t_storm, "the escalated death must cost extra");
}

#[test]
fn checkpoint_restore_solve_passes_hpl_residual_via_facade() {
    // End-to-end numeric proof of the recovery model: interrupt a
    // blocked factorization mid-flight, restore the checkpoint, finish,
    // and pass HPL's acceptance test — bit-identical to never crashing.
    let (n, nb) = (128usize, 32usize);
    let a0 = MatGen::new(0xFA).matrix::<f64>(n, n);
    let b = MatGen::new(0xFB).rhs::<f64>(n);
    let bs = BlockSizes::default();

    let mut full = a0.clone();
    let piv_full = getrf(&mut full.view_mut(), nb, &bs).expect("non-singular");

    let mut a = a0.clone();
    let mut ipiv = vec![0usize; n];
    let mut j = 0;
    j = getrf_stage(&mut a.view_mut(), j, nb, &bs, &mut ipiv).expect("stage 0");
    let (ckpt_a, ckpt_piv, ckpt_j) = (a.clone(), ipiv.clone(), j);
    let (mut a, mut ipiv, mut j) = (ckpt_a, ckpt_piv, ckpt_j);
    while j < n {
        j = getrf_stage(&mut a.view_mut(), j, nb, &bs, &mut ipiv).expect("resumed stage");
    }
    assert_eq!(ipiv, piv_full);
    for i in 0..n {
        for c in 0..n {
            assert_eq!(a[(i, c)].to_bits(), full[(i, c)].to_bits(), "({i},{c})");
        }
    }
    let x = LuFactors { lu: a, ipiv }.solve(&b);
    assert!(hpl_residual(&a0.view(), &x, &b).passed);
}
