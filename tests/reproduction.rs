//! The headline reproduction checks: every number the abstract and
//! evaluation highlight, asserted against the timed backends. These are
//! the "shape" guarantees of the reproduction — who wins, by what
//! factor, where the crossovers fall.

use linpack_phi::fabric::ProcessGrid;
use linpack_phi::hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use linpack_phi::hpl::native::{NativeConfig, NativeScheme};
use linpack_phi::hpl::offload::OffloadModel;
use linpack_phi::knc::{GemmModel, Precision};

/// "Our native DGEMM implementation ... successfully utilizes close to
/// 90% of its peak compute capability" — 89.4%, 944 GFLOPS at k = 300.
#[test]
fn headline_dgemm() {
    let m = GemmModel::default();
    let eff = m.efficiency_vs_k(300, Precision::F64);
    assert!((eff - 0.894).abs() < 0.004, "DGEMM eff {eff:.4}");
    let gf = m.gflops_vs_k(300, Precision::F64);
    assert!((gf - 944.0).abs() < 5.0, "DGEMM {gf:.0} GFLOPS");
}

/// "Our native Linpack implementation ... achieves close to 80%
/// efficiency — the highest published co-processor efficiency" — 78.8%.
#[test]
fn headline_native_linpack() {
    let r = NativeConfig::new(30_720).simulate(NativeScheme::DynamicScheduling);
    assert!(
        (r.efficiency() - 0.788).abs() < 0.02,
        "native eff {:.4} ({:.0} GFLOPS)",
        r.efficiency(),
        r.gflops
    );
}

/// "our single-node hybrid implementation of Linpack also achieves
/// nearly 80% efficiency" — 79.8% with one card and pipelined look-ahead.
#[test]
fn headline_single_node_hybrid() {
    let cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
    let r = simulate_cluster(&cfg, false);
    assert!(
        (r.report.efficiency() - 0.798).abs() < 0.025,
        "hybrid eff {:.4}",
        r.report.efficiency()
    );
}

/// "it achieves over 76% efficiency while delivering the total
/// performance of 107 TFLOPS" on the 100-node cluster.
#[test]
fn headline_hundred_nodes() {
    let cfg = HybridConfig::new(825_000, ProcessGrid::new(10, 10), 1);
    let r = simulate_cluster(&cfg, false);
    let tf = r.report.gflops / 1e3;
    assert!((tf - 107.0).abs() < 6.0, "{tf:.1} TFLOPS");
    assert!(r.report.efficiency() > 0.73, "{:.4}", r.report.efficiency());
}

/// Fig. 6's crossover: dynamic scheduling beats static look-ahead below
/// 8K, and the two converge at 30K.
#[test]
fn dynamic_vs_static_shape() {
    for n in [2048usize, 4096, 6144] {
        let cfg = NativeConfig::new(n);
        let dy = cfg.simulate(NativeScheme::DynamicScheduling);
        let st = cfg.simulate(NativeScheme::StaticLookahead);
        // Clear wins at the small end, a narrowing margin approaching 8K
        // (the crossover the paper describes).
        let factor = if n <= 4096 { 1.02 } else { 1.0 };
        assert!(
            dy.gflops > st.gflops * factor,
            "n={n}: dynamic {:.0} vs static {:.0}",
            dy.gflops,
            st.gflops
        );
    }
    let cfg = NativeConfig::new(30_720);
    let dy = cfg.simulate(NativeScheme::DynamicScheduling);
    let st = cfg.simulate(NativeScheme::StaticLookahead);
    assert!(
        (dy.efficiency() - st.efficiency()).abs() < 0.03,
        "convergence at 30K: {:.3} vs {:.3}",
        dy.efficiency(),
        st.efficiency()
    );
}

/// The look-ahead ladder: none < basic < pipelined, with the pipelined
/// gain in the paper's 7–9% efficiency band (single node, one card).
#[test]
fn lookahead_ladder() {
    let run = |la: Lookahead| {
        let mut cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
        cfg.lookahead = la;
        simulate_cluster(&cfg, false).report.efficiency()
    };
    let none = run(Lookahead::None);
    let basic = run(Lookahead::Basic);
    let pipe = run(Lookahead::Pipelined);
    assert!(
        none < basic && basic < pipe,
        "{none:.3} {basic:.3} {pipe:.3}"
    );
    assert!(
        (0.04..0.12).contains(&(pipe - basic)),
        "pipelining gain {:.3}",
        pipe - basic
    );
}

/// Offload DGEMM: ≈85.4% on one card at 82K, ≈83% on two cards, with
/// the dual-card configuration degrading faster at small sizes.
#[test]
fn offload_dgemm_shape() {
    let m = OffloadModel::default();
    let peak = m.card.chip.full_peak_gflops(Precision::F64);
    let e1 = m.simulate(82_000, 82_000, 1, 0.0).gflops / peak;
    let e2 = m.simulate(82_000, 82_000, 2, 0.0).gflops / (2.0 * peak);
    assert!((e1 - 0.854).abs() < 0.02, "1-card {e1:.3}");
    assert!((e2 - 0.83).abs() < 0.025, "2-card {e2:.3}");
    assert!(e1 > e2);
}

/// The PCIe bound that sets the block size: Kt must exceed
/// 4·P/BW ≈ 950, and the paper's Kt = 1200 satisfies it.
#[test]
fn pcie_tile_bound() {
    let pcie = linpack_phi::fabric::PcieConfig::default();
    let min_kt = pcie.min_kt(950e9);
    assert!((900.0..1000.0).contains(&min_kt));
    assert!(1200.0 > min_kt);
}

/// Energy observation from the conclusion: two cards deliver ~6x the
/// host's FLOPS, so host-idle time is six times as costly as card-idle
/// time — the asymmetry driving the whole hybrid design.
#[test]
fn flops_asymmetry() {
    let card = GemmModel::default().chip.full_peak_gflops(Precision::F64);
    let host = linpack_phi::xeon::XeonConfig::default().peak_gflops();
    let ratio = 2.0 * card / host;
    assert!((5.5..7.5).contains(&ratio), "2 cards / host = {ratio:.2}");
}
