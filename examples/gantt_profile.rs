//! Renders the Fig. 7 Gantt charts: the LU execution profile of a 5K
//! problem under static look-ahead vs dynamic scheduling, as ASCII art
//! plus a CSV dump for external plotting.
//!
//! Run with: `cargo run --release --example gantt_profile [N] [--csv]`

use linpack_phi::hpl::native::{
    model::simulate_dynamic_traced, static_la::simulate_static_traced, NativeConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args
        .iter()
        .filter_map(|s| s.parse().ok())
        .next()
        .unwrap_or(5120);
    let csv = args.iter().any(|a| a == "--csv");

    let cfg = NativeConfig::new(n);
    let (st_rep, st_trace) = simulate_static_traced(&cfg, true);
    let (dy_rep, dy_trace) = simulate_dynamic_traced(&cfg, true);

    if csv {
        println!("# static trace\n{}", st_trace.to_csv());
        println!("# dynamic trace\n{}", dy_trace.to_csv());
        return;
    }

    println!("LU execution profile, N = {n} (Fig. 7)");
    println!("legend: P=DGETRF  S=DLASWP  T=DTRSM  G=DGEMM  .=barrier/idle\n");

    println!(
        "-- static look-ahead: {:.0} GFLOPS ({:.1}%), {:.4}s --",
        st_rep.gflops,
        100.0 * st_rep.efficiency(),
        st_rep.time_s
    );
    println!("{}", st_trace.gantt_ascii(110, st_rep.time_s));

    println!(
        "-- dynamic scheduling: {:.0} GFLOPS ({:.1}%), {:.4}s --",
        dy_rep.gflops,
        100.0 * dy_rep.efficiency(),
        dy_rep.time_s
    );
    println!("{}", dy_trace.gantt_ascii(110, dy_rep.time_s));

    println!("Per-kind totals (lane-seconds):");
    for (label, rep) in [("static", &st_rep), ("dynamic", &dy_rep)] {
        print!("  {label:>8}: ");
        for (kind, secs) in &rep.breakdown {
            print!("{}={:.4}s  ", kind.label(), secs);
        }
        println!();
    }
    println!(
        "\nDynamic reduces panel + barrier exposure; speedup {:.2}x at N = {n}.",
        st_rep.time_s / dy_rep.time_s
    );
}
