//! Quickstart: factorize and solve a dense system three ways — the
//! sequential reference, the paper's DAG-parallel scheduler on real
//! threads, and the tile-stealing offload decomposition — and verify all
//! of them with HPL's residual criterion.
//!
//! Run with: `cargo run --release --example quickstart`

use linpack_phi::blas::gemm::gemm_naive;
use linpack_phi::blas::lu::lu_solve;
use linpack_phi::hpl::native::solve_parallel;
use linpack_phi::hpl::offload::offload_gemm_numeric;
use linpack_phi::matrix::{hpl_residual, MatGen, Matrix};
use linpack_phi::sched::GroupPlan;

fn main() {
    let n = 384;
    let nb = 32;
    println!("Solving a {n}x{n} HPL system (NB = {nb})\n");

    let gen = MatGen::new(20130527); // the paper's publication era
    let a = gen.matrix::<f64>(n, n);
    let b = MatGen::new(7).rhs::<f64>(n);

    // 1. Sequential blocked LU (the reference every scheduler must match).
    let x_seq = lu_solve(&a, &b, nb).expect("matrix is non-singular");
    let r_seq = hpl_residual(&a.view(), &x_seq, &b);
    println!(
        "sequential getrf    : scaled residual {:.3e}  -> {}",
        r_seq.scaled_residual,
        if r_seq.passed { "PASSED" } else { "FAILED" }
    );

    // 2. The paper's dynamic DAG scheduling on real thread groups
    //    (Section IV-A): masters fetch tasks, members cooperate on the
    //    trailing GEMM.
    let plan = GroupPlan::new(4, 2);
    let x_par = solve_parallel(&a, &b, nb, &plan).expect("matrix is non-singular");
    let r_par = hpl_residual(&a.view(), &x_par, &b);
    println!(
        "DAG-parallel (4 thr): scaled residual {:.3e}  -> {}",
        r_par.scaled_residual,
        if r_par.passed { "PASSED" } else { "FAILED" }
    );
    let drift = x_seq
        .iter()
        .zip(&x_par)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_seq - x_par| : {drift:.3e} (schedulers agree)\n");

    // 3. Offload-DGEMM style trailing update: card steals tiles forward,
    //    host steals backward (Section V-B), reassembling the exact
    //    product.
    let k = 96;
    let am = gen.matrix::<f64>(n, k);
    let bm = MatGen::new(9).matrix::<f64>(k, n);
    let mut c = MatGen::new(10).matrix::<f64>(n, n);
    let mut c_ref = c.clone();
    gemm_naive(-1.0, &am.view(), &bm.view(), 1.0, &mut c_ref.view_mut());
    let (card_tiles, host_tiles) = offload_gemm_numeric(&am, &bm, &mut c, (4, 4), 1, 2);
    println!(
        "offload DGEMM       : card stole {card_tiles} tiles, host stole {host_tiles}, \
         max diff vs reference {:.3e}",
        c.max_abs_diff(&c_ref)
    );

    assert!(r_seq.passed && r_par.passed);
    assert!(c.approx_eq(&c_ref, 1e-10));
    let _ = Matrix::<f64>::zeros(0, 0);
    println!("\nAll three paths produce verified solutions.");
}
