//! Hybrid HPL on a cluster of host + coprocessor nodes: the Table III
//! experiment. Sweeps the three look-ahead schemes of Fig. 8 on a single
//! node, then scales the pipelined scheme from 1 to 100 nodes.
//!
//! Run with: `cargo run --release --example hybrid_cluster`

use linpack_phi::fabric::ProcessGrid;
use linpack_phi::hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};

fn main() {
    println!("Hybrid HPL (host + Knights Corner, NB = Kt = 1200)\n");

    // Fig. 8: the three look-ahead schemes on one node, one card.
    println!("Single node, N = 84,000, one coprocessor:");
    for (la, label) in [
        (Lookahead::None, "no look-ahead  (Fig. 8a)"),
        (Lookahead::Basic, "basic          (Fig. 8b)"),
        (Lookahead::Pipelined, "pipelined      (Fig. 8c)"),
    ] {
        let mut cfg = HybridConfig::new(84_000, ProcessGrid::new(1, 1), 1);
        cfg.lookahead = la;
        let r = simulate_cluster(&cfg, false);
        println!(
            "  {label}: {:.2} TFLOPS, {:.1}% efficiency, card idle {:.1}%",
            r.report.gflops / 1e3,
            100.0 * r.report.efficiency(),
            100.0 * r.card_idle_fraction
        );
    }

    // Scaling: the paper's cluster column (pipelined, 1 card per node).
    println!("\nCluster scaling (pipelined look-ahead, 1 card/node, 64 GB/node):");
    println!(
        "{:>7} {:>6} {:>10} {:>9}  paper",
        "N", "nodes", "TFLOPS", "eff"
    );
    for (n, p, q, paper) in [
        (84_000usize, 1usize, 1usize, "1.12 TF / 79.8%"),
        (168_000, 2, 2, "4.36 TF / 77.6%"),
        (825_000, 10, 10, "107.0 TF / 76.1%"),
    ] {
        let cfg = HybridConfig::new(n, ProcessGrid::new(p, q), 1);
        let r = simulate_cluster(&cfg, false);
        println!(
            "{:>7} {:>6} {:>10.2} {:>8.1}%  {paper}",
            n,
            p * q,
            r.report.gflops / 1e3,
            100.0 * r.report.efficiency()
        );
    }

    // Memory sensitivity: the paper's 128 GB row.
    println!("\nHost memory sensitivity (2x2 nodes, pipelined):");
    for (n, mem, cards) in [(166_000usize, 64.0f64, 2usize), (242_000, 128.0, 2)] {
        let mut cfg = HybridConfig::new(n, ProcessGrid::new(2, 2), cards);
        cfg.host_mem_gib = mem;
        let r = simulate_cluster(&cfg, false);
        println!(
            "  N={n:>7}, {mem:>3.0} GB/node, {cards} cards: {:.2} TFLOPS, {:.1}%",
            r.report.gflops / 1e3,
            100.0 * r.report.efficiency()
        );
    }
}
