//! Distributed-memory HPL, numerically: Q ranks (threads) with
//! block-cyclic columns, panel broadcast over channels, and look-ahead —
//! the multi-node algorithm of Section V verified with real arithmetic.
//!
//! Run with: `cargo run --release --example distributed_hpl [N] [Q]`

use linpack_phi::hpl::distributed::factorize_distributed;
use linpack_phi::matrix::{hpl_residual, MatGen};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let n = args.first().copied().unwrap_or(256);
    let q = args.get(1).copied().unwrap_or(4);
    let nb = 32;

    println!("Distributed HPL: N = {n}, NB = {nb}, 1x{q} process grid\n");
    let a = MatGen::new(2013).matrix::<f64>(n, n);
    let b = MatGen::new(2014).rhs::<f64>(n);

    let t0 = std::time::Instant::now();
    let d = factorize_distributed(&a, nb, q).expect("non-singular");
    let dt = t0.elapsed();

    let x = d.factors.solve(&b);
    let rep = hpl_residual(&a.view(), &x, &b);
    println!(
        "factorized on {} ranks in {:.1} ms (wall, this machine)",
        d.grid.q,
        dt.as_secs_f64() * 1e3
    );
    println!(
        "HPL residual check: scaled = {:.3e} -> {}",
        rep.scaled_residual,
        if rep.passed { "PASSED" } else { "FAILED" }
    );

    // Cross-check against the sequential reference.
    let mut seq = a.clone();
    let piv = linpack_phi::blas::lu::getrf(
        &mut seq.view_mut(),
        nb,
        &linpack_phi::blas::gemm::BlockSizes::default(),
    )
    .unwrap();
    assert_eq!(piv, d.factors.ipiv, "pivot sequences agree");
    println!(
        "factors match the sequential reference to {:.2e}",
        d.factors.lu.max_abs_diff(&seq)
    );
}
