//! DGEMM tuning walkthrough: reproduces the Section III analysis — the
//! Fig. 2 kernel duel on the cycle-level emulator, the L2 blocking
//! inequality, and the Table II `k` sweep — then cross-checks the packed
//! kernels numerically against the naive oracle.
//!
//! Run with: `cargo run --release --example dgemm_tuning`

use linpack_phi::blas::gemm::{gemm_naive, gemm_with, BlockSizes, MicroKernelKind};
use linpack_phi::knc::{run_tile_product, GemmModel, PipelineConfig, Precision};
use linpack_phi::matrix::{HplRng, MatGen, Matrix};

fn main() {
    println!("== Basic Kernel 1 vs Basic Kernel 2 (emulated, k = 300) ==\n");
    for kind in [MicroKernelKind::Kernel1, MicroKernelKind::Kernel2] {
        let mr = linpack_phi::knc::kernels::kernel_mr(kind);
        let depth = 300;
        let mut rng = HplRng::new(1);
        let a: Vec<f64> = (0..mr * depth).map(|_| rng.next_value()).collect();
        let bs = std::array::from_fn(|_| (0..depth * 8).map(|_| rng.next_value()).collect());
        let rep = run_tile_product(kind, depth, &a, &bs, PipelineConfig::default());
        println!(
            "{kind:?}: theoretical {:.1}% -> achieved {:.1}%  \
             (fill stalls: {}, fills landing in holes: {})",
            100.0 * rep.theoretical_efficiency,
            100.0 * rep.steady_efficiency,
            rep.stats.fill_stall_cycles,
            rep.stats.fills_in_holes
        );
    }
    println!(
        "\nKernel 1 has more FMAs per slot on paper, but its memory-broadcast\n\
         FMAs hold the L1 read port every cycle, so prefetch fills stall the\n\
         pipe; Kernel 2's swizzle holes absorb them (Section III-A2).\n"
    );

    println!("== Cache blocking (Section III-A1) ==\n");
    let knc = BlockSizes::knc();
    println!(
        "KNC blocking m={}, n={}, k={}: footprint {} KB of 512 KB L2, \
         bandwidth bound {:.2} B/cycle/core (amortized {:.2})",
        knc.mc,
        knc.nc,
        knc.kc,
        knc.footprint_bytes(8) / 1024,
        knc.bandwidth_bytes_per_cycle(),
        knc.bandwidth_bytes_per_cycle_amortized()
    );

    println!("\n== Table II: efficiency vs k (model) ==\n");
    let model = GemmModel::default();
    println!("{:>5} {:>9} {:>9}", "k", "DGEMM", "SGEMM");
    for k in [120, 180, 240, 300, 340, 400] {
        println!(
            "{:>5} {:>8.1}% {:>8.1}%",
            k,
            100.0 * model.efficiency_vs_k(k, Precision::F64),
            100.0 * model.efficiency_vs_k(k, Precision::F32),
        );
    }
    println!(
        "\nBest DGEMM k = 300 -> {:.0} GFLOPS (paper: 944)\n",
        model.gflops_vs_k(300, Precision::F64)
    );

    println!("== Numerical cross-check of the packed kernels ==\n");
    let (m, n, k) = (123, 77, 45);
    let a = MatGen::new(5).matrix::<f64>(m, k);
    let b = MatGen::new(6).matrix::<f64>(k, n);
    let mut c_ref = Matrix::<f64>::zeros(m, n);
    gemm_naive(1.0, &a.view(), &b.view(), 0.0, &mut c_ref.view_mut());
    for (label, bs) in [
        ("host 8x8", BlockSizes::default()),
        ("KNC 30x8 (Kernel 2)", BlockSizes::knc()),
        ("KNC 31x8 (Kernel 1)", BlockSizes::knc_kernel1()),
    ] {
        let mut c = Matrix::<f64>::zeros(m, n);
        gemm_with(1.0, &a.view(), &b.view(), 0.0, &mut c.view_mut(), &bs);
        println!(
            "{label:>22}: max |diff| vs naive = {:.3e}",
            c.max_abs_diff(&c_ref)
        );
    }
}
