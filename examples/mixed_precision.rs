//! Mixed-precision Linpack: factor in f32 at twice the FLOP rate
//! (Table I: 2148 SP vs 1074 DP GFLOPS on the card), then recover f64
//! accuracy with iterative refinement — the natural payoff of the
//! paper's claim that "we apply the same optimizations to SGEMM as well".
//!
//! Run with: `cargo run --release --example mixed_precision`

use linpack_phi::hpl::refine::{demo_problem, solve_mixed_precision, TimedRefinement};
use linpack_phi::matrix::hpl_residual;

fn main() {
    println!("Mixed-precision solve: f32 LU + f64 iterative refinement\n");

    // Numeric demonstration.
    for n in [128usize, 384, 768] {
        let (a, b) = demo_problem(n, 2013);
        let res = solve_mixed_precision(&a, &b, 32, 10).expect("non-singular");
        let check = hpl_residual(&a.view(), &res.x, &b);
        println!(
            "n = {n:>4}: {} sweeps -> scaled residual {:.2e} ({})",
            res.iterations,
            check.scaled_residual,
            if check.passed { "HPL PASS" } else { "HPL FAIL" }
        );
    }

    // Chip-model payoff at paper scale.
    println!("\nProjected payoff on Knights Corner (chip model):");
    let t = TimedRefinement::default();
    println!(
        "{:>7} {:>12} {:>14} {:>9}",
        "N", "DGETRF (s)", "mixed+3it (s)", "speedup"
    );
    for n in [5_000usize, 10_000, 20_000, 30_000] {
        println!(
            "{:>7} {:>12.2} {:>14.2} {:>8.2}x",
            n,
            t.dgetrf_time_s(n),
            t.mixed_time_s(n, 3),
            t.speedup(n, 3)
        );
    }
    println!(
        "\nThe speedup approaches the SP/DP peak ratio (2x) as the O(n^2)\n\
         refinement sweeps amortize against the O(n^3) factorization."
    );
}
