//! Native Linpack at paper scale: sweeps problem sizes on the simulated
//! Knights Corner, comparing static look-ahead against dynamic DAG
//! scheduling (the Fig. 6 experiment), and prints the super-stage
//! regrouping the dynamic scheduler chose.
//!
//! Run with: `cargo run --release --example native_linpack [N]`

use linpack_phi::hpl::native::{
    model::simulate_dynamic_traced, static_la::simulate_static, NativeConfig,
};
use linpack_phi::knc::Precision;
use linpack_phi::sched::superstage_plan;

fn main() {
    let n_max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_720);

    println!("Native Linpack on simulated Knights Corner (NB = 256)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "N", "static GF", "dynamic GF", "dyn eff"
    );
    for n in [1024, 2048, 4096, 8192, 16384, n_max] {
        if n > n_max {
            break;
        }
        let cfg = NativeConfig::new(n);
        let st = simulate_static(&cfg, false);
        let (dy, _) = simulate_dynamic_traced(&cfg, false);
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>8.1}%",
            n,
            st.gflops,
            dy.gflops,
            100.0 * dy.efficiency()
        );
    }

    // Show the super-stage plan for the largest run: how the scheduler
    // grows thread groups as the matrix shrinks (Section IV-A).
    let cfg = NativeConfig::new(n_max);
    let plan = superstage_plan(
        cfg.npanels(),
        cfg.total_threads,
        cfg.min_group_threads,
        |stage, tpg| {
            let m_next = cfg.rows_at(stage + 1);
            if m_next == 0 {
                return 0.0;
            }
            let panel = cfg.tasks.panel_time_s(m_next, cfg.nb, tpg as f64 / 4.0);
            let update = cfg
                .tasks
                .update_time_s(m_next, m_next, cfg.nb, cfg.total_threads as f64 / 4.0)
                .max(1e-12);
            panel / update
        },
    );
    println!("\nSuper-stage plan for N = {n_max}:");
    for ss in &plan {
        println!(
            "  stages {:>3}..{:<3}  {} threads/group ({} groups)",
            ss.first_stage,
            ss.end_stage,
            ss.threads_per_group,
            cfg.total_threads / ss.threads_per_group
        );
    }

    let (report, _) = simulate_dynamic_traced(&cfg, true);
    let peak = cfg.tasks.gemm.chip.native_peak_gflops(Precision::F64);
    println!(
        "\nHeadline: {:.0} GFLOPS of {peak:.0} peak = {:.1}% (paper: 832 GFLOPS, 78.8%)",
        report.gflops,
        100.0 * report.efficiency()
    );
    println!("Time breakdown:");
    for (kind, secs) in &report.breakdown {
        println!("  {:>8}: {secs:>9.3} lane-seconds", kind.label());
    }
}
