//! `linpack-phi` — a Rust reproduction of *"Design and Implementation of
//! the Linpack Benchmark for Single and Multi-Node Systems Based on Intel
//! Xeon Phi Coprocessor"* (Heinecke et al., IPDPS 2013).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`matrix`] | `phi-matrix` | dense matrices, views, HPL generator, residual test |
//! | [`blas`] | `phi-blas` | packed-tile GEMM (Fig. 3 layout), TRSM, LASWP, LU |
//! | [`knc`] | `phi-knc` | KNC vector-ISA emulator, cycle-level core model, chip model |
//! | [`xeon`] | `phi-xeon` | Sandy Bridge EP host model |
//! | [`des`] | `phi-des` | discrete-event engine, links, Gantt traces |
//! | [`fabric`] | `phi-fabric` | PCIe + mm-queues, P×Q grids, InfiniBand model |
//! | [`sched`] | `phi-sched` | panel DAG, thread groups, super-stages, tile stealing |
//! | [`hpl`] | `phi-hpl` | native / offload / hybrid Linpack, both backends |
//! | [`faults`] | `phi-faults` | deterministic fault plans, fault-tolerant cluster runs |
//! | [`lint`] | `phi-lint` | static kernel verifier, issue-slot analyzer, cycle bound |
//! | [`tune`] | `phi-tune` | seeded autotuner: NB, look-ahead, work division, bcast, grid |
//! | [`serve`] | `phi-serve` | campaign service: content-addressed result store, single-flight dedup, query table |
//!
//! # Quick start
//!
//! Solve a dense system with the DAG-parallel numeric backend and verify
//! it the way HPL does:
//!
//! ```
//! use linpack_phi::matrix::{hpl_residual, MatGen};
//! use linpack_phi::hpl::native::solve_parallel;
//! use linpack_phi::sched::GroupPlan;
//!
//! let n = 96;
//! let a = MatGen::new(42).matrix::<f64>(n, n);
//! let b = MatGen::new(43).rhs::<f64>(n);
//! let x = solve_parallel(&a, &b, 16, &GroupPlan::new(4, 2)).unwrap();
//! assert!(hpl_residual(&a.view(), &x, &b).passed);
//! ```
//!
//! Reproduce a paper experiment at full scale on the timed backend:
//!
//! ```
//! use linpack_phi::hpl::native::{NativeConfig, NativeScheme};
//!
//! let report = NativeConfig::new(30_720).simulate(NativeScheme::DynamicScheduling);
//! assert!((report.efficiency() - 0.788).abs() < 0.02); // paper: 78.8%
//! ```
//!
//! Autotune the paper's single-node machine and render the winning
//! configuration as an `HPL.dat`:
//!
//! ```
//! use linpack_phi::tune::{tune, MachineConfig, TuneOptions, TuneSpace};
//!
//! let m = MachineConfig::paper_single_node();
//! let opts = TuneOptions { coarse_only: true, ..TuneOptions::default() };
//! let out = tune(&m, &TuneSpace::coarse(&m), &opts);
//! assert!(out.tuned_report.gflops >= out.baseline_report.gflops);
//! let dat = out.tuned.hpl_dat().render();
//! assert!(dat.contains("NBs"));
//! ```
//!
//! Serve campaign requests through the content-addressed result
//! service — concurrent identical requests simulate exactly once:
//!
//! ```
//! use linpack_phi::serve::{CampaignService, CampaignSpec};
//!
//! let service = CampaignService::in_memory(2);
//! let spec = CampaignSpec::paper_cluster_campaign(7);
//! let a = service.get(&spec).unwrap();
//! let b = service.get(&spec).unwrap();
//! assert_eq!(a.fingerprint, b.fingerprint);
//! assert_eq!(service.stats().executed, 1);
//! ```

#![warn(missing_docs)]

pub use phi_blas as blas;
pub use phi_des as des;
pub use phi_fabric as fabric;
pub use phi_faults as faults;
pub use phi_hpl as hpl;
pub use phi_knc as knc;
pub use phi_lint as lint;
pub use phi_matrix as matrix;
pub use phi_sched as sched;
pub use phi_serve as serve;
pub use phi_tune as tune;
pub use phi_xeon as xeon;
