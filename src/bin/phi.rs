//! `phi` — command-line driver for the Linpack flavours.
//!
//! ```text
//! phi solve    --n 512 [--nb 32] [--threads 4] [--tpg 2] [--seed 42]
//! phi native   --n 30720 [--nb 256] [--scheme dynamic|static]
//! phi hybrid   --n 84000 [--grid 2x2] [--cards 1] [--lookahead pipelined] [--mem 64]
//! phi offload  --n 82000 [--cards 1] [--host-cores 0]
//! phi cluster  --n 60000 [--grid 2x2]          (native multi-node, future work)
//! phi refine   --n 512 [--nb 32]               (mixed precision)
//! phi dat      [--file HPL.dat] [--cards 1] [--mem 64]
//! ```
//!
//! `solve` and `refine` run real arithmetic and verify with the HPL
//! residual; the others run the calibrated timed backends.

use linpack_phi::fabric::ProcessGrid;
use linpack_phi::hpl::hpldat::{paper_table3_dat, HplDat};
use linpack_phi::hpl::hybrid::{simulate_cluster, HybridConfig, Lookahead};
use linpack_phi::hpl::native::cluster::{simulate_native_cluster, NativeClusterConfig};
use linpack_phi::hpl::native::{solve_parallel, NativeConfig, NativeScheme};
use linpack_phi::hpl::offload::OffloadModel;
use linpack_phi::hpl::refine::solve_mixed_precision;
use linpack_phi::knc::Precision;
use linpack_phi::matrix::{hpl_residual, MatGen};
use linpack_phi::sched::GroupPlan;
use std::collections::HashMap;
use std::process::ExitCode;

/// Parsed `--key value` arguments.
struct Args(HashMap<String, String>);

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{a}'"))?;
            let val = it
                .next()
                .ok_or_else(|| format!("--{key} requires a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Self(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn grid(&self) -> Result<(usize, usize), String> {
        match self.0.get("grid") {
            None => Ok((1, 1)),
            Some(v) => {
                let (p, q) = v
                    .split_once(['x', 'X'])
                    .ok_or_else(|| format!("--grid expects PxQ, got '{v}'"))?;
                Ok((
                    p.parse().map_err(|_| format!("bad grid rows '{p}'"))?,
                    q.parse().map_err(|_| format!("bad grid cols '{q}'"))?,
                ))
            }
        }
    }
}

fn usage() -> &'static str {
    "usage: phi <solve|native|hybrid|offload|cluster|refine> [--flags...]\n\
     see module docs (src/bin/phi.rs) for per-command flags"
}

fn run(cmd: &str, args: &Args) -> Result<String, String> {
    match cmd {
        "solve" => {
            let n: usize = args.get("n", 512)?;
            let nb: usize = args.get("nb", 32)?;
            let threads: usize = args.get("threads", 4)?;
            let tpg: usize = args.get("tpg", 2)?;
            let seed: u64 = args.get("seed", 42)?;
            let a = MatGen::new(seed).matrix::<f64>(n, n);
            let b = MatGen::new(seed + 1).rhs::<f64>(n);
            let x = solve_parallel(&a, &b, nb, &GroupPlan::new(threads, tpg.min(threads)))
                .map_err(|e| e.to_string())?;
            let rep = hpl_residual(&a.view(), &x, &b);
            Ok(format!(
                "solved N={n} (NB={nb}, {threads} threads): scaled residual {:.3e} -> {}",
                rep.scaled_residual,
                if rep.passed { "HPL PASS" } else { "HPL FAIL" }
            ))
        }
        "native" => {
            let n: usize = args.get("n", 30_720)?;
            let nb: usize = args.get("nb", 256)?;
            let scheme = match args.get::<String>("scheme", "dynamic".into())?.as_str() {
                "dynamic" => NativeScheme::DynamicScheduling,
                "static" => NativeScheme::StaticLookahead,
                other => return Err(format!("unknown scheme '{other}'")),
            };
            let mut cfg = NativeConfig::new(n);
            cfg.nb = nb;
            let r = cfg.simulate(scheme);
            Ok(format!(
                "native {scheme:?}: N={n} NB={nb} -> {:.1} GFLOPS ({:.1}% of 60-core peak) in {:.2}s",
                r.gflops,
                100.0 * r.efficiency(),
                r.time_s
            ))
        }
        "hybrid" => {
            let n: usize = args.get("n", 84_000)?;
            let (p, q) = args.grid()?;
            let cards: usize = args.get("cards", 1)?;
            let mem: f64 = args.get("mem", 64.0)?;
            let la = match args
                .get::<String>("lookahead", "pipelined".into())?
                .as_str()
            {
                "none" => Lookahead::None,
                "basic" => Lookahead::Basic,
                "pipelined" => Lookahead::Pipelined,
                other => return Err(format!("unknown lookahead '{other}'")),
            };
            let mut cfg = HybridConfig::new(n, ProcessGrid::new(p, q), cards);
            cfg.lookahead = la;
            cfg.host_mem_gib = mem;
            let r = simulate_cluster(&cfg, false);
            Ok(format!(
                "hybrid {la:?}: N={n} on {p}x{q} nodes, {cards} card(s), {mem:.0} GB -> \
                 {:.2} TFLOPS ({:.1}%), card idle {:.1}%",
                r.report.gflops / 1e3,
                100.0 * r.report.efficiency(),
                100.0 * r.card_idle_fraction
            ))
        }
        "offload" => {
            let n: usize = args.get("n", 82_000)?;
            let cards: usize = args.get("cards", 1)?;
            let host_cores: f64 = args.get("host-cores", 0.0)?;
            let model = OffloadModel::default();
            let out = model.simulate(n, n, cards, host_cores);
            let peak = model.card.chip.full_peak_gflops(Precision::F64) * cards as f64;
            Ok(format!(
                "offload DGEMM: M=N={n}, Kt=1200, {cards} card(s), {host_cores} host cores -> \
                 {:.0} GFLOPS ({:.1}% of card peak), grid {}x{}, tiles card/host {}/{}",
                out.gflops,
                100.0 * out.gflops / peak,
                out.grid.0,
                out.grid.1,
                out.card_tiles,
                out.host_tiles
            ))
        }
        "cluster" => {
            let n: usize = args.get("n", 60_000)?;
            let (p, q) = args.grid()?;
            let cfg = NativeClusterConfig::new(n, p, q);
            let r = simulate_native_cluster(&cfg);
            Ok(format!(
                "native cluster: N={n} on {p}x{q} cards (hosts asleep) -> \
                 {:.1} GFLOPS ({:.1}%)",
                r.gflops,
                100.0 * r.efficiency()
            ))
        }
        "refine" => {
            let n: usize = args.get("n", 512)?;
            let nb: usize = args.get("nb", 32)?;
            let seed: u64 = args.get("seed", 42)?;
            let a = MatGen::new(seed).matrix::<f64>(n, n);
            let b = MatGen::new(seed + 1).rhs::<f64>(n);
            let res = solve_mixed_precision(&a, &b, nb, 12).map_err(|e| e.to_string())?;
            Ok(format!(
                "mixed precision N={n}: {} sweeps, scaled residual {:.3e} -> {}",
                res.iterations,
                res.residual.scaled_residual,
                if res.residual.passed {
                    "HPL PASS"
                } else {
                    "HPL FAIL"
                }
            ))
        }
        "dat" => {
            let cards: usize = args.get("cards", 1)?;
            let mem: f64 = args.get("mem", 64.0)?;
            let text = match args.0.get("file") {
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                None => paper_table3_dat().to_string(),
            };
            let dat = HplDat::parse(&text).map_err(|e| e.to_string())?;
            let mut out =
                String::from("T/V                N    NB     P     Q          TFLOPS      eff\n");
            for cfg in dat.expand(cards, mem) {
                if cfg.bytes_per_node() > cfg.host_mem_gib * 1.073741824e9 * 0.95 {
                    out.push_str(&format!(
                        "-- skipped N={} on {}x{}: exceeds {:.0} GiB/node\n",
                        cfg.n, cfg.grid.p, cfg.grid.q, cfg.host_mem_gib
                    ));
                    continue;
                }
                let r = simulate_cluster(&cfg, false);
                out.push_str(&format!(
                    "W{:}{:>17} {:>5} {:>5} {:>5} {:>15.3} {:>7.1}%\n",
                    match cfg.lookahead {
                        Lookahead::None => "00",
                        Lookahead::Basic => "01",
                        Lookahead::Pipelined => "02",
                    },
                    cfg.n,
                    cfg.nb,
                    cfg.grid.p,
                    cfg.grid.q,
                    r.report.gflops / 1e3,
                    100.0 * r.report.efficiency()
                ));
            }
            Ok(out)
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd, &args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_grid() {
        let a = Args::parse(&argv(&["--n", "1000", "--grid", "2x3"])).unwrap();
        assert_eq!(a.get::<usize>("n", 0).unwrap(), 1000);
        assert_eq!(a.grid().unwrap(), (2, 3));
        assert_eq!(a.get::<usize>("nb", 7).unwrap(), 7, "default");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&argv(&["n", "1"])).is_err());
        assert!(Args::parse(&argv(&["--n"])).is_err());
        let a = Args::parse(&argv(&["--grid", "2y3"])).unwrap();
        assert!(a.grid().is_err());
        let b = Args::parse(&argv(&["--n", "abc"])).unwrap();
        assert!(b.get::<usize>("n", 0).is_err());
    }

    #[test]
    fn solve_command_end_to_end() {
        let a = Args::parse(&argv(&[
            "--n",
            "96",
            "--nb",
            "16",
            "--threads",
            "2",
            "--tpg",
            "1",
        ]))
        .unwrap();
        let out = run("solve", &a).unwrap();
        assert!(out.contains("HPL PASS"), "{out}");
    }

    #[test]
    fn native_command_reports_efficiency() {
        let a = Args::parse(&argv(&["--n", "4096"])).unwrap();
        let out = run("native", &a).unwrap();
        assert!(out.contains("GFLOPS"), "{out}");
        let b = Args::parse(&argv(&["--n", "4096", "--scheme", "static"])).unwrap();
        assert!(run("native", &b).is_ok());
        let c = Args::parse(&argv(&["--scheme", "bogus", "--n", "4096"])).unwrap();
        assert!(run("native", &c).is_err());
    }

    #[test]
    fn dat_command_runs_builtin_plan() {
        let a = Args::parse(&argv(&["--cards", "1"])).unwrap();
        let out = run("dat", &a).unwrap();
        assert!(out.contains("84000"), "{out}");
        assert!(out.lines().count() >= 10, "{out}");
    }

    #[test]
    fn unknown_command_errors() {
        let a = Args::parse(&[]).unwrap();
        assert!(run("frobnicate", &a).is_err());
    }
}
